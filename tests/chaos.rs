//! The chaos oracle (PR 10): deterministic fault schedules against a
//! live server + [`ResilientClient`], and against the durable store +
//! [`SessionSupervisor`].
//!
//! Every case arms a seeded, budget-bounded
//! [`FaultPlan`](zigzag::api::FaultPlan) — the budget guarantees the
//! plan eventually quiesces, so every case terminates — and holds the
//! serving stack to the resilience contract:
//!
//! * every client-visible outcome is a **typed error or byte-identical**
//!   to the fault-free reference run — never silent corruption;
//! * appends are **exactly-once**: the final event count equals the
//!   number of events fed, no matter how many resets, torn writes, or
//!   ambiguous failures the schedule injected;
//! * **no hangs**: requests carry deadlines, retries are capped, the
//!   shutdown drain is deadline-bounded, and the fault budget bounds the
//!   schedule itself.
//!
//! Two entry points: proptest-generated `(seed, budget)` cases, and the
//! `chaos_fixed_seed_net_and_store` test whose whole schedule is pinned
//! by the `CHAOS_SEED` environment variable — CI runs it under two fixed
//! seeds with a wall-clock guard (a hang is a failure, not a timeout to
//! shrug at).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use zigzag::api::{
    ClientConfig, CoordKind, Error, FaultPlan, FaultRates, NetConfig, NetServer, Query,
    ResilientClient, Response, SessionConfig, SessionId, SessionStore, SessionSupervisor,
    StoreConfig, TimedCoordination, ZigzagService,
};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{NodeId, ProcessId, Run, RunCursor, SimConfig, Simulator, Time};

/// Per-case-unique scratch path (socket or store directory).
fn scratch(kind: &str, seed: u64) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "zigzag-chaos-{kind}-{}-{seed}-{n}",
        std::process::id()
    ))
}

/// A three-process feedback run (so coordination decides) with a seeded
/// random schedule — the chaos workload.
fn chaos_run(seed: u64) -> Run {
    let mut b = zigzag::bcm::Network::builder();
    let c = b.add_process("C");
    let a = b.add_process("A");
    let bb = b.add_process("B");
    b.add_channel(c, a, 1, 3).unwrap();
    b.add_channel(c, bb, 7, 9).unwrap();
    b.add_channel(bb, c, 2, 4).unwrap();
    let ctx = b.build().unwrap();
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
    sim.external(Time::new(2), c, "go");
    sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
        .unwrap()
}

fn coord_config() -> SessionConfig {
    SessionConfig::new().spec(TimedCoordination::new(
        CoordKind::Late { x: 4 },
        ProcessId::new(1),
        ProcessId::new(2),
        ProcessId::new(0),
    ))
}

/// The probe set answers are held byte-identical on.
fn probes(prefix_nodes: &[NodeId]) -> Vec<Query> {
    let mut probes = vec![Query::CoordDecision, Query::EventCount];
    if let (Some(&first), Some(&last)) = (prefix_nodes.first(), prefix_nodes.last()) {
        probes.push(Query::MaxXMatrix { sigma: last });
        probes.push(Query::TightBound {
            from: first,
            to: last,
        });
    }
    probes
}

/// Retries `op` until it succeeds, asserting every intermediate failure
/// is a typed retryable error. The fault budget guarantees quiescence;
/// the attempt cap turns a liveness bug into a loud failure, not a hang.
fn eventually<T>(what: &str, mut op: impl FnMut() -> Result<T, Error>) -> T {
    for _ in 0..500 {
        match op() {
            Ok(v) => return v,
            Err(e) => assert!(e.is_retryable(), "{what}: non-retryable {e}"),
        }
    }
    panic!("{what}: no success within 500 attempts — the fault plan failed to quiesce");
}

/// Retries `op` past transient (retryable) failures until it settles on
/// a stable outcome: success, or a typed non-retryable error (which some
/// queries — e.g. `CoordDecision` on a sparse prefix — return
/// legitimately, fault-free).
fn settle<T>(what: &str, mut op: impl FnMut() -> Result<T, Error>) -> Result<T, Error> {
    for _ in 0..500 {
        match op() {
            Err(e) if e.is_retryable() => {}
            stable => return stable,
        }
    }
    panic!("{what}: no stable outcome within 500 attempts — the fault plan failed to quiesce");
}

// ---------------------------------------------------------------------
// Test A: network faults against a live server + ResilientClient.
// ---------------------------------------------------------------------

/// Network chaos: short reads/writes, injected resets, and injected
/// latency on every server-side connection, budget-bounded. The
/// resilient client appends the full run and interleaves knowledge
/// queries; every answer is typed-error or byte-identical to the
/// fault-free reference, appends are exactly-once, and the final state
/// matches the reference completely.
///
/// Returns how many faults the plan actually injected, so deterministic
/// callers can assert the storm was real.
fn net_chaos_case(seed: u64, budget: u64) -> u64 {
    let run = chaos_run(seed);
    let events: Vec<_> = RunCursor::new(&run).collect();
    let config = coord_config();

    // Fault-free reference, fed in lockstep with the chaos client.
    let reference = ZigzagService::new();
    let ref_id = reference.open_stream(run.context_arc(), run.horizon(), config.clone());

    let service = Arc::new(ZigzagService::sharded(4));
    let id = service.open_stream(run.context_arc(), run.horizon(), config);
    let rates = FaultRates {
        short_read: 80,
        read_reset: 30,
        short_write: 80,
        write_reset: 30,
        delay: 30,
        ..FaultRates::default()
    };
    let plan = Arc::new(FaultPlan::with_budget(seed, rates, budget));
    let path = scratch("net", seed).with_extension("sock");
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(2)
            .poll_interval(Duration::from_millis(5))
            .drain_timeout(Some(Duration::from_millis(500)))
            .faults(Arc::clone(&plan)),
    )
    .unwrap();
    let mut client = ResilientClient::connect_unix(
        &path,
        ClientConfig::new()
            .request_deadline(Duration::from_secs(2))
            .max_retries(4)
            .backoff(Duration::from_micros(200), Duration::from_millis(2))
            .jitter_seed(seed),
    );

    let mut next_idx = [0u32; 3];
    let mut prefix_nodes: Vec<NodeId> = Vec::new();
    for (k, ev) in events.iter().enumerate() {
        // Exactly-once append under chaos. client.append already probes
        // on ambiguity; if even its retry budget drains mid-storm, the
        // event must still land exactly once before we move on.
        let target = (k + 1) as u64;
        loop {
            match client.append(id, ev) {
                Ok(n) => {
                    assert_eq!(n, target, "event {k}: duplicated or lost append");
                    break;
                }
                Err(e) => {
                    assert!(e.is_retryable(), "event {k}: non-retryable {e}");
                    let n = eventually("post-failure probe", || client.event_count(id));
                    assert!(n <= target, "event {k}: duplicated append (count {n})");
                    if n == target {
                        break;
                    }
                }
            }
        }
        reference.append(ref_id, ev).unwrap();
        next_idx[ev.proc.index()] += 1;
        prefix_nodes.push(NodeId::new(ev.proc, next_idx[ev.proc.index()]));

        // Interleaved reads: typed-error or byte-identical, nothing else.
        // Some probes (e.g. CoordDecision on a sparse prefix) return a
        // typed error even fault-free — then the chaos answer must be an
        // error too, never a fabricated success.
        if k % 3 == 0 {
            for q in probes(&prefix_nodes) {
                match (client.query(id, &q), reference.dispatch(ref_id, &q)) {
                    (Ok(got), Ok(want)) => {
                        assert_eq!(got, want, "event {k}: {q:?} diverged under faults");
                    }
                    (Ok(got), Err(want)) => {
                        panic!("event {k}: {q:?} invented {got:?} where fault-free gives {want}")
                    }
                    (Err(e), _) if e.is_retryable() => {}
                    (Err(_), Err(_)) => {}
                    (Err(e), Ok(_)) => {
                        panic!("event {k}: {q:?} gave non-retryable {e} on a healthy query")
                    }
                }
            }
        }
    }

    // The budget guarantees quiescence: eventually every answer settles
    // and matches the reference byte for byte.
    let n = eventually("final count", || client.event_count(id));
    assert_eq!(n, events.len() as u64, "lost or duplicated appends");
    for q in probes(&prefix_nodes) {
        let got = settle("final probe", || client.query(id, &q));
        match (got, reference.dispatch(ref_id, &q)) {
            (Ok(got), Ok(want)) => assert_eq!(
                zigzag::api::wire::encode_response(&got),
                zigzag::api::wire::encode_response(&want),
                "{q:?}: final wire bytes diverged"
            ),
            (Err(_), Err(_)) => {}
            (got, want) => panic!("{q:?}: settled on {got:?} but fault-free gives {want:?}"),
        }
    }

    // Shutdown must not hang even with the plan still armed.
    server.shutdown();
    let _ = std::fs::remove_file(&path);
    plan.injected()
}

// ---------------------------------------------------------------------
// Test B: store faults with crash + supervised recovery.
// ---------------------------------------------------------------------

/// Store chaos: torn log writes, failed fsyncs, and disk-full snapshots,
/// budget-bounded. Every store failure is treated as fatal for the
/// process — the service is dropped on the spot and a fresh
/// [`SessionSupervisor::bind`] recovers the directory — after which an
/// event-count probe resolves the did-it-land ambiguity and appending
/// resumes. The fully-fed state must answer byte-identically to the
/// fault-free reference.
///
/// Returns how many faults the plan actually injected.
fn store_chaos_case(seed: u64, budget: u64) -> u64 {
    let run = chaos_run(seed ^ 0x9E37_79B9);
    let events: Vec<_> = RunCursor::new(&run).collect();
    let config = coord_config();
    let dir = scratch("store", seed);

    // Fault-free reference over the full run.
    let reference = ZigzagService::new();
    let ref_id = reference.open_stream(run.context_arc(), run.horizon(), config.clone());
    let mut next_idx = [0u32; 3];
    let mut prefix_nodes: Vec<NodeId> = Vec::new();
    for ev in &events {
        reference.append(ref_id, ev).unwrap();
        next_idx[ev.proc.index()] += 1;
        prefix_nodes.push(NodeId::new(ev.proc, next_idx[ev.proc.index()]));
    }

    let rates = FaultRates {
        torn_log_write: 120,
        fsync_fail: 100,
        snapshot_full: 150,
        ..FaultRates::default()
    };
    let plan = Arc::new(FaultPlan::with_budget(seed, rates, budget));
    let store_config = StoreConfig::new().snapshot_every(3);

    // First life.
    let mut service = Arc::new(ZigzagService::new());
    let store = Arc::new(
        SessionStore::open(&dir, store_config)
            .unwrap()
            .with_faults(Arc::clone(&plan)),
    );
    let (mut sup, swept) = SessionSupervisor::bind(Arc::clone(&service), store).unwrap();
    assert!(swept.is_empty());
    let mut id: SessionId = sup
        .store()
        .open_stream(
            &service,
            "feed",
            run.context_arc(),
            run.horizon(),
            config.clone(),
        )
        .unwrap();

    let mut done = 0usize; // events durably landed, probe-confirmed
    let mut lives = 0u32;
    while done < events.len() {
        match service.dispatch(id, &Query::Append(Box::new(events[done].clone()))) {
            Ok(Response::Appended(n)) => {
                assert_eq!(n, done as u64 + 1, "duplicated or lost append");
                done += 1;
            }
            Ok(other) => panic!("append answered with {other:?}"),
            Err(Error::Store { detail }) => {
                // A store failure is fatal for the session (the in-memory
                // state may be ahead of the log). Crash and recover.
                assert!(detail.contains("injected"), "real store failure: {detail}");
                lives += 1;
                assert!(
                    lives <= budget as u32 + 2,
                    "more crashes than injected faults — recovery is not making progress"
                );
                drop(sup);
                service = Arc::new(ZigzagService::new());
                let store = Arc::new(
                    SessionStore::open(&dir, store_config)
                        .unwrap()
                        .with_faults(Arc::clone(&plan)),
                );
                let (next_sup, recs) =
                    SessionSupervisor::bind(Arc::clone(&service), store).unwrap();
                sup = next_sup;
                assert_eq!(recs.len(), 1, "life {lives}: sweep missed the session");
                assert_eq!(recs[0].0, "feed");
                id = recs[0].1.id;
                // The exactly-once probe: a failed fsync may leave the
                // event durable even though the append errored. Trust
                // the recovered count, never a blind resend.
                let n = service.event_count(id).unwrap() as usize;
                assert!(
                    n == done || n == done + 1,
                    "life {lives}: recovered count {n} after {done} confirmed appends"
                );
                done = n;
            }
            Err(e) => panic!("append gave unexpected error: {e}"),
        }
    }

    // Fully fed: byte-identical to the fault-free reference, and one
    // final crash/recover must preserve that.
    for crash_once_more in [false, true] {
        if crash_once_more {
            drop(sup);
            service = Arc::new(ZigzagService::new());
            let store = Arc::new(SessionStore::open(&dir, store_config).unwrap());
            let (next_sup, recs) = SessionSupervisor::bind(Arc::clone(&service), store).unwrap();
            sup = next_sup;
            assert_eq!(recs.len(), 1);
            id = recs[0].1.id;
        }
        assert_eq!(service.event_count(id).unwrap(), events.len() as u64);
        for q in probes(&prefix_nodes) {
            match (service.dispatch(id, &q), reference.dispatch(ref_id, &q)) {
                (Ok(got), Ok(want)) => assert_eq!(
                    zigzag::api::wire::encode_response(&got),
                    zigzag::api::wire::encode_response(&want),
                    "{q:?} diverged (crashed_again={crash_once_more})"
                ),
                (Err(got), Err(want)) => assert_eq!(
                    got.to_string(),
                    want.to_string(),
                    "{q:?}: error text diverged (crashed_again={crash_once_more})"
                ),
                (got, want) => panic!("{q:?}: {got:?} but fault-free gives {want:?}"),
            }
        }
    }
    drop(sup);
    let _ = std::fs::remove_dir_all(&dir);
    plan.injected()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn net_chaos_oracle(seed in 0u64..10_000, budget in 10u64..60) {
        net_chaos_case(seed, budget);
    }

    #[test]
    fn store_chaos_oracle(seed in 0u64..10_000, budget in 5u64..40) {
        store_chaos_case(seed, budget);
    }
}

/// The CI entry point: `CHAOS_SEED` pins the entire schedule — run
/// topology, fault plan, and client jitter — so two CI invocations with
/// different seeds are two fully deterministic, reproducible storms.
#[test]
fn chaos_fixed_seed_net_and_store() {
    let seed = std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    // The storm must be real: a schedule that injected nothing would
    // pass the oracle vacuously.
    assert!(
        net_chaos_case(seed, 40) > 0,
        "seed {seed}: the net fault plan never fired"
    );
    assert!(
        store_chaos_case(seed, 25) > 0,
        "seed {seed}: the store fault plan never fired"
    );
}
