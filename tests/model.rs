//! Model-level integration checks: every simulated run is a legal member
//! of `R(P, γ)`, constructions round-trip, topology builders and diagrams
//! hold up, and local views are genuinely clockless.

mod common;

use common::workloads;
use proptest::prelude::*;
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::{EagerScheduler, FractionScheduler, LazyScheduler, RandomScheduler};
use zigzag::bcm::validate::{validate_run, Strictness};
use zigzag::bcm::ProcessId;
use zigzag::bcm::{diagram, topology, NodeId, SimConfig, Simulator, Time};
use zigzag::core::bounds_graph::BoundsGraph;
use zigzag::core::construct::{run_by_timing, slow_run};
use zigzag::core::timing::{check_valid_timing, NodeTiming};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every run the simulator produces is strictly legal, and its own
    /// node times form a valid timing function of its bounds graph.
    #[test]
    fn simulated_runs_are_legal(w in workloads()) {
        let run = w.run();
        validate_run(&run, Strictness::Strict).unwrap();
        let gb = BoundsGraph::of_run(&run);
        let t: NodeTiming = run.nodes().map(|r| (r.id(), r.time())).collect();
        check_valid_timing(&gb, &t).unwrap();
    }

    /// Lemma 8 round trip: replaying a run's own timing reproduces every
    /// node at its original time, and shifting all non-initial nodes one
    /// tick later stays legal.
    #[test]
    fn run_by_timing_round_trip(w in workloads()) {
        let run = w.run();
        let timing: NodeTiming = run
            .nodes()
            .filter(|r| !r.id().is_initial())
            .map(|r| (r.id(), r.time()))
            .collect();
        if timing.is_empty() {
            return Ok(());
        }
        let r2 = run_by_timing(&run, &timing).unwrap();
        validate_run(&r2, Strictness::Strict).unwrap();
        for (&n, &t) in &timing {
            prop_assert_eq!(r2.time(n), Some(t));
        }
        let shifted: NodeTiming = timing
            .iter()
            .map(|(&n, &t)| (n, t + 1))
            .collect();
        let r3 = run_by_timing(&run, &shifted).unwrap();
        validate_run(&r3, Strictness::Strict).unwrap();
    }

    /// The text codec is the identity on every simulated run.
    #[test]
    fn codec_round_trip(w in workloads()) {
        let run = w.run();
        let text = zigzag::bcm::codec::encode(&run);
        let back = zigzag::bcm::codec::decode(&text).unwrap();
        prop_assert_eq!(&run, &back);
        validate_run(&back, Strictness::Strict).unwrap();
        // Statistics are preserved too (they are pure functions of the
        // run); float fields need NaN-aware comparison.
        let (s1, s2) = (zigzag::bcm::RunStats::of(&run), zigzag::bcm::RunStats::of(&back));
        prop_assert_eq!(
            (s1.nodes, s1.messages_sent, s1.messages_delivered, s1.in_flight,
             s1.externals, s1.makespan, s1.max_timeline),
            (s2.nodes, s2.messages_sent, s2.messages_delivered, s2.in_flight,
             s2.externals, s2.makespan, s2.max_timeline)
        );
        prop_assert!(s1.mean_latency == s2.mean_latency
            || (s1.mean_latency.is_nan() && s2.mean_latency.is_nan()));
        prop_assert!(s1.mean_slack_used == s2.mean_slack_used
            || (s1.mean_slack_used.is_nan() && s2.mean_slack_used.is_nan()));
    }

    /// Valid timing functions form a lattice: the pointwise max and min of
    /// two valid timings (here: the run's own times and the slow timing,
    /// restricted to a common p-closed domain) are again valid — and the
    /// max re-materializes as a legal run.
    #[test]
    fn valid_timings_form_a_lattice(w in workloads()) {
        let run = w.run();
        let Some(sigma) = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last()
        else { return Ok(()) };
        let sr = slow_run(&run, sigma).unwrap();
        let t_slow = &sr.timing;
        if t_slow.is_empty() {
            return Ok(());
        }
        let t_actual: NodeTiming = t_slow
            .keys()
            .map(|&n| (n, run.time(n).expect("kept nodes recorded")))
            .collect();
        let gb = BoundsGraph::of_run(&run);
        check_valid_timing(&gb, &t_actual).unwrap();
        check_valid_timing(&gb, t_slow).unwrap();
        let t_max: NodeTiming = t_slow
            .iter()
            .map(|(&n, &t)| (n, t.max(t_actual[&n])))
            .collect();
        let t_min: NodeTiming = t_slow
            .iter()
            .map(|(&n, &t)| (n, t.min(t_actual[&n])))
            .collect();
        check_valid_timing(&gb, &t_max).unwrap();
        check_valid_timing(&gb, &t_min).unwrap();
        // The max is at least as frontier-feasible as the slow timing:
        // it materializes as a legal run.
        match run_by_timing(&run, &t_max) {
            Ok(r2) => validate_run(&r2, Strictness::Strict).unwrap(),
            // In-flight feasibility can still bind for the mixed timing.
            Err(zigzag::core::CoreError::InvalidTiming { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }

    /// Happens-before is a partial order consistent with time, and pasts
    /// are downward closed.
    #[test]
    fn happens_before_laws(w in workloads()) {
        let run = w.run();
        let nodes: Vec<NodeId> = run.nodes().map(|r| r.id()).collect();
        for &a in nodes.iter().take(8) {
            prop_assert!(run.happens_before(a, a));
            for &b in nodes.iter().take(8) {
                if run.happens_before(a, b) && a != b {
                    prop_assert!(!run.happens_before(b, a), "cycle {a} {b}");
                    prop_assert!(run.time(a).unwrap() <= run.time(b).unwrap());
                }
            }
        }
        let last = *nodes.last().unwrap();
        let past = run.past(last);
        for n in past.iter() {
            let inner = run.past(n);
            for m in inner.iter() {
                prop_assert!(past.contains(m), "past not transitive at {m}");
            }
        }
    }

    /// The extreme schedulers bracket every other policy's delivery times.
    #[test]
    fn scheduler_bracketing(w in workloads()) {
        let ctx = w.context();
        let mk = |sched: &mut dyn zigzag::bcm::Scheduler| {
            let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(w.horizon)));
            for &(t, p) in &w.externals {
                sim.external(Time::new(t.max(1)), ProcessId::new((p % w.n) as u32), "kick");
            }
            sim.run(&mut Ffip::new(), sched).unwrap()
        };
        let eager = mk(&mut EagerScheduler);
        let lazy = mk(&mut LazyScheduler);
        let mid = mk(&mut FractionScheduler::new(0.5));
        // Extreme policies pin every delivery to its window edge; the
        // fraction policy stays inside the window.
        let bounds = eager.context().bounds().clone();
        for m in eager.messages() {
            let cb = bounds.get(m.channel()).unwrap();
            prop_assert_eq!(m.scheduled_at(), m.sent_at() + cb.lower());
        }
        for m in lazy.messages() {
            let cb = bounds.get(m.channel()).unwrap();
            prop_assert_eq!(m.scheduled_at(), m.sent_at() + cb.upper());
        }
        for m in mid.messages() {
            let cb = bounds.get(m.channel()).unwrap();
            prop_assert!(m.scheduled_at() >= m.sent_at() + cb.lower());
            prop_assert!(m.scheduled_at() <= m.sent_at() + cb.upper());
        }
        validate_run(&eager, Strictness::Strict).unwrap();
        validate_run(&lazy, Strictness::Strict).unwrap();
        validate_run(&mid, Strictness::Strict).unwrap();
    }
}

#[test]
fn topology_builders_simulate() {
    for (name, ctx) in [
        ("line", topology::line(5, 1, 3).unwrap()),
        ("ring", topology::ring(5, 1, 3).unwrap()),
        ("star", topology::star(5, 1, 3).unwrap()),
        ("complete", topology::complete(4, 2, 4).unwrap()),
        ("random", topology::random(6, 0.4, 1, 5, 99).unwrap()),
    ] {
        let first = topology::first_processes(&ctx, 1)[0];
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(25)));
        sim.external(Time::new(1), first, "kick");
        let run = sim
            .run(&mut Ffip::new(), &mut RandomScheduler::seeded(5))
            .unwrap();
        validate_run(&run, Strictness::Strict).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(
            run.node_count() > run.context().network().len(),
            "{name} stayed quiescent"
        );
    }
}

#[test]
fn diagrams_render_every_run_shape() {
    let ctx = topology::ring(3, 1, 4).unwrap();
    let p0 = topology::first_processes(&ctx, 1)[0];
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(18)));
    sim.external(Time::new(1), p0, "kick");
    let run = sim
        .run(&mut Ffip::new(), &mut RandomScheduler::seeded(1))
        .unwrap();
    let full = diagram::render(&run);
    assert!(full.contains("p0"));
    assert!(full.lines().count() >= 3);
    let window = diagram::render_window(&run, Time::new(5), Time::new(10));
    assert!(!window.is_empty());
}

/// The clockless discipline: processes cannot observe absolute time.
/// Shifting the entire workload later in time (same relative schedule)
/// produces the *identical* sequence of local states, so any protocol
/// decision is invariant under the shift.
#[test]
fn views_are_clockless() {
    use zigzag::bcm::process::{Action, Protocol};
    use zigzag::bcm::View;

    struct Probe {
        decisions: Vec<(NodeId, usize)>,
    }
    impl Protocol for Probe {
        fn on_event(&mut self, view: &View<'_>) -> Vec<Action> {
            // All a protocol can observe: receipts, pasts, bounds.
            self.decisions.push((view.node(), view.past().len()));
            Vec::new()
        }
    }

    let build = |start: u64| {
        let ctx = topology::line(3, 2, 6).unwrap();
        let p0 = topology::first_processes(&ctx, 1)[0];
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30 + start)));
        sim.external(Time::new(start), p0, "kick");
        let mut probe = Probe {
            decisions: Vec::new(),
        };
        let run = sim
            .run(&mut probe, &mut FractionScheduler::new(0.0))
            .unwrap();
        (run, probe.decisions)
    };
    let (r1, d1) = build(1);
    let (r2, d2) = build(5);
    // Identical local-state evolution…
    assert_eq!(d1, d2);
    // …while every (non-initial) node is displaced by exactly the shift.
    for rec in r1.nodes().filter(|r| !r.id().is_initial()) {
        assert_eq!(r2.time(rec.id()), Some(rec.time() + 4));
    }
    // And the same seed reproduces the same run bit for bit.
    let (r3, d3) = build(1);
    assert_eq!(d1, d3);
    assert_eq!(r1, r3);
}
