//! The artifact pipeline: everything a user does with a run *besides*
//! analyzing it — statistics, serialization, deterministic replay, and
//! figure export — composed end to end.

use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::{RandomScheduler, ReplayScheduler};
use zigzag::bcm::validate::{validate_run, Strictness};
use zigzag::bcm::{codec, diagram, Network, RunStats, SimConfig, Simulator, Time};
use zigzag::core::bounds_graph::BoundsGraph;
use zigzag::core::dot;
use zigzag::core::extended_graph::ExtendedGraph;
use zigzag::core::knowledge::KnowledgeEngine;
use zigzag::core::GeneralNode;

fn fig2b_run(seed: u64) -> zigzag::bcm::Run {
    let mut nb = Network::builder();
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    let c = nb.add_process("C");
    let d = nb.add_process("D");
    let e = nb.add_process("E");
    nb.add_channel(c, a, 1, 3).unwrap();
    nb.add_channel(c, d, 6, 8).unwrap();
    nb.add_channel(e, d, 1, 2).unwrap();
    nb.add_channel(e, b, 4, 7).unwrap();
    nb.add_channel(d, b, 1, 5).unwrap();
    let ctx = nb.build().unwrap();
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(60)));
    sim.external(Time::new(2), c, "go_c");
    sim.external(Time::new(18), e, "go_e");
    sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
        .unwrap()
}

#[test]
fn pipeline_simulate_encode_decode_replay() {
    for seed in [0u64, 7, 23] {
        let run = fig2b_run(seed);
        validate_run(&run, Strictness::Strict).unwrap();
        let stats = RunStats::of(&run);
        assert!(stats.nodes > 5 && stats.externals == 2);

        // Serialize → parse: identity.
        let text = codec::encode(&run);
        let back = codec::decode(&text).unwrap();
        assert_eq!(run, back);

        // Deterministic replay through the simulator: identity again.
        let mut sched = ReplayScheduler::from_run(&run);
        let mut sim = Simulator::new(
            run.context().clone(),
            SimConfig::with_horizon(run.horizon()),
        );
        let c = run.context().network().process_by_name("C").unwrap();
        let e = run.context().network().process_by_name("E").unwrap();
        sim.external(Time::new(2), c, "go_c");
        sim.external(Time::new(18), e, "go_e");
        let replayed = sim.run(&mut Ffip::new(), &mut sched).unwrap();
        assert_eq!(run, replayed, "seed {seed}: replay diverged");
    }
}

#[test]
fn knowledge_answers_survive_the_round_trip() {
    // A knowledge claim computed on the original run holds verbatim on the
    // decoded copy — the codec loses nothing the engine needs.
    let run = fig2b_run(11);
    let net = run.context().network();
    let c = net.process_by_name("C").unwrap();
    let a = net.process_by_name("A").unwrap();
    let b = net.process_by_name("B").unwrap();
    let sigma_c = run.external_receipt_node(c, "go_c").unwrap();
    let sigma = run.timeline(b).last().unwrap().id();
    if !run.past(sigma).contains(sigma_c) {
        return;
    }
    let theta_a = GeneralNode::chain(sigma_c, &[a]).unwrap();
    let theta_b = GeneralNode::basic(sigma);

    let engine1 = KnowledgeEngine::new(&run, sigma).unwrap();
    let m1 = engine1.max_x(&theta_a, &theta_b).unwrap();

    let back = codec::decode(&codec::encode(&run)).unwrap();
    let engine2 = KnowledgeEngine::new(&back, sigma).unwrap();
    let m2 = engine2.max_x(&theta_a, &theta_b).unwrap();
    assert_eq!(m1, m2);

    // Witnesses extracted from one copy validate against the other.
    if let Some((w, vz)) = engine1.witness(&theta_a, &theta_b).unwrap() {
        let report = vz.validate(&back).unwrap();
        assert_eq!(report.weight, w);
    }
}

#[test]
fn figure_exports_cover_the_run() {
    let run = fig2b_run(3);
    let net_dot = dot::network_dot(run.context().network(), run.context().bounds());
    assert_eq!(net_dot.matches(" -> ").count(), 5); // one per channel

    let gb = BoundsGraph::of_run(&run);
    let gb_dot = dot::bounds_graph_dot(&gb, &run);
    // Every vertex and edge is drawn.
    assert_eq!(gb_dot.matches(" -> ").count(), gb.edge_count());
    for p in run.context().network().processes() {
        assert!(gb_dot.contains(&format!("cluster_p{}", p.index())));
    }

    let sigma = run
        .timeline(run.context().network().process_by_name("B").unwrap())
        .last()
        .unwrap()
        .id();
    let ge = ExtendedGraph::new(&run, sigma);
    let ge_dot = dot::extended_graph_dot(&ge, &run);
    assert_eq!(ge_dot.matches("shape=diamond").count(), 5); // one ψ per process
    assert_eq!(ge_dot.matches(" -> ").count(), ge.graph().edge_count());

    // The ASCII diagram shows every process and every delivered message.
    let art = diagram::render(&run);
    for p in run.context().network().processes() {
        assert!(art.contains(run.context().network().name(p)));
    }
}
