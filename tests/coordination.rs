//! Cross-crate coordination suites: Theorem 3 (knowledge of
//! preconditions), protocol soundness under adversarial scheduling, and
//! the optimal protocol's dominance over the baselines.

mod common;

use common::workloads;
use proptest::prelude::*;
use zigzag::bcm::scheduler::{EagerScheduler, FractionScheduler, LazyScheduler, RandomScheduler};
use zigzag::bcm::{Network, ProcessId, Time};
use zigzag::coord::{
    compare_strategies, AsyncChainStrategy, BStrategy, CoordKind, NeverStrategy, OptimalStrategy,
    RecklessStrategy, Scenario, SimpleForkStrategy, TimedCoordination,
};

fn fig1_scenario(x: i64, late: bool) -> Scenario {
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, 2, 5).unwrap();
    nb.add_channel(c, b, 9, 12).unwrap();
    nb.add_channel(a, b, 1, 4).unwrap();
    let ctx = nb.build().unwrap();
    let kind = if late {
        CoordKind::Late { x }
    } else {
        CoordKind::Early { x }
    };
    Scenario::new(
        TimedCoordination::new(kind, a, b, c),
        ctx,
        Time::new(3),
        Time::new(90),
    )
    .unwrap()
}

/// Theorem 3: whenever any sound strategy acts, a message chain from σ_C
/// reaches its action node (knowledge of preconditions). Checked for
/// every stock strategy across schedule families.
#[test]
fn theorem3_b_never_acts_blind() {
    for x in [-3i64, 0, 2, 4] {
        for late in [true, false] {
            let sc = fig1_scenario(x, late);
            let strategies: Vec<Box<dyn BStrategy>> = vec![
                Box::new(OptimalStrategy::new()),
                Box::new(SimpleForkStrategy::default()),
                Box::new(AsyncChainStrategy::new()),
            ];
            for mut s in strategies {
                for seed in 0..10u64 {
                    let (_, verdict) = sc
                        .run_verified(s.as_mut(), &mut RandomScheduler::seeded(seed))
                        .unwrap();
                    assert!(
                        verdict.ok,
                        "{} violated at x={x}: {:?}",
                        s.name(),
                        verdict.violation
                    );
                    if verdict.b_node.is_some() {
                        assert!(
                            verdict.b_heard_go,
                            "{} acted without hearing the trigger (x={x})",
                            s.name()
                        );
                    }
                }
            }
        }
    }
}

/// The verifier and adversarial schedules catch unsound strategies: the
/// reckless control violates infeasible specs.
#[test]
fn adversarial_schedules_catch_reckless_b() {
    let sc = fig1_scenario(12, true); // above any obtainable guarantee
    let mut caught = 0;
    for seed in 0..30u64 {
        let (_, verdict) = sc
            .run_verified(&mut RecklessStrategy, &mut RandomScheduler::seeded(seed))
            .unwrap();
        caught += !verdict.ok as u32;
    }
    assert!(caught > 0, "no schedule caught the reckless strategy");
    // Lazy/eager extremes too.
    let (_, v1) = sc
        .run_verified(&mut RecklessStrategy, &mut LazyScheduler)
        .unwrap();
    let (_, v2) = sc
        .run_verified(&mut RecklessStrategy, &mut EagerScheduler)
        .unwrap();
    assert!(!v1.ok || !v2.ok, "extreme schedules both satisfied x=12");
}

/// Dominance: whenever the simple-fork baseline acts, the optimal
/// protocol acts no later; the async baseline never acts earlier than
/// either on Late specs it can handle.
#[test]
fn optimal_dominates_baselines() {
    for x in [0i64, 2, 4] {
        let sc = fig1_scenario(x, true);
        for seed in 0..15u64 {
            let (_, v_opt) = sc
                .run_verified(
                    &mut OptimalStrategy::new(),
                    &mut RandomScheduler::seeded(seed),
                )
                .unwrap();
            let (_, v_fork) = sc
                .run_verified(
                    &mut SimpleForkStrategy::default(),
                    &mut RandomScheduler::seeded(seed),
                )
                .unwrap();
            let (_, v_async) = sc
                .run_verified(&mut AsyncChainStrategy, &mut RandomScheduler::seeded(seed))
                .unwrap();
            if let Some(tf) = v_fork.b_time {
                let to = v_opt.b_time.expect("optimal must act whenever fork does");
                assert!(to <= tf, "x={x} seed {seed}: optimal {to} after fork {tf}");
            }
            if let (Some(ta), Some(to)) = (v_async.b_time, v_opt.b_time) {
                assert!(to <= ta, "x={x} seed {seed}: optimal {to} after async {ta}");
            }
        }
    }
}

/// The comparison harness agrees with the per-run dominance and reports
/// zero violations for all sound strategies.
#[test]
fn comparison_harness_consistency() {
    let sc = fig1_scenario(0, true);
    let table = compare_strategies(&sc, 0..12).unwrap();
    assert_eq!(table.len(), 4); // optimal, pattern, fork, async
    for row in &table {
        assert_eq!(row.violations, 0, "{}", row.strategy);
    }
    let by_name = |n: &str| table.iter().find(|r| r.strategy == n).unwrap();
    let opt = by_name("optimal-zigzag");
    let fork = by_name("simple-fork");
    let async_ = by_name("async-chain");
    assert!(opt.acted >= fork.acted);
    assert!(opt.acted >= async_.acted);
    if let (Some(a), Some(b)) = (opt.mean_b_time, async_.mean_b_time) {
        assert!(a <= b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Protocol soundness fuzz: on random strongly-connected networks with
    /// random roles and separations, no stock strategy ever violates its
    /// specification, and abstention is the worst that happens.
    #[test]
    fn protocol_soundness_fuzz(
        w in workloads(),
        x in -4i64..8,
        late in any::<bool>(),
        roles in (0usize..5, 0usize..5),
    ) {
        let ctx = w.context();
        let n = ctx.network().len();
        let c = ProcessId::new((roles.0 % n) as u32);
        let b = ProcessId::new((roles.1 % n) as u32);
        // A = some out-neighbor of C (guaranteed by the ring).
        let a = ctx.network().out_neighbors(c).first().copied().unwrap();
        let kind = if late { CoordKind::Late { x } } else { CoordKind::Early { x } };
        let spec = TimedCoordination::new(kind, a, b, c);
        let Ok(sc) = Scenario::new(spec, ctx, Time::new(2), Time::new(70)) else {
            return Ok(()); // degenerate role assignment
        };
        let strategies: Vec<Box<dyn BStrategy>> = vec![
            Box::new(OptimalStrategy::new()),
            Box::new(SimpleForkStrategy::default()),
            Box::new(AsyncChainStrategy::new()),
            Box::new(NeverStrategy),
        ];
        for mut s in strategies {
            for sched_kind in 0..3u8 {
                let verdict = match sched_kind {
                    0 => sc.run_verified(s.as_mut(), &mut RandomScheduler::seeded(w.seed)),
                    1 => sc.run_verified(s.as_mut(), &mut EagerScheduler),
                    _ => sc.run_verified(s.as_mut(), &mut FractionScheduler::new(0.7)),
                };
                match verdict {
                    Ok((_, v)) => {
                        prop_assert!(v.ok, "{} violated: {:?}", s.name(), v.violation);
                        if v.b_node.is_some() {
                            prop_assert!(v.b_heard_go, "{} acted blind", s.name());
                        }
                    }
                    // Horizon too small to adjudicate: acceptable.
                    Err(zigzag::coord::CoordError::Inconclusive { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
    }
}
