//! Mechanical verification of the paper's theorems on randomized
//! workloads: Theorem 1 (zigzag sufficiency), Theorem 2 (zigzag necessity
//! via slow-run tightness and Lemma 5 extraction) and Theorem 4 (knowledge
//! ⇔ σ-visible zigzag, via witnesses and refutation runs).

mod common;

use common::workloads;
use proptest::prelude::*;
use zigzag::bcm::validate::{validate_run, Strictness};
use zigzag::bcm::NodeId;
use zigzag::core::bounds_graph::BoundsGraph;
use zigzag::core::construct::{slow_run, FrontierGraph};
use zigzag::core::extract::{zigzag_for_pair, zigzag_from_gb_path};
use zigzag::core::knowledge::KnowledgeEngine;
use zigzag::core::precedence::satisfies;
use zigzag::core::CoreError;
use zigzag::core::GeneralNode;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: every zigzag extracted from a GB path validates, and the
    /// realized gap dominates the weight in the generating run.
    #[test]
    fn theorem1_zigzag_sufficiency(w in workloads()) {
        let run = w.run();
        validate_run(&run, Strictness::Strict).unwrap();
        let gb = BoundsGraph::of_run(&run);
        let nodes: Vec<NodeId> = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .collect();
        for &a in nodes.iter().take(6) {
            for &b in nodes.iter().take(6) {
                let Some((weight, edges)) = gb.longest_path(a, b).unwrap() else { continue };
                let z = zigzag_from_gb_path(&gb, a, &edges).unwrap();
                match z.validate(&run) {
                    Ok(report) => {
                        prop_assert_eq!(report.weight, weight);
                        prop_assert!(report.gap >= report.weight,
                            "Theorem 1 violated: gap {} < weight {}", report.gap, report.weight);
                    }
                    Err(CoreError::HorizonTooSmall { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
    }

    /// Theorem 2: the slow run of σ is a legal run in which every
    /// frontier-graph longest-path bound is achieved exactly; the
    /// extracted GB zigzag soundly lower-bounds it.
    #[test]
    fn theorem2_slow_run_tightness(w in workloads()) {
        let run = w.run();
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last();
        let Some(sigma) = sigma else { return Ok(()) };
        let sr = slow_run(&run, sigma).unwrap();
        validate_run(&sr.run, Strictness::Strict).unwrap();
        let t_sigma = sr.run.time(sigma).unwrap();
        let fg = FrontierGraph::of_run(&run);
        for (&node, &t) in sr.timing.iter().take(10) {
            // Tight: gap equals the frontier longest-path weight.
            let gap = t_sigma.diff(t);
            prop_assert_eq!(gap, sr.d[&node]);
            let tb = fg.tight_bound(node, sigma).unwrap().unwrap();
            prop_assert_eq!(tb, gap);
            // Lemma 5 witness from GB is sound (may be weaker than the
            // frontier bound at the horizon edge).
            if let Some((wz, z)) = zigzag_for_pair(&run, node, sigma).unwrap() {
                prop_assert!(wz <= gap);
                match z.validate(&run) {
                    Ok(report) => prop_assert_eq!(report.weight, wz),
                    Err(CoreError::HorizonTooSmall { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
    }

    /// Theorem 4, positive direction: max-x answers come with σ-visible
    /// zigzag witnesses of exactly that weight, valid in the run *and* in
    /// the extremal fast run.
    #[test]
    fn theorem4_witnesses(w in workloads()) {
        let run = w.run();
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last();
        let Some(sigma) = sigma else { return Ok(()) };
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let past = run.past(sigma);
        let nodes: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
        for &a in nodes.iter().take(5) {
            for &b in nodes.iter().take(5) {
                let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                let Some((m, vz)) = engine.witness(&ta, &tb).unwrap() else { continue };
                prop_assert_eq!(Some(m), engine.max_x(&ta, &tb).unwrap());
                match vz.validate(&run) {
                    Ok(report) => {
                        prop_assert_eq!(report.weight, m);
                        prop_assert_eq!((report.from, report.to), (a, b));
                    }
                    Err(CoreError::HorizonTooSmall { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
            }
        }
    }

    /// Theorem 4, negative direction: any claim one past the threshold is
    /// refuted by a legal run indistinguishable at σ.
    #[test]
    fn theorem4_refutations(w in workloads()) {
        let run = w.run();
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last();
        let Some(sigma) = sigma else { return Ok(()) };
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let past = run.past(sigma);
        let nodes: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
        for &a in nodes.iter().take(4) {
            for &b in nodes.iter().take(4) {
                let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                let m = engine.max_x(&ta, &tb).unwrap();
                let x = m.map_or(-5, |m| m + 1);
                let fr = engine.refute(&ta, &tb, x).unwrap().expect("refutable");
                validate_run(&fr.run, Strictness::Strict).unwrap();
                // Indistinguishability at σ: the entire past is reproduced.
                for n in past.iter() {
                    prop_assert!(fr.run.appears(n), "past node {} lost", n);
                }
                prop_assert!(!satisfies(&fr.run, &ta, &tb, x).unwrap(),
                    "refutation run satisfies {} --{}--> {}", a, x, b);
                // At the threshold there is no refutation.
                if let Some(m) = m {
                    prop_assert!(engine.refute(&ta, &tb, m).unwrap().is_none());
                }
            }
        }
    }

    /// Theorem 4 with *general* nodes: queries whose chains leave the
    /// observer's past (exercising the ψ-clamped and chain-merged witness
    /// shapes). Witness weights still equal max-x, and witnesses still
    /// validate.
    #[test]
    fn theorem4_general_node_witnesses(w in workloads()) {
        let run = w.run();
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last();
        let Some(sigma) = sigma else { return Ok(()) };
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let past = run.past(sigma);
        let net = run.context().network().clone();
        let bases: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
        // All one-hop general nodes over past bases.
        let mut thetas: Vec<GeneralNode> = Vec::new();
        for &b in bases.iter().take(4) {
            thetas.push(GeneralNode::basic(b));
            for &j in net.out_neighbors(b.proc()) {
                thetas.push(GeneralNode::chain(b, &[j]).unwrap());
            }
        }
        let mut checked = 0u32;
        for t1 in thetas.iter().take(6) {
            for t2 in thetas.iter().take(6) {
                let Ok(m) = engine.max_x(t1, t2) else { continue };
                let Some(m) = m else { continue };
                let (mw, vz) = engine.witness(t1, t2).unwrap().expect("witness");
                prop_assert_eq!(mw, m);
                match vz.validate(&run) {
                    Ok(report) => {
                        prop_assert_eq!(report.weight, m,
                            "general witness weight off for {} -> {}", t1, t2);
                        checked += 1;
                    }
                    Err(CoreError::HorizonTooSmall { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                }
                // The fast run realizes the threshold for general nodes too.
                let fr = engine.fast_run_of(t1, 0, 40).unwrap();
                validate_run(&fr.run, Strictness::Strict).unwrap();
                let g1 = t1.time_in(&fr.run);
                let g2 = t2.time_in(&fr.run);
                if let (Ok(g1), Ok(g2)) = (g1, g2) {
                    prop_assert_eq!(g2.diff(g1), m,
                        "fast run gap off for {} -> {}", t1, t2);
                }
            }
        }
        let _ = checked;
    }

    /// Knowledge is monotone in the observer: as a process advances along
    /// its timeline (its past grows), its threshold for any fixed pair of
    /// recognized nodes never decreases — information is never lost.
    #[test]
    fn knowledge_monotonicity(w in workloads()) {
        let run = w.run();
        // Pick the process with the longest timeline and two successive
        // observers on it.
        let net = run.context().network().clone();
        let Some(p) = net
            .processes()
            .max_by_key(|&p| run.timeline(p).len())
        else { return Ok(()) };
        let tl = run.timeline(p);
        if tl.len() < 3 {
            return Ok(());
        }
        let sigma_early = tl[tl.len() - 2].id();
        let sigma_late = tl[tl.len() - 1].id();
        let e_early = KnowledgeEngine::new(&run, sigma_early).unwrap();
        let e_late = KnowledgeEngine::new(&run, sigma_late).unwrap();
        let past_early = run.past(sigma_early);
        let nodes: Vec<NodeId> = past_early.iter().filter(|n| !n.is_initial()).collect();
        for &a in nodes.iter().take(5) {
            for &b in nodes.iter().take(5) {
                let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                let m1 = e_early.max_x(&ta, &tb).unwrap();
                let m2 = e_late.max_x(&ta, &tb).unwrap();
                match (m1, m2) {
                    (Some(m1), Some(m2)) => prop_assert!(
                        m2 >= m1,
                        "knowledge lost at {}: {} -> {} fell {} -> {}",
                        sigma_late, a, b, m1, m2
                    ),
                    (Some(m1), None) => return Err(TestCaseError::fail(format!(
                        "reachability lost for {a} -> {b} (had {m1})"
                    ))),
                    _ => {}
                }
            }
        }
    }

    /// The all-pairs threshold matrix agrees with pairwise queries.
    #[test]
    fn knowledge_matrix_consistency(w in workloads()) {
        let run = w.run();
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last();
        let Some(sigma) = sigma else { return Ok(()) };
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let matrix = engine.max_x_basic_matrix().unwrap();
        let past = run.past(sigma);
        let nodes: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
        for &a in nodes.iter().take(5) {
            for &b in nodes.iter().take(5) {
                let pairwise = engine
                    .max_x(&GeneralNode::basic(a), &GeneralNode::basic(b))
                    .unwrap();
                prop_assert_eq!(matrix[(a, b)], pairwise,
                    "matrix disagrees with pairwise at {}->{}", a, b);
            }
        }
    }

    /// Knowledge decisions depend only on past(r, σ): recomputing against
    /// the σ-fast run (which agrees with r exactly on the past) yields the
    /// same thresholds.
    #[test]
    fn knowledge_is_local_to_the_past(w in workloads()) {
        let run = w.run();
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last();
        let Some(sigma) = sigma else { return Ok(()) };
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let past = run.past(sigma);
        let nodes: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
        let Some(&anchor) = nodes.first() else { return Ok(()) };
        let fr = engine.fast_run_of(&GeneralNode::basic(anchor), 0, 20).unwrap();
        let engine2 = KnowledgeEngine::new(&fr.run, sigma).unwrap();
        for &a in nodes.iter().take(4) {
            for &b in nodes.iter().take(4) {
                let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                let m1 = engine.max_x(&ta, &tb).unwrap();
                let m2 = engine2.max_x(&ta, &tb).unwrap();
                prop_assert_eq!(m1, m2,
                    "knowledge changed across indistinguishable runs at {}->{}", a, b);
            }
        }
    }
}
