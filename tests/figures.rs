//! Figure-by-figure reproduction of the paper's worked scenarios.
//!
//! Each test lays out one of Figures 1–8 (or the construction it
//! illustrates) and checks the quantitative claim made in the text.

use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::{EagerScheduler, PerChannelScheduler, RandomScheduler};
use zigzag::bcm::validate::{validate_run, Strictness};
use zigzag::bcm::{Channel, NetPath, Network, NodeId, ProcessId, Run, SimConfig, Simulator, Time};
use zigzag::core::bounds_graph::{BoundsGraph, LABEL_RECV, LABEL_SEND};
use zigzag::core::construct::slow_run;
use zigzag::core::extended_graph::{ExtVertex, ExtendedGraph};
use zigzag::core::knowledge::KnowledgeEngine;
use zigzag::core::visible::VisibleZigzag;
use zigzag::core::{GeneralNode, TwoLeggedFork, ZigzagPattern};

/// Figure 1: the simple fork. `L_CB >= U_CA + x` guarantees `a --x--> b`
/// with no A↔B communication, across every legal schedule.
#[test]
fn figure1_simple_fork() {
    let mut nb = Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, 2, 5).unwrap();
    nb.add_channel(c, b, 9, 12).unwrap();
    let ctx = nb.build().unwrap();
    let x = 9i64 - 5; // L_CB − U_CA
    for seed in 0..40 {
        let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(3), c, "go");
        let run = sim
            .run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap();
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let ta = GeneralNode::chain(sigma_c, &[a])
            .unwrap()
            .time_in(&run)
            .unwrap();
        let tb = GeneralNode::chain(sigma_c, &[b])
            .unwrap()
            .time_in(&run)
            .unwrap();
        assert!(
            tb.diff(ta) >= x,
            "seed {seed}: fork guarantee broken (gap {})",
            tb.diff(ta)
        );
    }
}

/// Figure 2a network with Equation (1)'s bounds.
struct Fig2 {
    a: ProcessId,
    b: ProcessId,
    c: ProcessId,
    d: ProcessId,
    e: ProcessId,
    ctx: zigzag::bcm::Context,
}

fn fig2(with_report_channel: bool) -> Fig2 {
    let mut nb = Network::builder();
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    let c = nb.add_process("C");
    let d = nb.add_process("D");
    let e = nb.add_process("E");
    nb.add_channel(c, a, 1, 3).unwrap(); // U_CA = 3
    nb.add_channel(c, d, 6, 8).unwrap(); // L_CD = 6
    nb.add_channel(e, d, 1, 2).unwrap(); // U_ED = 2
    nb.add_channel(e, b, 4, 7).unwrap(); // L_EB = 4
    if with_report_channel {
        nb.add_channel(d, b, 1, 5).unwrap();
    }
    Fig2 {
        a,
        b,
        c,
        d,
        e,
        ctx: nb.build().unwrap(),
    }
}

fn fig2_run(f: &Fig2, tc: u64, te: u64, seed: u64) -> Run {
    let mut sim = Simulator::new(f.ctx.clone(), SimConfig::with_horizon(Time::new(90)));
    sim.external(Time::new(tc), f.c, "go_c");
    sim.external(Time::new(te), f.e, "go_e");
    sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
        .unwrap()
}

fn fig2_pattern(f: &Fig2, run: &Run) -> ZigzagPattern {
    let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
    let sigma_e = run.external_receipt_node(f.e, "go_e").unwrap();
    let lower = TwoLeggedFork::new(
        GeneralNode::basic(sigma_c),
        NetPath::new(vec![f.c, f.d]).unwrap(),
        NetPath::new(vec![f.c, f.a]).unwrap(),
    )
    .unwrap();
    let upper = TwoLeggedFork::new(
        GeneralNode::basic(sigma_e),
        NetPath::new(vec![f.e, f.b]).unwrap(),
        NetPath::new(vec![f.e, f.d]).unwrap(),
    )
    .unwrap();
    ZigzagPattern::new(vec![lower, upper]).unwrap()
}

/// Figure 2a + Equation (1): whenever D hears C before E, the zigzag
/// guarantees `t_b > t_a + x` for `x = −U_CA + L_CD − U_ED + L_EB`.
#[test]
fn figure2a_equation1() {
    let f = fig2(false);
    let eq1 = -3i64 + 6 - 2 + 4; // = 5
    let mut checked = 0;
    for seed in 0..40 {
        let run = fig2_run(&f, 2, 18, seed);
        let z = fig2_pattern(&f, &run);
        let Ok(report) = z.validate(&run) else {
            continue; // D heard E first: not a zigzag in this run
        };
        // wt(Z) = Eq(1) + S(Z); the junction at D is separated by >= 1.
        assert!(report.separations >= 1);
        assert_eq!(report.weight, eq1 + report.separations as i64);
        assert!(report.gap > eq1, "seed {seed}: t_b <= t_a + x");
        checked += 1;
    }
    assert!(checked > 20, "only {checked} zigzag runs");
}

/// Figure 2b: with the D → B report the pattern becomes σ-visible at B,
/// and B's knowledge engine certifies `Late⟨a --x--> b⟩` for the Eq. (1)
/// weight; without the report channel the same node knows strictly less.
#[test]
fn figure2b_visibility_gap() {
    let f = fig2(true);
    let run = fig2_run(&f, 2, 18, 11);
    let z = fig2_pattern(&f, &run);
    let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
    // B's first node that heard C (through D's report), E and D's order.
    let sigma = run
        .timeline(f.b)
        .iter()
        .map(|r| r.id())
        .find(|&n| {
            let past = run.past(n);
            past.contains(sigma_c)
                && past.contains(NodeId::new(f.d, 1))
                && past.contains(run.external_receipt_node(f.e, "go_e").unwrap())
        })
        .expect("report reaches B");
    let vz = VisibleZigzag::new(z, sigma);
    let report = vz.validate(&run).unwrap();
    assert!(report.weight >= 6); // Eq (1) + separation

    // The knowledge engine agrees: K_σ(θ_a --x--> σ_E·B) for x = weight.
    // (σ_E·B is expressed as a general node: its resolved basic node lies
    // outside σ's past, but its base σ_E is σ-recognized.)
    let engine = KnowledgeEngine::new(&run, sigma).unwrap();
    let theta_a = GeneralNode::chain(sigma_c, &[f.a]).unwrap();
    let sigma_e = run.external_receipt_node(f.e, "go_e").unwrap();
    let theta_b = GeneralNode::chain(sigma_e, &[f.b]).unwrap();
    let m = engine.max_x(&theta_a, &theta_b).unwrap().unwrap();
    assert!(
        m >= report.weight,
        "knowledge {m} below witness weight {}",
        report.weight
    );
}

/// Without the report, B cannot know the zigzag exists: its knowledge
/// about A's node is limited to single-fork evidence through E — which is
/// *negative* here (E's path to B has small bounds).
#[test]
fn figure2a_without_report_b_knows_less() {
    let f_with = fig2(true);
    let f_without = fig2(false);
    let threshold = |f: &Fig2| -> Option<i64> {
        let run = fig2_run(f, 2, 18, 5);
        let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
        let theta_a = GeneralNode::chain(sigma_c, &[f.a]).unwrap();
        // Observe at B's last recorded node.
        let sigma = run.timeline(f.b).last().unwrap().id();
        if !run.past(sigma).contains(sigma_c) {
            return None;
        }
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        engine.max_x(&theta_a, &GeneralNode::basic(sigma)).unwrap()
    };
    let with = threshold(&f_with).expect("report gives B knowledge of σ_C");
    assert!(with >= 6, "with report: {with}");
    // Without the channel, B never even hears of σ_C: the query is not
    // σ-recognized (Theorem 3 forbids acting at all).
    assert_eq!(threshold(&f_without), None);
}

/// Figure 3 is the general two-legged fork; checked via longer legs.
#[test]
fn figure3_long_legged_fork() {
    let mut nb = Network::builder();
    let p: Vec<ProcessId> = (0..5).map(|i| nb.add_process(format!("p{i}"))).collect();
    // Base p0; head leg p0→p1→p2 (slow lowers), tail leg p0→p3→p4 (fast uppers).
    nb.add_channel(p[0], p[1], 5, 7).unwrap();
    nb.add_channel(p[1], p[2], 6, 9).unwrap();
    nb.add_channel(p[0], p[3], 1, 2).unwrap();
    nb.add_channel(p[3], p[4], 1, 3).unwrap();
    let ctx = nb.build().unwrap();
    let fork = TwoLeggedFork::new(
        GeneralNode::basic(NodeId::new(p[0], 1)),
        NetPath::new(vec![p[0], p[1], p[2]]).unwrap(),
        NetPath::new(vec![p[0], p[3], p[4]]).unwrap(),
    )
    .unwrap();
    for seed in 0..20 {
        let mut sim = Simulator::new(ctx.clone(), SimConfig::with_horizon(Time::new(60)));
        sim.external(Time::new(2), p[0], "go");
        let run = sim
            .run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap();
        assert_eq!(
            fork.weight(run.context().bounds()).unwrap(),
            (5 + 6) - (2 + 3)
        );
        let gap = fork.check_guarantee(&run).unwrap();
        assert!(gap >= 6, "seed {seed}: fork gap {gap}");
    }
}

/// Figure 6: the two bound edges a single delivery adds to `GB(r)`.
#[test]
fn figure6_bound_edges() {
    let mut nb = Network::builder();
    let i = nb.add_process("i");
    let j = nb.add_process("j");
    nb.add_channel(i, j, 3, 8).unwrap();
    nb.add_channel(j, i, 3, 8).unwrap();
    let ctx = nb.build().unwrap();
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(12)));
    sim.external(Time::new(1), i, "go");
    let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
    let gb = BoundsGraph::of_run(&run);
    let g = gb.graph();
    let i1 = NodeId::new(i, 1);
    let j1 = NodeId::new(j, 1);
    let fwd = g
        .edges_from(g.index_of(&i1).unwrap())
        .iter()
        .find(|e| e.label == LABEL_SEND && *g.vertex(e.to) == j1)
        .unwrap()
        .weight;
    let bwd = g
        .edges_from(g.index_of(&j1).unwrap())
        .iter()
        .find(|e| e.label == LABEL_RECV && *g.vertex(e.to) == i1)
        .unwrap()
        .weight;
    assert_eq!((fwd, bwd), (3, -8));
}

/// Figure 7: the GB path justifying Equation (1) exists and its weight
/// matches; the slow run realizes the tight bound.
#[test]
fn figure7_bounds_graph_path() {
    let f = fig2(false);
    // Force the Figure 2a schedule exactly: D hears C at tc+8, E at te+2.
    let mut sim = Simulator::new(f.ctx.clone(), SimConfig::with_horizon(Time::new(90)));
    sim.external(Time::new(2), f.c, "go_c");
    sim.external(Time::new(20), f.e, "go_e");
    let mut sched = PerChannelScheduler::new(0.0);
    sched.set_delay(Channel::new(f.c, f.d), 8);
    sched.set_delay(Channel::new(f.e, f.d), 2);
    let run = sim.run(&mut Ffip::new(), &mut sched).unwrap();
    validate_run(&run, Strictness::Strict).unwrap();

    let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
    let sigma_a = GeneralNode::chain(sigma_c, &[f.a])
        .unwrap()
        .resolve(&run)
        .unwrap();
    let sigma_b = GeneralNode::chain(run.external_receipt_node(f.e, "go_e").unwrap(), &[f.b])
        .unwrap()
        .resolve(&run)
        .unwrap();
    let gb = BoundsGraph::of_run(&run);
    let (w, edges) = gb
        .longest_path(sigma_a, sigma_b)
        .unwrap()
        .expect("Fig 7 path");
    // The path composes −U_CA, +L_CD, (+1 at D), −U_ED, +L_EB at least.
    assert!(w >= -3 + 6 + 1 - 2 + 4, "path weight {w}");
    assert!(!edges.is_empty());
    // The slow run of σ_B realizes the tight frontier bound.
    let sr = slow_run(&run, sigma_b).unwrap();
    validate_run(&sr.run, Strictness::Strict).unwrap();
    let gap = sr
        .run
        .time(sigma_b)
        .unwrap()
        .diff(sr.run.time(sigma_a).unwrap());
    assert_eq!(gap, sr.d[&sigma_a]);
    assert!(gap >= w);
}

/// Figure 8 / §5.1: an unseen delivery forces `σ_j --(1 − U_ij)--> σ_i`,
/// and that knowledge is available at σ via the extended graph.
#[test]
fn figure8_unseen_delivery_constraint() {
    let mut nb = Network::builder();
    let i = nb.add_process("i");
    let j = nb.add_process("j");
    nb.add_channel(i, j, 2, 6).unwrap();
    nb.add_channel(j, i, 2, 6).unwrap();
    let ctx = nb.build().unwrap();
    // i kicks at 1, floods j (delivery at 7, lazy); j kicks at 3 and
    // floods i (delivery at 5, eager-ish). Observer: i's node at 5.
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
    sim.external(Time::new(1), i, "kick_i");
    sim.external(Time::new(3), j, "kick_j");
    let mut sched = PerChannelScheduler::new(0.0);
    sched.set_delay(Channel::new(i, j), 6); // i's msgs to j: slow
    sched.set_delay(Channel::new(j, i), 2); // j's msgs to i: fast
    let run = sim.run(&mut Ffip::new(), &mut sched).unwrap();
    let sigma_i1 = run.external_receipt_node(i, "kick_i").unwrap();
    let sigma_j1 = run.external_receipt_node(j, "kick_j").unwrap();
    let sigma = run
        .node_at(i, Time::new(5))
        .expect("j's flood arrives at 5");
    let past = run.past(sigma);
    assert!(past.contains(sigma_j1) && !past.contains(NodeId::new(j, 2)));

    // σ has NOT seen the delivery of σ_i1's message to j, yet knows
    // σ_j1 --(1 − U_ij)--> σ_i1 … wait: the unseen delivery lands *after*
    // j's boundary σ_j1, so σ_i1 >= σ_j1 + 1 − U_ij.
    let ge = ExtendedGraph::new(&run, sigma);
    let lp = ge.longest_from(ExtVertex::Node(sigma_j1)).unwrap();
    let w = lp
        .weight(ge.index_of(ExtVertex::Node(sigma_i1)).unwrap())
        .expect("constraint path exists");
    assert!(w >= 1 - 6, "σ_j1 --({w})--> σ_i1 weaker than 1 − U_ij");
    // And the knowledge engine exposes exactly this as a max-x answer.
    let engine = KnowledgeEngine::new(&run, sigma).unwrap();
    let m = engine
        .max_x(&GeneralNode::basic(sigma_j1), &GeneralNode::basic(sigma_i1))
        .unwrap()
        .expect("known");
    assert_eq!(m, w.max(1 - 6));
}

/// Figures 4–5 shape: the knowledge witness for the Late protocol pattern
/// has its top fork based at a σ-recognized node and all lower heads in
/// the observer's past — checked structurally on Figure 2b.
#[test]
fn figures4_5_witness_shape() {
    let f = fig2(true);
    let run = fig2_run(&f, 2, 18, 3);
    let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
    let sigma = run.timeline(f.b).last().unwrap().id();
    if !run.past(sigma).contains(sigma_c) {
        return;
    }
    let engine = KnowledgeEngine::new(&run, sigma).unwrap();
    let theta_a = GeneralNode::chain(sigma_c, &[f.a]).unwrap();
    let Some((_, vz)) = engine
        .witness(&theta_a, &GeneralNode::basic(sigma))
        .unwrap()
    else {
        return;
    };
    vz.check_visibility(&run).unwrap();
    let past = run.past(sigma);
    let forks = vz.pattern().forks();
    for fork in &forks[..forks.len() - 1] {
        let head = fork.head().resolve(&run).unwrap();
        assert!(past.contains(head), "non-top head outside the past");
    }
    assert!(past.contains(forks.last().unwrap().base().base()));
}
