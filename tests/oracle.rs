//! The differential test oracle: a naive, allocation-heavy reference
//! implementation of the Theorem 4 decision procedure, cross-checked
//! against the optimized [`KnowledgeEngine`] on proptest-generated random
//! topologies and schedules.
//!
//! The reference rebuilds `GE(r, σ)` straight from Definition 16 into
//! `BTreeMap` adjacency (no CSR, no interning), runs a textbook dense
//! Bellman–Ford per source (no SPFA, no memoization, fresh maps per
//! call), and answers basic-node `max_x` queries as plain longest-path
//! weights. Anything the engine amortizes — shared `GE`, cached SPFA,
//! the dense all-pairs matrix, the GE-sharing `fast_run_of`/`refute`
//! path — must produce *exactly* these answers:
//!
//! * `max_x`/`knows` per pair, warm and cold;
//! * `max_x_basic_matrix` cell-for-cell;
//! * the materialized 0-fast run's realized gap per reachable pair;
//! * `refute`: `None` iff the claim is within the threshold, and returned
//!   counterexample runs validate and actually violate the claim.
//!
//! A third, **prefix-differential** block streams each run through the
//! incremental engine and holds it to the batch answers after *every*
//! append: `max_x` / `knows` / `max_x_basic_matrix` byte-for-byte on a
//! fresh `KnowledgeEngine` over the same prefix, `GB(r)` tight bounds
//! against a scratch `BoundsGraph`, and exact reconstruction of the
//! source run once the feed drains.
//!
//! Since the `zigzag::api` facade landed, the first and third blocks
//! additionally route every comparison through
//! `ZigzagService::dispatch` — a batch session alongside the direct
//! batch engine, and a stream session alongside the direct incremental
//! engine, checked at **every** prefix — so the facade's one shared
//! dispatch path is pinned byte-identical to the direct calls on the
//! same oracle case set.
//!
//! Since the sharded serving layer landed (PR 5), two more tiers pin the
//! throughput path:
//!
//! * **sharded dispatch**: [`zigzag::api::serve::serve`] over random
//!   session mixes (batch + replayed stream sessions on sharded tables)
//!   must return responses byte-identical to the serial
//!   decode-dispatch-encode loop at worker counts 1, 2 and 8 — error
//!   documents included;
//! * **warm exclude-mode decision state**: the incremental engine's
//!   cached own-sends-excluded observer states
//!   (`engine_excluding_own_sends`) must answer exactly like a fresh
//!   `ObserverState::build_excluding_own_sends` on the same prefix after
//!   **every** append — for the newest node and for a long-lived
//!   observer whose warm state crosses many appends — and the streaming
//!   driver's warm exclude-mode Protocol 2 decisions must equal fresh
//!   per-prefix rebuilds on a feedback (B-with-outgoing-channels)
//!   topology.
//!
//! Six proptest blocks × (128 + 96 + 100 + 64 + 32 + 48) cases ≥ the
//! 200-random-case floor (and the 100-case prefix floor); every
//! run-level case is a fresh `(topology, schedule)` pair.
//!
//! Since the SoA layout rewrite of the SPFA hot core (PR 6), a
//! **layout tier** pins the rewritten data path directly at sizes where
//! the layout matters: random raw graphs at n ∈ {64, 256} hold the cold
//! SPFA, the memoized hit, and the `spfa_delta` catch-up to a textbook
//! dense Bellman–Ford — per-vertex weights, positive-cycle verdicts, and
//! predecessor paths that re-walk real edges and sum to the reported
//! weight — and a counting-allocator test asserts the warm memoized
//! query loop performs zero heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use proptest::prelude::*;
use zigzag::api::{serve, wire, Query, Response, SessionConfig, ZigzagService};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::validate::{validate_run, Strictness};
use zigzag::bcm::{topology, NodeId, ProcessId, Run, RunCursor, SimConfig, Simulator, Time};
use zigzag::core::bounds_graph::BoundsGraph;
use zigzag::core::extended_graph::{ExtVertex, MessageIndex};
use zigzag::core::graph::{LongestPaths, WeightedDigraph};
use zigzag::core::incremental::IncrementalEngine;
use zigzag::core::knowledge::{KnowledgeEngine, ObserverState};
use zigzag::core::precedence::satisfies;
use zigzag::core::{CoreError, GeneralNode};

/// A pass-through [`System`] wrapper counting this thread's heap
/// allocations, backing the layout tier's zero-allocation assertion on
/// the warm memoized query loop. Frees are not counted: the hit path
/// hands out refcounted results, so dropping one never frees either.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

/// Heap allocations performed by the current thread so far.
fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        THREAD_ALLOCS.with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// The naive Definition 16 graph: `BTreeMap` adjacency, one entry per
/// vertex, no dense indices, rebuilt from scratch per observer.
struct NaiveGe {
    vertices: BTreeSet<ExtVertex>,
    edges: BTreeMap<ExtVertex, Vec<(ExtVertex, i64)>>,
}

fn naive_ge(run: &Run, sigma: NodeId) -> NaiveGe {
    let past = run.past(sigma);
    let net = run.context().network();
    let bounds = run.context().bounds();
    let mut vertices: BTreeSet<ExtVertex> = BTreeSet::new();
    let mut edges: BTreeMap<ExtVertex, Vec<(ExtVertex, i64)>> = BTreeMap::new();
    let add = |edges: &mut BTreeMap<ExtVertex, Vec<(ExtVertex, i64)>>,
               from: ExtVertex,
               to: ExtVertex,
               w: i64| {
        edges.entry(from).or_default().push((to, w));
    };

    for n in past.iter() {
        vertices.insert(ExtVertex::Node(n));
    }
    for p in net.processes() {
        vertices.insert(ExtVertex::Aux(p));
        // Successor edges within the past, then E' boundary → ψ_p.
        if let Some(boundary) = past.boundary(p) {
            for k in 1..=boundary.index() {
                add(
                    &mut edges,
                    ExtVertex::Node(NodeId::new(p, k - 1)),
                    ExtVertex::Node(NodeId::new(p, k)),
                    1,
                );
            }
            add(&mut edges, ExtVertex::Node(boundary), ExtVertex::Aux(p), 1);
        }
    }
    // Message edges: within-past pairs get ±bound edges; sends whose
    // delivery σ has not seen get E'' edges from ψ of the receiver.
    for m in run.messages() {
        if !past.contains(m.src()) {
            continue;
        }
        let cb = bounds.get(m.channel()).expect("bounds cover channels");
        let seen = m.delivery().map(|d| past.contains(d.node)).unwrap_or(false);
        if seen {
            let d = m.delivery().expect("checked").node;
            add(
                &mut edges,
                ExtVertex::Node(m.src()),
                ExtVertex::Node(d),
                cb.lower() as i64,
            );
            add(
                &mut edges,
                ExtVertex::Node(d),
                ExtVertex::Node(m.src()),
                -(cb.upper() as i64),
            );
        } else {
            add(
                &mut edges,
                ExtVertex::Aux(m.channel().to),
                ExtVertex::Node(m.src()),
                -(cb.upper() as i64),
            );
        }
    }
    // E''' edges between auxiliary vertices: (ψ_i, ψ_j) for (j, i) ∈ Chans.
    for ch in net.channels() {
        add(
            &mut edges,
            ExtVertex::Aux(ch.to),
            ExtVertex::Aux(ch.from),
            -(bounds.get(*ch).expect("covered").upper() as i64),
        );
    }
    NaiveGe { vertices, edges }
}

/// Textbook dense Bellman–Ford for longest paths: `|V| − 1` full rounds
/// over the whole edge multiset, distances in a fresh `BTreeMap`.
fn naive_longest_from(ge: &NaiveGe, src: ExtVertex) -> BTreeMap<ExtVertex, i64> {
    let mut dist: BTreeMap<ExtVertex, i64> = BTreeMap::new();
    dist.insert(src, 0);
    for _ in 1..ge.vertices.len().max(1) {
        let mut changed = false;
        for (from, outs) in &ge.edges {
            let Some(&df) = dist.get(from) else { continue };
            for &(to, w) in outs {
                let cand = df + w;
                if dist.get(&to).is_none_or(|&dt| cand > dt) {
                    dist.insert(to, cand);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

/// The reference answer: `max_x(a, b)` for basic σ-recognized nodes is
/// the longest-path weight `a → b` in `GE(r, σ)`, `None` if unreachable.
fn naive_max_x_table(
    run: &Run,
    sigma: NodeId,
    nodes: &[NodeId],
) -> BTreeMap<(NodeId, NodeId), Option<i64>> {
    let ge = naive_ge(run, sigma);
    let mut out = BTreeMap::new();
    for &a in nodes {
        let dist = naive_longest_from(&ge, ExtVertex::Node(a));
        for &b in nodes {
            out.insert((a, b), dist.get(&ExtVertex::Node(b)).copied());
        }
    }
    out
}

fn random_run(n: usize, density: u8, topo_seed: u64, sched_seed: u64, horizon: u64) -> Run {
    let ctx = topology::random(n, density as f64 / 10.0, 1, 6, topo_seed).unwrap();
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(horizon)));
    sim.external(Time::new(1), ProcessId::new(0), "kick");
    sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(sched_seed))
        .unwrap()
}

fn observers(run: &Run) -> Vec<NodeId> {
    // The deepest node (largest past) plus the shallowest non-initial one
    // (smallest past, most in-flight messages) — both regimes matter.
    let non_initial: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|k| !k.is_initial())
        .collect();
    let mut picks = Vec::new();
    if let Some(&last) = non_initial.last() {
        picks.push(last);
    }
    if let Some(&first) = non_initial.first() {
        if Some(first) != picks.first().copied() {
            picks.push(first);
        }
    }
    picks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Engine answers — pointwise, matrix, and knows — equal the naive
    /// reference on random (topology, schedule) cases.
    #[test]
    fn engine_matches_naive_reference(
        n in 3usize..7,
        density in 0u8..=10,
        topo_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
    ) {
        let run = random_run(n, density, topo_seed, sched_seed, 22);
        let service = ZigzagService::new();
        let session = service.open_batch(run.clone(), SessionConfig::new());
        for sigma in observers(&run) {
            let past = run.past(sigma);
            let nodes: Vec<NodeId> = past.iter().filter(|k| !k.is_initial()).collect();
            let reference = naive_max_x_table(&run, sigma, &nodes);
            let engine = KnowledgeEngine::new(&run, sigma).unwrap();
            let matrix = engine.max_x_basic_matrix().unwrap();
            prop_assert_eq!(matrix.len(), nodes.len());
            // The facade's batch session dispatches the same matrix,
            // byte-for-byte.
            let Response::MaxXMatrix(served) = service
                .dispatch(session, &Query::MaxXMatrix { sigma })
                .unwrap()
            else {
                unreachable!("matrix queries return matrices");
            };
            prop_assert_eq!(&served, &matrix, "dispatched matrix diverged at {}", sigma);
            for &a in &nodes {
                for &b in &nodes {
                    let want = reference[&(a, b)];
                    let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                    // Warm engine (first touch fills the caches)...
                    let got = engine.max_x(&ta, &tb).unwrap();
                    prop_assert_eq!(got, want, "max_x({}, {}) diverged", a, b);
                    // ...and again from the caches.
                    prop_assert_eq!(engine.max_x(&ta, &tb).unwrap(), want);
                    // The dense matrix agrees cell-for-cell.
                    prop_assert_eq!(matrix[(a, b)], want, "matrix({}, {})", a, b);
                    // knows is the threshold predicate.
                    if let Some(m) = want {
                        prop_assert!(engine.knows(&ta, &tb, m).unwrap());
                        prop_assert!(engine.knows(&ta, &tb, m - 2).unwrap());
                        prop_assert!(!engine.knows(&ta, &tb, m + 1).unwrap());
                    } else {
                        prop_assert!(!engine.knows(&ta, &tb, -1_000).unwrap());
                    }
                }
            }
            // A cold engine (fresh caches) answers identically on a sample,
            // and so does the facade — max_x, knows and a QueryBatch (the
            // batched path is the same code path, positionally aligned).
            if let (Some(&a), Some(&b)) = (nodes.first(), nodes.last()) {
                let cold = KnowledgeEngine::new(&run, sigma).unwrap();
                let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                prop_assert_eq!(cold.max_x(&ta, &tb).unwrap(), reference[&(a, b)]);
                let x = reference[&(a, b)].unwrap_or(0);
                let batch = Query::QueryBatch(vec![
                    Query::MaxX {
                        sigma,
                        theta1: ta.clone(),
                        theta2: tb.clone(),
                    },
                    Query::Knows {
                        sigma,
                        theta1: ta.clone(),
                        theta2: tb.clone(),
                        x,
                    },
                ]);
                let Response::ResponseBatch(rs) = service.dispatch(session, &batch).unwrap()
                else {
                    unreachable!("batch queries return batch responses");
                };
                prop_assert_eq!(&rs[0], &Response::MaxX(reference[&(a, b)]));
                prop_assert_eq!(&rs[1], &Response::Knows(engine.knows(&ta, &tb, x).unwrap()));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// Prefix-differential tier: stream random runs event-by-event and
    /// hold the incremental engine to the batch answers at EVERY prefix.
    #[test]
    fn incremental_engine_matches_batch_on_every_prefix(
        n in 3usize..6,
        density in 0u8..=10,
        topo_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
    ) {
        let run = random_run(n, density, topo_seed, sched_seed, 14);
        let mut cursor = RunCursor::new(&run);
        let mut inc = IncrementalEngine::new(run.context_arc(), run.horizon());
        // The same feed drives a facade stream session in lockstep; every
        // dispatched answer must equal the direct engine call at every
        // prefix.
        let service = ZigzagService::new();
        let session = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
        // A persistent observer picked as soon as one exists: its state is
        // built once and must stay exact across all later appends.
        let mut tracked: Option<NodeId> = None;
        while let Some(ev) = cursor.next_event() {
            let node = inc.append_event(&ev).unwrap();
            prop_assert_eq!(service.append(session, &ev).unwrap().node, node);
            let tracked_sigma = *tracked.get_or_insert(node);
            let prefix = inc.run();

            // The appended node's all-pairs matrix, byte-for-byte —
            // direct, batch-engine, and dispatched forms.
            let online = inc.max_x_basic_matrix(node).unwrap();
            let batch = KnowledgeEngine::new(prefix, node).unwrap();
            prop_assert_eq!(&online, &batch.max_x_basic_matrix().unwrap(),
                "matrix diverged at {}", node);
            let Response::MaxXMatrix(served) = service
                .dispatch(session, &Query::MaxXMatrix { sigma: node })
                .unwrap()
            else {
                unreachable!("matrix queries return matrices");
            };
            prop_assert_eq!(&served, &online, "dispatched matrix diverged at {}", node);

            // The long-lived observer: sampled max_x/knows against a
            // fresh batch engine on the same prefix.
            let cold = KnowledgeEngine::new(prefix, tracked_sigma).unwrap();
            let warm = inc.engine(tracked_sigma).unwrap();
            let nodes: Vec<NodeId> = prefix
                .past(tracked_sigma)
                .iter()
                .filter(|k| !k.is_initial())
                .collect();
            for &a in nodes.iter().take(3) {
                for &b in nodes.iter().rev().take(3) {
                    let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                    let want = cold.max_x(&ta, &tb).unwrap();
                    prop_assert_eq!(warm.max_x(&ta, &tb).unwrap(), want,
                        "max_x({}, {}) diverged at observer {}", a, b, tracked_sigma);
                    prop_assert_eq!(
                        inc.knows(tracked_sigma, &ta, &tb, want.unwrap_or(0)).unwrap(),
                        cold.knows(&ta, &tb, want.unwrap_or(0)).unwrap()
                    );
                    // The stream session serves the identical threshold.
                    prop_assert_eq!(
                        service
                            .dispatch(session, &Query::MaxX {
                                sigma: tracked_sigma,
                                theta1: ta,
                                theta2: tb,
                            })
                            .unwrap(),
                        Response::MaxX(want),
                        "dispatched max_x diverged at {}", node
                    );
                }
            }

            // Global GB(r) tight bounds, delta-relaxed vs from-scratch vs
            // dispatched.
            let scratch = BoundsGraph::of_run(prefix);
            let want = scratch
                .longest_path(tracked_sigma, node)
                .unwrap()
                .map(|(w, _)| w);
            prop_assert_eq!(inc.tight_bound(tracked_sigma, node).unwrap(), want,
                "GB tight bound diverged at {}", node);
            prop_assert_eq!(
                service
                    .dispatch(session, &Query::TightBound {
                        from: tracked_sigma,
                        to: node,
                    })
                    .unwrap(),
                Response::TightBound(want),
                "dispatched tight bound diverged at {}", node
            );
        }
        // The drained feed reconstructed the recorded run exactly, in
        // both the direct engine and the facade session.
        prop_assert_eq!(inc.run(), &run);
        prop_assert_eq!(inc.event_count(), run.node_count() - n);
        prop_assert!(service.with_run(session, |grown| grown == &run).unwrap());

        // A batch session over the full run answers every sampled query
        // exactly like the fully-grown stream session.
        if let Some(sigma) = tracked {
            let batch_session = service.open_batch(run.clone(), SessionConfig::new());
            for q in [
                Query::MaxXMatrix { sigma },
                Query::TightBound {
                    from: sigma,
                    to: sigma,
                },
            ] {
                prop_assert_eq!(
                    service.dispatch(batch_session, &q).unwrap(),
                    service.dispatch(session, &q).unwrap(),
                    "batch and stream sessions diverged on {:?}", q
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The engine-shared constructions agree with the naive reference:
    /// the materialized 0-fast run realizes exactly the naive longest-path
    /// gap, and `refute` is a decision procedure for the naive threshold.
    #[test]
    fn constructions_match_naive_reference(
        n in 3usize..6,
        density in 0u8..=10,
        topo_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
    ) {
        let run = random_run(n, density, topo_seed, sched_seed, 20);
        let Some(&sigma) = observers(&run).first() else { return Ok(()) };
        let past = run.past(sigma);
        let nodes: Vec<NodeId> = past.iter().filter(|k| !k.is_initial()).collect();
        if nodes.is_empty() {
            return Ok(());
        }
        let reference = naive_max_x_table(&run, sigma, &nodes);
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        // Sample anchor: the observer itself plus the earliest node.
        let anchors = [nodes[0], sigma];
        for &a in &anchors {
            let ta = GeneralNode::basic(a);
            let fr = engine.fast_run_of(&ta, 0, 25).unwrap();
            validate_run(&fr.run, Strictness::Strict).unwrap();
            prop_assert!(fr.run.appears(sigma), "fast run lost the observer");
            for &b in &nodes {
                let Some(want) = reference[&(a, b)] else { continue };
                let gap = fr.run.time(b).unwrap().diff(fr.run.time(a).unwrap());
                prop_assert_eq!(
                    gap, want,
                    "0-fast run of {} realizes gap {} to {}, naive says {}",
                    a, gap, b, want
                );
            }
            // Refutation tier, on a bounded sample per case.
            for &b in nodes.iter().take(3) {
                let tb = GeneralNode::basic(b);
                let m = reference[&(a, b)];
                let x_over = m.map_or(-5, |m| m + 1);
                let fr = engine.refute(&ta, &tb, x_over).unwrap();
                let fr = fr.expect("claims above the naive threshold must be refutable");
                validate_run(&fr.run, Strictness::Strict).unwrap();
                prop_assert!(
                    !satisfies(&fr.run, &ta, &tb, x_over).unwrap(),
                    "refutation run does not refute {} --{}--> {}", a, x_over, b
                );
                if let Some(m) = m {
                    prop_assert!(
                        engine.refute(&ta, &tb, m).unwrap().is_none(),
                        "engine refuted a claim the naive oracle certifies"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Warm exclude-mode tier: the incremental engine's cached
    /// own-sends-excluded observer states equal fresh
    /// `build_excluding_own_sends` states after EVERY append — at the
    /// newest node (state built this instant) and at a long-lived
    /// observer (state built many appends ago and never invalidated).
    /// Random strongly-connected topologies mean every observer has
    /// outgoing channels, the regime where the two modes differ.
    #[test]
    fn warm_exclude_mode_states_match_fresh_builds_on_every_prefix(
        n in 3usize..6,
        density in 0u8..=10,
        topo_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
    ) {
        let run = random_run(n, density, topo_seed, sched_seed, 13);
        let mut cursor = RunCursor::new(&run);
        let mut inc = IncrementalEngine::new(run.context_arc(), run.horizon());
        let mut tracked: Option<NodeId> = None;
        while let Some(ev) = cursor.next_event() {
            let node = inc.append_event(&ev).unwrap();
            let tracked_sigma = *tracked.get_or_insert(node);
            let prefix = inc.run();
            let fresh_index = MessageIndex::of_run(prefix);
            for sigma in [node, tracked_sigma] {
                let warm = inc.engine_excluding_own_sends(sigma).unwrap();
                let fresh_state =
                    ObserverState::build_excluding_own_sends(prefix, sigma, &fresh_index)
                        .unwrap();
                let fresh = KnowledgeEngine::with_state(prefix, Arc::new(fresh_state));
                prop_assert_eq!(
                    warm.max_x_basic_matrix().unwrap(),
                    fresh.max_x_basic_matrix().unwrap(),
                    "warm exclude-mode state diverged from a fresh build at {} (prefix of {})",
                    sigma,
                    node
                );
                // Both modes stay warm side by side without crosstalk:
                // the full-mode state still equals its fresh build too.
                let full_state = ObserverState::build(prefix, sigma, &fresh_index).unwrap();
                let full = KnowledgeEngine::with_state(prefix, Arc::new(full_state));
                prop_assert_eq!(
                    inc.engine(sigma).unwrap().max_x_basic_matrix().unwrap(),
                    full.max_x_basic_matrix().unwrap(),
                    "full-mode state diverged beside the exclude-mode cache at {}",
                    sigma
                );
            }
        }
        prop_assert_eq!(inc.run(), &run);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded serving tier: `serve::serve` over a random session mix
    /// (sharded table, batch + replayed-stream sessions, hostile frames
    /// included) is byte-identical to the serial
    /// decode → dispatch → encode loop at worker counts 1, 2 and 8.
    #[test]
    fn sharded_serve_is_byte_identical_to_serial_dispatch(
        n in 3usize..6,
        density in 0u8..=10,
        topo_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
        shards in 1usize..6,
    ) {
        let run = random_run(n, density, topo_seed, sched_seed, 16);
        let service = ZigzagService::sharded(shards);
        prop_assert_eq!(service.shard_count(), shards);
        let batch_a = service.open_batch(run.clone(), SessionConfig::new());
        let (stream, _) = service.open_replay(&run, SessionConfig::new()).unwrap();
        let batch_b = service.open_batch(run.clone(), SessionConfig::new());
        let sessions = [batch_a, stream, batch_b];

        let nodes: Vec<NodeId> = run
            .nodes()
            .map(|r| r.id())
            .filter(|k| !k.is_initial())
            .collect();
        let mut frames: Vec<String> = Vec::new();
        for (k, &sigma) in nodes.iter().enumerate() {
            let id = sessions[k % sessions.len()];
            frames.push(serve::encode_frame(id, &Query::MaxXMatrix { sigma }));
            frames.push(serve::encode_frame(
                id,
                &Query::QueryBatch(vec![
                    Query::MaxX {
                        sigma,
                        theta1: GeneralNode::basic(nodes[0]),
                        theta2: GeneralNode::basic(sigma),
                    },
                    Query::TightBound {
                        from: nodes[0],
                        to: sigma,
                    },
                ]),
            ));
            // A deterministic failure (no spec configured) every few
            // frames: error documents obey the same identity contract.
            if k % 3 == 0 {
                frames.push(serve::encode_frame(id, &Query::CoordDecision));
            }
        }
        frames.push(serve::encode_frame(
            zigzag::api::SessionId::from_raw(9_999),
            &Query::MaxXMatrix { sigma: nodes[0] },
        ));
        frames.push("zigzag-frame v1\nsession ?\n".to_string());

        // The reference: one frame at a time, decoded, dispatched through
        // the ordinary single-caller path, re-encoded.
        let reference: Vec<String> = frames
            .iter()
            .map(|f| match serve::decode_frame(f) {
                Ok((id, q)) => match service.dispatch(id, &q) {
                    Ok(r) => wire::encode_response(&r),
                    Err(e) => serve::encode_error(&e),
                },
                Err(e) => serve::encode_error(&e),
            })
            .collect();
        for workers in [1usize, 2, 8] {
            prop_assert_eq!(
                &serve::serve(&service, &frames, workers),
                &reference,
                "sharded serving diverged at shards={} workers={}",
                shards,
                workers
            );
        }

        // Stats tier: the serving counters are exact over the passes
        // above — the reference loop plus three serve passes each
        // dispatched every frame that reached a session (all but the two
        // hostile tails), and the unbounded cache policy never evicted.
        let report = service.stats();
        let dispatched = 4 * (frames.len() as u64 - 2);
        prop_assert_eq!(report.queries, dispatched);
        prop_assert_eq!(report.latency.count(), dispatched);
        prop_assert!(report.observer_misses > 0, "no cache misses recorded");
        prop_assert!(report.observer_hits > 0, "no cache hits recorded");
        prop_assert_eq!(report.observer_evictions, 0);
        prop_assert_eq!(report.sessions_per_shard.len(), shards);
        prop_assert_eq!(report.sessions_per_shard.iter().sum::<u64>(), 3);
        prop_assert!(report.queue_depths.is_empty());
        // The Stats answer round-trips the wire byte-exactly: a Stats
        // frame through the serving loop (not itself a dispatch, so the
        // counters are frozen) decodes back to the same report.
        let stats_doc = serve::serve(
            &service,
            &[serve::encode_frame(sessions[0], &Query::Stats)],
            1,
        );
        match wire::decode_response(&stats_doc[0]) {
            Ok(Response::Stats(wired)) => prop_assert_eq!(*wired, report),
            other => prop_assert!(false, "stats frame misanswered: {other:?}"),
        }
    }
}

/// Warm exclude-mode Protocol 2 decisions on a feedback topology (B has
/// outgoing channels, including a B ⇄ D cycle — the regime where
/// exclude-mode differs from the paper's full `GE(r, σ)`): after every
/// append, the streaming driver's cached decision equals a fresh
/// `decide_at` (rebuilding the `MessageIndex` and the own-sends-excluded
/// graph from scratch) on the same prefix, and the final verdict equals
/// the in-simulation protocol and the batch helper.
#[test]
fn warm_exclude_decisions_on_feedback_topology_match_fresh_builds() {
    use zigzag::bcm::Network;
    use zigzag::coord::{
        decide_at, first_knowledge, CoordKind, OptimalStrategy, ProbeSemantics, Scenario,
        StreamDriver, TimedCoordination,
    };

    for (x, l_bd, u_bd) in [(4i64, 1u64, 1u64), (4, 1, 9), (5, 1, 1)] {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        let d = nb.add_process("D");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        nb.add_channel(c, d, 1, 2).unwrap();
        nb.add_channel(b, d, l_bd, u_bd).unwrap();
        nb.add_channel(d, b, 1, 3).unwrap();
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
        let sc = Scenario::new(spec.clone(), ctx, Time::new(3), Time::new(45)).unwrap();
        for seed in 0..4 {
            let (run, verdict) = sc
                .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                .unwrap();
            let mut driver = StreamDriver::new(spec.clone(), run.context_arc(), run.horizon())
                .with_probe(ProbeSemantics::ExcludeOwnSends);
            let mut cursor = RunCursor::new(&run);
            let mut decisions = 0usize;
            while let Some(ev) = cursor.next_event() {
                let report = driver.step(&ev).unwrap();
                let Some(knows) = report.b_knows else {
                    continue;
                };
                let fresh = decide_at(
                    &spec,
                    driver.engine().run(),
                    report.node,
                    ProbeSemantics::ExcludeOwnSends,
                )
                .unwrap();
                assert_eq!(
                    knows, fresh,
                    "x={x} [{l_bd},{u_bd}] seed {seed}: warm exclude decision \
                     diverged from the fresh rebuild at {}",
                    report.node
                );
                decisions += 1;
            }
            assert!(decisions > 0, "no B decisions exercised");
            // The warm verdict is the protocol's: equal to the
            // in-simulation action node and to the batch helper.
            assert_eq!(driver.first_known(), verdict.b_node, "x={x} seed {seed}");
            let (first, sigma_c) =
                first_knowledge(&spec, &run, ProbeSemantics::ExcludeOwnSends).unwrap();
            assert_eq!(first, driver.first_known());
            assert_eq!(sigma_c, driver.sigma_c());
        }
    }
}

// ---------------------------------------------------------------------------
// Layout tier (PR 6): the SoA SPFA hot core — cold, memoized, and
// delta-relaxed — against a textbook dense Bellman–Ford on raw edge
// lists, at sizes where the u32/SoA layout actually matters.
// ---------------------------------------------------------------------------

/// Textbook longest-path Bellman–Ford over a raw edge list: `n − 1`
/// full relaxation rounds plus a detection round; no CSR, no queue, no
/// reuse. `Err(())` means a positive cycle is reachable from `src`.
fn naive_longest_paths(
    n: usize,
    edges: &[(usize, usize, i64)],
    src: usize,
) -> Result<Vec<Option<i64>>, ()> {
    let mut dist: Vec<Option<i64>> = vec![None; n];
    dist[src] = Some(0);
    let relax = |dist: &mut Vec<Option<i64>>| {
        let mut changed = false;
        for &(u, v, w) in edges {
            let Some(du) = dist[u] else { continue };
            let cand = du + w;
            if dist[v].is_none_or(|dv| cand > dv) {
                dist[v] = Some(cand);
                changed = true;
            }
        }
        changed
    };
    for _ in 1..n.max(1) {
        if !relax(&mut dist) {
            return Ok(dist);
        }
    }
    if relax(&mut dist) {
        return Err(());
    }
    Ok(dist)
}

/// Holds one engine answer (cold, memoized hit, or delta catch-up) to
/// the naive reference: same positive-cycle verdict, same per-vertex
/// weight, and for every reachable vertex a predecessor path that walks
/// real edges of the graph from `src` and sums to the reported weight.
fn assert_matches_naive(
    g: &WeightedDigraph<usize>,
    got: &Result<Arc<LongestPaths>, CoreError>,
    naive: &Result<Vec<Option<i64>>, ()>,
    n: usize,
    src: usize,
    stage: &str,
) {
    match (naive, got) {
        (Err(()), Err(CoreError::PositiveCycle)) => {}
        (Ok(naive), Ok(lp)) => {
            for (i, &expected) in naive.iter().enumerate().take(n) {
                assert_eq!(
                    lp.weight(i),
                    expected,
                    "{stage}: dist diverged at vertex {i}"
                );
            }
            for (i, &expected) in naive.iter().enumerate().take(n) {
                let Some(path) = lp.path(i) else {
                    assert!(
                        expected.is_none(),
                        "{stage}: path missing for reachable {i}"
                    );
                    continue;
                };
                let mut at = src;
                let mut total = 0i64;
                for e in &path {
                    assert_eq!(e.from, at, "{stage}: path to {i} is not a walk");
                    assert!(
                        g.edges_from(e.from).contains(e),
                        "{stage}: path to {i} uses an edge not in the graph"
                    );
                    total += e.weight;
                    at = e.to;
                }
                assert_eq!(at, i, "{stage}: path does not end at {i}");
                assert_eq!(
                    Some(total),
                    expected,
                    "{stage}: path weight sum diverged at {i}"
                );
            }
        }
        (naive, got) => panic!(
            "{stage}: positive-cycle verdicts diverged (naive err: {}, engine err: {})",
            naive.is_err(),
            got.is_err()
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The rewritten SoA SPFA (cold and memoized) and `spfa_delta` (the
    /// append-log catch-up) answer exactly like the textbook dense
    /// Bellman–Ford on random raw graphs at n ∈ {64, 256} — weights,
    /// predecessor paths, and positive-cycle verdicts.
    #[test]
    fn layout_spfa_and_delta_match_dense_bellman_ford(
        big in any::<bool>(),
        dag_only in any::<bool>(),
        raw in collection::vec((0u16..=u16::MAX, 0u16..=u16::MAX, -10i64..=10), 64..=512),
        src_pick in 0u16..=u16::MAX,
    ) {
        let n = if big { 256usize } else { 64 };
        // Intern vertices 0..n up front (key = dense index), so the edge
        // split below never references an unknown endpoint.
        let mut g: WeightedDigraph<usize> = WeightedDigraph::new();
        for i in 0..n {
            g.add_vertex(i);
        }
        // `dag_only` forces u < v (acyclic by construction); otherwise
        // arbitrary endpoints make positive cycles likely, exercising
        // the verdict path of all three traversal flavours.
        let mut edges: Vec<(usize, usize, i64)> = Vec::new();
        for &(a, b, w) in &raw {
            let (mut u, mut v) = (a as usize % n, b as usize % n);
            if u == v {
                continue;
            }
            if dag_only && u > v {
                std::mem::swap(&mut u, &mut v);
            }
            edges.push((u, v, w));
        }
        let src = src_pick as usize % n;

        // Stream the first half in and query: a cold SPFA that seeds the
        // memo. (On a positive-cycle verdict the memo entry is dropped,
        // so the full-graph query below re-runs cold — also pinned.)
        let half = edges.len() / 2;
        for (i, &(u, v, w)) in edges[..half].iter().enumerate() {
            g.add_edge(u, v, w, i as u32);
        }
        let naive_half = naive_longest_paths(n, &edges[..half], src);
        let cold = g.longest_from_cached(&src);
        assert_matches_naive(&g, &cold, &naive_half, n, src, "prefix");
        drop(cold);

        // Append the rest and re-query: the memoized result catches up
        // over the append log via `spfa_delta`.
        for (i, &(u, v, w)) in edges[half..].iter().enumerate() {
            g.add_edge(u, v, w, (half + i) as u32);
        }
        let naive_full = naive_longest_paths(n, &edges, src);
        let delta = g.longest_from_cached(&src);
        assert_matches_naive(&g, &delta, &naive_full, n, src, "delta");
        drop(delta);

        // A fresh unmemoized SPFA and the in-tree dense ablation
        // baseline agree on the final graph too.
        match (&naive_full, g.longest_from(&src), g.longest_from_dense(&src)) {
            (Ok(naive), Ok(fresh), Ok(dense)) => {
                for (i, &expected) in naive.iter().enumerate().take(n) {
                    prop_assert_eq!(fresh.weight(i), expected);
                    prop_assert_eq!(dense[i], expected);
                }
            }
            (Err(()), Err(CoreError::PositiveCycle), Err(CoreError::PositiveCycle)) => {}
            (naive, fresh, dense) => prop_assert!(
                false,
                "verdicts diverged: naive err {}, fresh err {}, dense err {}",
                naive.is_err(),
                fresh.is_err(),
                dense.is_err()
            ),
        }
    }
}

/// The warm memoized query loop is allocation-free: after the first
/// `longest_from_cached` builds the CSR, runs SPFA, and grows the shared
/// scratch arena, every later hit on the unmodified graph is a lock, a
/// hash probe, and a refcount bump — zero heap traffic, counted by the
/// thread-local [`CountingAlloc`] this test binary installs.
#[test]
fn warm_query_loop_allocates_nothing() {
    let mut g: WeightedDigraph<usize> = WeightedDigraph::new();
    for i in 0..128usize {
        g.add_vertex(i);
    }
    for i in 0..127usize {
        g.add_edge(i, i + 1, 1, i as u32);
    }
    for i in (0..120usize).step_by(7) {
        g.add_edge(i, i + 5, 3, 1000 + i as u32);
    }
    let src = 0usize;
    let first = g.longest_from_cached(&src).expect("acyclic chain");
    assert!(first.reaches(127));
    drop(first);

    let before = thread_allocs();
    for _ in 0..64 {
        let lp = g.longest_from_cached(&src).expect("acyclic chain");
        std::hint::black_box(lp.weight(127));
    }
    let grew = thread_allocs() - before;
    assert_eq!(grew, 0, "warm longest_from_cached hits must not allocate");
}

// ---------------------------------------------------------------------
// Durability tier (PR 9): kill/recover at EVERY append boundary.
// ---------------------------------------------------------------------

/// A fresh scratch directory for one durability case, unique per case
/// parameters so shrinking reruns never collide with a stale tree.
fn durable_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "zigzag-oracle-durable-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The query set recovery is held byte-identical on: pointwise `max_x`,
/// the dense matrix at the newest observer, a `GB(r)` tight bound, and
/// the Protocol 2 coordination decision.
fn durable_probes(prefix_nodes: &[NodeId]) -> Vec<Query> {
    let mut probes = vec![Query::CoordDecision];
    if let (Some(&first), Some(&last)) = (prefix_nodes.first(), prefix_nodes.last()) {
        probes.push(Query::MaxXMatrix { sigma: last });
        probes.push(Query::MaxX {
            sigma: last,
            theta1: GeneralNode::basic(first),
            theta2: GeneralNode::basic(last),
        });
        probes.push(Query::TightBound {
            from: first,
            to: last,
        });
    }
    probes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Durability tier: stream random (topology, schedule) runs through a
    /// durable session and, after EVERY append, crash (drop nothing
    /// gracefully — just re-read the files) and recover into a fresh
    /// service. Every recovered answer must equal the uninterrupted
    /// session's at the same prefix, with and without snapshots; the
    /// final state must also survive an export/import migration.
    #[test]
    fn recovery_at_every_append_boundary_is_byte_identical(
        n in 3usize..6,
        density in 0u8..=10,
        topo_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
        snap_every in 0u64..4,
    ) {
        use zigzag::api::{CoordKind, SessionStore, StoreConfig, TimedCoordination};

        let run = random_run(n, density, topo_seed, sched_seed, 12);
        let events: Vec<_> = RunCursor::new(&run).collect();
        let config = SessionConfig::new().spec(TimedCoordination::new(
            CoordKind::Late { x: 3 },
            ProcessId::new(1),
            ProcessId::new((n - 1) as u32),
            ProcessId::new(0),
        ));
        // snap_every == 0 means log-only durability; otherwise snapshots
        // land every 1..=3 appends, so most boundaries recover through
        // snapshot + tail.
        let store_config = if snap_every == 0 {
            StoreConfig::new()
        } else {
            StoreConfig::new().snapshot_every(snap_every)
        };
        let dir = durable_dir(&format!("{n}-{density}-{topo_seed}-{sched_seed}-{snap_every}"));

        // The uninterrupted reference session, fed in lockstep.
        let reference = ZigzagService::new();
        let ref_id = reference.open_stream(run.context_arc(), run.horizon(), config.clone());

        let writer = ZigzagService::new();
        let store = SessionStore::open(&dir, store_config).unwrap();
        let id = store
            .open_stream(&writer, "feed", run.context_arc(), run.horizon(), config.clone())
            .unwrap();

        // Each appended event creates exactly one timeline node on its
        // process (index = events so far on that process, initial = 0).
        let mut next_idx = vec![0u32; n];
        let mut prefix_nodes: Vec<NodeId> = Vec::new();
        for (k, ev) in events.iter().enumerate() {
            store.append(&writer, id, ev).unwrap();
            reference.append(ref_id, ev).unwrap();
            next_idx[ev.proc.index()] += 1;
            prefix_nodes.push(NodeId::new(ev.proc, next_idx[ev.proc.index()]));

            // Crash here: recover the on-disk state into a fresh service.
            let recovered = ZigzagService::new();
            let rec_store = SessionStore::open(&dir, store_config).unwrap();
            let rec = rec_store.recover(&recovered, "feed").unwrap();
            prop_assert_eq!(
                rec.restored_events + rec.replayed_events,
                (k + 1) as u64,
                "boundary {}: wrong recovered event count", k
            );
            prop_assert!(!rec.truncated, "boundary {}: clean log flagged torn", k);
            for q in durable_probes(&prefix_nodes) {
                let want = reference.dispatch(ref_id, &q);
                let got = recovered.dispatch(rec.id, &q);
                prop_assert_eq!(
                    &got, &want,
                    "boundary {}: {:?} diverged after recovery", k, q
                );
                // Byte-identical on the wire too, not just structurally.
                if let (Ok(want), Ok(got)) = (&want, &got) {
                    prop_assert_eq!(
                        wire::encode_response(got),
                        wire::encode_response(want),
                        "boundary {}: wire bytes diverged", k
                    );
                }
            }
        }

        // The fully-fed session also survives migration: export from the
        // writer, import into a fresh service, answers unchanged.
        let snap = writer.export(id).unwrap();
        let target = ZigzagService::new();
        let moved = target.import(snap).unwrap();
        for q in durable_probes(&prefix_nodes) {
            prop_assert_eq!(
                &target.dispatch(moved, &q),
                &reference.dispatch(ref_id, &q),
                "{:?} diverged after migration", q
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------
// Supervised-recovery tier (PR 10): kill/recover at every append
// boundary while a second thread serves queries concurrently.
// ---------------------------------------------------------------------

/// Kill-at-every-append-boundary oracle under concurrent serving: while
/// the main thread appends through the supervised wire path
/// (`Query::Append` → durable store) and crash-recovers at every
/// boundary, a second thread hammers the *live* service with queries.
/// Required: the querier only ever sees success or a typed error —
/// never `Error::Internal` (a poisoned lock or caught panic escaping) —
/// and every post-recovery answer is byte-identical to the
/// uninterrupted reference session's.
#[test]
fn concurrent_queries_never_poison_recovery_at_any_boundary() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use zigzag::api::{
        CoordKind, Error, SessionStore, SessionSupervisor, StoreConfig, TimedCoordination,
    };

    let run = random_run(4, 6, 42, 43, 12);
    let events: Vec<_> = RunCursor::new(&run).collect();
    let config = SessionConfig::new().spec(TimedCoordination::new(
        CoordKind::Late { x: 3 },
        ProcessId::new(1),
        ProcessId::new(3),
        ProcessId::new(0),
    ));
    let store_config = StoreConfig::new().snapshot_every(2);
    let dir = durable_dir("concurrent");

    // The uninterrupted reference, fed in lockstep.
    let reference = ZigzagService::new();
    let ref_id = reference.open_stream(run.context_arc(), run.horizon(), config.clone());

    let writer = Arc::new(ZigzagService::new());
    let store = Arc::new(SessionStore::open(&dir, store_config).unwrap());
    let (sup, swept) = SessionSupervisor::bind(Arc::clone(&writer), Arc::clone(&store)).unwrap();
    assert!(swept.is_empty());
    let id = store
        .open_stream(
            &writer,
            "feed",
            run.context_arc(),
            run.horizon(),
            config.clone(),
        )
        .unwrap();

    // The concurrent querier: cheap and heavy queries against the live
    // service for the whole oracle run. Typed errors are legitimate
    // (e.g. CoordDecision racing an empty prefix); Internal is not.
    let stop = Arc::new(AtomicBool::new(false));
    let querier = {
        let service = Arc::clone(&writer);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || -> u64 {
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for q in [Query::EventCount, Query::CoordDecision] {
                    match service.dispatch(id, &q) {
                        Ok(_) => served += 1,
                        Err(Error::Internal { detail }) => {
                            panic!("internal error escaped to a concurrent reader: {detail}")
                        }
                        Err(_) => served += 1,
                    }
                }
            }
            served
        })
    };

    let mut next_idx = [0u32; 4];
    let mut prefix_nodes: Vec<NodeId> = Vec::new();
    for (k, ev) in events.iter().enumerate() {
        // Append through the supervised wire path, so the durable hook
        // itself runs under concurrency.
        let appended = writer
            .dispatch(id, &Query::Append(Box::new(ev.clone())))
            .unwrap();
        assert_eq!(appended, Response::Appended((k + 1) as u64));
        reference.append(ref_id, ev).unwrap();
        next_idx[ev.proc.index()] += 1;
        prefix_nodes.push(NodeId::new(ev.proc, next_idx[ev.proc.index()]));

        // Crash here: bind a fresh supervisor over the same directory —
        // the startup sweep must reattach the session and answer the
        // probe set byte-identically to the uninterrupted reference.
        let recovered = Arc::new(ZigzagService::new());
        let rec_store = Arc::new(SessionStore::open(&dir, store_config).unwrap());
        let (_rec_sup, recs) = SessionSupervisor::bind(Arc::clone(&recovered), rec_store).unwrap();
        assert_eq!(recs.len(), 1, "boundary {k}: sweep missed the session");
        assert_eq!(recs[0].0, "feed");
        let rec = &recs[0].1;
        assert_eq!(
            rec.restored_events + rec.replayed_events,
            (k + 1) as u64,
            "boundary {k}: wrong recovered event count"
        );
        for q in durable_probes(&prefix_nodes) {
            let want = reference.dispatch(ref_id, &q);
            let got = recovered.dispatch(rec.id, &q);
            assert_eq!(got, want, "boundary {k}: {q:?} diverged after recovery");
            if let (Ok(want), Ok(got)) = (&want, &got) {
                assert_eq!(
                    wire::encode_response(got),
                    wire::encode_response(want),
                    "boundary {k}: wire bytes diverged"
                );
            }
        }
    }

    stop.store(true, Ordering::Relaxed);
    let served = querier
        .join()
        .expect("the concurrent querier panicked — a poisoned lock escaped");
    assert!(served > 0, "the querier never got a single answer through");
    drop(sup);
    let _ = std::fs::remove_dir_all(&dir);
}
