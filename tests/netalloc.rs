//! The transport fast path's allocation contract: a **warm** framed
//! round-trip over a live Unix-socket server performs **zero**
//! server-side heap allocations.
//!
//! The steady-state design the tentpole claims: the reader's
//! `EnvelopeScanner` buffer is at its high-water mark, frame documents
//! travel in pooled `String`s (reader → worker → pool), responses are
//! encoded into pooled `String`s (worker → writer → pool), the reply
//! rail's heap and the writer's batch/output buffers hold their warm
//! capacity, the worker's session memo is cleared (not dropped), and the
//! warm observer-cache dispatch underneath was already pinned
//! allocation-free by the PR 6 layout tier. This test pins the whole
//! stack at once with a process-global counting allocator: the server is
//! multi-threaded, so unlike `tests/oracle.rs`'s thread-local counter
//! this one counts every thread — which is exactly the claim: *nobody*
//! in the process allocates during the measured window. The client side
//! of the window is engineered allocation-free too (pre-encoded request
//! bytes, replies scanned through a reusable buffer and compared as
//! borrowed `&str`), so the only thing that could move the counter is a
//! leak in the steady-state story.

#![cfg(unix)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use zigzag::api::net::{encode_envelope_into, EnvelopeScanner, NetConfig, NetServer};
use zigzag::api::{serve, Query, SessionConfig, ZigzagService};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{Network, SimConfig, Simulator, Time};

/// A pass-through [`System`] wrapper counting heap allocations across
/// **all** threads (the server's reader, worker and writer included).
/// Frees are not counted; the steady-state claim is about acquisition.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn warm_framed_round_trips_allocate_nothing() {
    // A small run and a batch session; everything heavy happens here,
    // before the measured window.
    let mut b = Network::builder();
    let i = b.add_process("i");
    let j = b.add_process("j");
    let k = b.add_process("k");
    b.add_bidirectional(i, j, 2, 5).unwrap();
    b.add_bidirectional(j, k, 1, 4).unwrap();
    let ctx = b.build().unwrap();
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
    sim.external(Time::new(1), i, "kick");
    let run = sim
        .run(&mut Ffip::new(), &mut RandomScheduler::seeded(9))
        .unwrap();
    let service = Arc::new(ZigzagService::sharded(4));
    let session = service.open_batch(run.clone(), SessionConfig::new());
    let nodes: Vec<_> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    // A TightBound frame: two plain node operands, so decoding borrows
    // everything (a GeneralNode operand would heap-allocate its path
    // vector by construction), the dispatch hits the session's memoized
    // longest-path cache warm, and the response encodes into the pooled
    // buffer — the fully allocation-free steady-state query shape.
    let frame = serve::encode_frame(
        session,
        &Query::TightBound {
            from: nodes[0],
            to: nodes[1],
        },
    );
    let mut request_bytes = Vec::new();
    encode_envelope_into(&mut request_bytes, &frame).unwrap();

    let path = std::env::temp_dir().join(format!("zigzag-netalloc-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(1)
            .poll_interval(Duration::from_millis(10)),
    )
    .unwrap();
    let mut conn = UnixStream::connect(&path).unwrap();
    let mut scanner = EnvelopeScanner::new(1 << 20);

    // Warm-up: fills the buffer pools to their steady population, grows
    // the scanner and rail to their high-water marks, faults in every
    // lazy thread-local, and warms the session's observer cache.
    let mut expected = String::new();
    for _ in 0..64 {
        conn.write_all(&request_bytes).unwrap();
        let got = scanner.recv(&mut conn).unwrap().unwrap();
        if expected.is_empty() {
            expected = got.to_string();
            assert!(!serve::is_error_document(&expected), "{expected:?}");
        } else {
            assert_eq!(got, expected);
        }
    }

    // The measured window: 64 more identical round-trips. Nothing in
    // the process — reader, worker, writer, or this client — may touch
    // the heap.
    let before = ALLOCS.load(Ordering::SeqCst);
    for _ in 0..64 {
        conn.write_all(&request_bytes).unwrap();
        let got = scanner.recv(&mut conn).unwrap().unwrap();
        assert!(got == expected, "response changed under a warm server");
    }
    let during = ALLOCS.load(Ordering::SeqCst) - before;
    assert_eq!(
        during, 0,
        "a warm framed round-trip allocated ({during} allocations over 64 round-trips)"
    );

    drop(conn);
    server.shutdown();
}
