//! Facade-level behavior tests: cache policies (LRU bound + warm
//! rebuild, mid-stream compaction), session lifecycle and error surface,
//! a concurrency stress test holding interleaved multi-threaded traffic
//! to the serial replay, and the wire encoding's round-trip guarantee
//! (encode → decode → identical dispatch result, writer-based encoders
//! byte-identical to the `String`-returning ones) as a property test
//! over random runs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use proptest::prelude::*;
use zigzag::api::{
    serve, wire, CachePolicy, CoordKind, Error, Query, Response, SessionConfig, TimedCoordination,
    ZigzagService,
};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{topology, NodeId, ProcessId, Run, RunCursor, SimConfig, Simulator, Time};
use zigzag::core::GeneralNode;

fn tri_run(seed: u64, horizon: u64) -> Run {
    let mut b = zigzag::bcm::Network::builder();
    let i = b.add_process("i");
    let j = b.add_process("j");
    let k = b.add_process("k");
    b.add_bidirectional(i, j, 2, 5).unwrap();
    b.add_bidirectional(j, k, 1, 4).unwrap();
    b.add_bidirectional(i, k, 3, 7).unwrap();
    let ctx = b.build().unwrap();
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(horizon)));
    sim.external(Time::new(1), i, "kick");
    sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
        .unwrap()
}

/// With the LRU bound set to k, a streaming session never holds more
/// than k observer states — asserted after every query — and an evicted
/// observer's next query rebuilds a state that answers byte-identically.
#[test]
fn lru_bounded_stream_session_caps_states_and_rebuilds_identically() {
    const K: usize = 2;
    let run = tri_run(3, 40);
    let service = ZigzagService::new();
    let bounded = service.open_stream(
        run.context_arc(),
        run.horizon(),
        SessionConfig::new().cache(CachePolicy::unbounded().max_observers(K)),
    );
    // An unbounded twin answers in lockstep: the policy must never change
    // an answer.
    let unbounded = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());

    let mut cursor = RunCursor::new(&run);
    let mut nodes = Vec::new();
    while let Some(ev) = cursor.next_event() {
        nodes.push(service.append(bounded, &ev).unwrap().node);
        service.append(unbounded, &ev).unwrap();
    }
    assert!(nodes.len() > K, "need more observers than the bound");

    let mut first = Vec::new();
    for &sigma in &nodes {
        let q = Query::MaxXMatrix { sigma };
        first.push(service.dispatch(bounded, &q).unwrap());
        assert!(
            service.observer_count(bounded).unwrap() <= K,
            "bounded session exceeded {K} observer states at {sigma}"
        );
        assert_eq!(
            first.last().unwrap(),
            &service.dispatch(unbounded, &q).unwrap(),
            "LRU policy changed an answer at {sigma}"
        );
    }
    // The unbounded twin kept everything; the bounded one evicted.
    assert_eq!(service.observer_count(unbounded).unwrap(), nodes.len());
    // Revisit every observer (most were evicted): answers identical.
    for (&sigma, before) in nodes.iter().zip(&first) {
        let again = service
            .dispatch(bounded, &Query::MaxXMatrix { sigma })
            .unwrap();
        assert_eq!(&again, before, "warm rebuild diverged at {sigma}");
        assert!(service.observer_count(bounded).unwrap() <= K);
    }
}

/// Batch sessions honor the same LRU bound.
#[test]
fn lru_bounded_batch_session_caps_states() {
    let run = tri_run(1, 40);
    let service = ZigzagService::new();
    let session = service.open_batch(
        run.clone(),
        SessionConfig::new().cache(CachePolicy::unbounded().max_observers(1)),
    );
    let nodes: Vec<NodeId> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let mut answers = Vec::new();
    for &sigma in &nodes {
        answers.push(
            service
                .dispatch(session, &Query::MaxXMatrix { sigma })
                .unwrap(),
        );
        assert_eq!(service.observer_count(session).unwrap(), 1);
    }
    for (&sigma, before) in nodes.iter().zip(&answers) {
        assert_eq!(
            &service
                .dispatch(session, &Query::MaxXMatrix { sigma })
                .unwrap(),
            before
        );
    }
}

/// Mid-stream append-log compaction reclaims the log without changing
/// any answer.
#[test]
fn compaction_policy_reclaims_log_and_preserves_answers() {
    let run = tri_run(0, 45);
    let service = ZigzagService::new();
    let compacted = service.open_stream(
        run.context_arc(),
        run.horizon(),
        SessionConfig::new().cache(CachePolicy::unbounded().compact_every(3)),
    );
    let plain = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
    let anchor = NodeId::new(ProcessId::new(0), 1);
    let mut cursor = RunCursor::new(&run);
    while let Some(ev) = cursor.next_event() {
        let node = service.append(compacted, &ev).unwrap().node;
        service.append(plain, &ev).unwrap();
        if !service.with_run(compacted, |r| r.appears(anchor)).unwrap() {
            continue;
        }
        // Tight-bound queries keep the memoized SPFA warm, so the append
        // log would grow without the policy; answers must stay equal.
        let q = Query::TightBound {
            from: anchor,
            to: node,
        };
        assert_eq!(
            service.dispatch(compacted, &q).unwrap(),
            service.dispatch(plain, &q).unwrap(),
            "compaction changed an answer at {node}"
        );
    }
}

/// The facade's error surface: unknown sessions, batch appends, missing
/// specs.
#[test]
fn session_lifecycle_and_error_surface() {
    let run = tri_run(2, 30);
    let service = ZigzagService::new();
    let id = service.open_batch(run.clone(), SessionConfig::new());
    assert_eq!(service.session_count(), 1);

    // Appending to a batch session is refused.
    let ev = RunCursor::new(&run).next_event().unwrap();
    assert!(matches!(
        service.append(id, &ev),
        Err(Error::NotStreaming { .. })
    ));
    // Coordination queries need a spec.
    assert!(matches!(
        service.dispatch(id, &Query::CoordDecision),
        Err(Error::NoSpec)
    ));
    let stream = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
    assert!(matches!(
        service.dispatch(stream, &Query::CoordDecision),
        Err(Error::NoSpec)
    ));
    // Closing invalidates the handle.
    service.close(id).unwrap();
    assert!(matches!(
        service.dispatch(id, &Query::CoordDecision),
        Err(Error::UnknownSession { .. })
    ));
    assert!(matches!(
        service.close(id),
        Err(Error::UnknownSession { .. })
    ));
    assert_eq!(service.session_count(), 1);

    // Underlying engine errors surface through the facade with their
    // layer error intact (non-lossy source chain).
    let missing = NodeId::new(ProcessId::new(0), 99);
    let err = service
        .dispatch(stream, &Query::MaxXMatrix { sigma: missing })
        .unwrap_err();
    assert!(matches!(err, Error::Core(_)));
    assert!(std::error::Error::source(&err).is_some());
}

/// Streaming coordination through the facade agrees with the batch
/// session's `CoordDecision` on the same run (replayed Figure 1).
#[test]
fn coordination_decisions_agree_across_session_shapes() {
    let mut nb = zigzag::bcm::Network::builder();
    let c = nb.add_process("C");
    let a = nb.add_process("A");
    let b = nb.add_process("B");
    nb.add_channel(c, a, 2, 5).unwrap();
    nb.add_channel(c, b, 9, 12).unwrap();
    let ctx = nb.build().unwrap();
    let spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);
    for seed in 0..4 {
        let sc =
            zigzag::coord::Scenario::new(spec.clone(), ctx.clone(), Time::new(3), Time::new(80))
                .unwrap();
        let (run, verdict) = sc
            .run_verified(
                &mut zigzag::coord::OptimalStrategy,
                &mut RandomScheduler::seeded(seed),
            )
            .unwrap();
        let service = ZigzagService::new();
        let config = SessionConfig::new().spec(spec.clone());
        let (stream, reports) = service.open_replay(&run, config.clone()).unwrap();
        let batch = service.open_batch(run.clone(), config);
        let on = service.dispatch(stream, &Query::CoordDecision).unwrap();
        let off = service.dispatch(batch, &Query::CoordDecision).unwrap();
        assert_eq!(on, off, "seed {seed}: session shapes diverged");
        let Response::CoordDecision(report) = on else {
            unreachable!()
        };
        // Figure 1: B has no outgoing channels, so both probe semantics
        // coincide with the in-simulation protocol.
        assert_eq!(report.first_known, verdict.b_node, "seed {seed}");
        assert_eq!(reports.len(), run.node_count() - 3);
    }
}

fn observers_of(run: &Run) -> Vec<NodeId> {
    run.nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect()
}

/// The concurrency stress tier: interleaved queries + appends fired at
/// one `ZigzagService` from many threads must each equal the serial
/// replay — the per-session-lock claim of the facade, exercised
/// genuinely multi-threaded.
///
/// Two stream sessions grow concurrently (one appender thread each, so
/// each session's feed stays ordered) while three query threads hammer
/// both sessions with observer-anchored queries at racing prefixes. By
/// observer stability, every such answer — including engine errors for
/// unrecognized anchors — is prefix-independent once the observer
/// exists, so each recorded `(session, query) → result` must equal a
/// fresh serial service that appended everything first.
#[test]
fn concurrent_queries_and_appends_match_serial_replay() {
    let runs = [tri_run(5, 45), tri_run(8, 45)];
    let events: Vec<Vec<_>> = runs
        .iter()
        .map(|r| RunCursor::new(r).collect_events())
        .collect();
    let service = ZigzagService::new();
    let sessions: Vec<_> = runs
        .iter()
        .map(|r| service.open_stream(r.context_arc(), r.horizon(), SessionConfig::new()))
        .collect();

    // Appended-node logs, shared with the query threads.
    let appended: Vec<Mutex<Vec<NodeId>>> = runs.iter().map(|_| Mutex::new(Vec::new())).collect();
    let done = AtomicBool::new(false);
    type Recorded = (usize, Query, Result<Response, Error>);

    let recorded: Vec<Recorded> = std::thread::scope(|scope| {
        for (i, events) in events.iter().enumerate() {
            let (service, session, log) = (&service, sessions[i], &appended[i]);
            scope.spawn(move || {
                for ev in events {
                    let node = service.append(session, ev).expect("legal feed").node;
                    log.lock().unwrap().push(node);
                }
            });
        }
        let queriers: Vec<_> = (0..3)
            .map(|w| {
                let (service, sessions, appended, done) = (&service, &sessions, &appended, &done);
                scope.spawn(move || {
                    let mut recorded: Vec<Recorded> = Vec::new();
                    let mut k = w;
                    loop {
                        // Flag read before the query: each thread keeps
                        // querying while the appenders race, and issues a
                        // floor of queries overall so the fully-grown
                        // prefix is covered even when the feeds drain
                        // quickly.
                        let drained = done.load(Ordering::Acquire) && recorded.len() >= 40;
                        if drained {
                            break;
                        }
                        let i = k % sessions.len();
                        let nodes = appended[i].lock().unwrap().clone();
                        if nodes.is_empty() {
                            std::thread::yield_now();
                            continue;
                        }
                        let sigma = nodes[k % nodes.len()];
                        let anchor = nodes[k / 2 % nodes.len()];
                        let query = match k % 3 {
                            0 => Query::MaxXMatrix { sigma },
                            1 => Query::MaxX {
                                sigma,
                                theta1: GeneralNode::basic(anchor),
                                theta2: GeneralNode::basic(sigma),
                            },
                            _ => Query::QueryBatch(vec![
                                Query::Knows {
                                    sigma,
                                    theta1: GeneralNode::basic(anchor),
                                    theta2: GeneralNode::basic(sigma),
                                    x: -2,
                                },
                                Query::MaxXMatrix { sigma },
                            ]),
                        };
                        let result = service.dispatch(sessions[i], &query);
                        recorded.push((i, query, result));
                        k += 1;
                    }
                    recorded
                })
            })
            .collect();
        // The appender handles: scope joins them automatically, but the
        // done flag must flip only after both feeds drain — join
        // explicitly by watching the logs.
        while appended
            .iter()
            .zip(&events)
            .any(|(log, evs)| log.lock().unwrap().len() < evs.len())
        {
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
        queriers
            .into_iter()
            .flat_map(|h| h.join().expect("query thread panicked"))
            .collect()
    });
    assert!(
        recorded.len() > 50,
        "stress test recorded too little traffic ({})",
        recorded.len()
    );

    // Serial replay: append everything first, then re-ask every recorded
    // query — responses (and errors) must be identical.
    let serial = ZigzagService::new();
    let serial_sessions: Vec<_> = runs
        .iter()
        .map(|r| serial.open_stream(r.context_arc(), r.horizon(), SessionConfig::new()))
        .collect();
    for (i, events) in events.iter().enumerate() {
        for ev in events {
            serial.append(serial_sessions[i], ev).unwrap();
        }
    }
    for (i, query, result) in &recorded {
        assert_eq!(
            &serial.dispatch(serial_sessions[*i], query),
            result,
            "concurrent answer diverged from the serial replay on {query:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Wire round-trip: every query survives encode → decode unchanged
    /// and the decoded query dispatches to the identical response; every
    /// response (fast runs and matrices included) survives encode →
    /// decode unchanged.
    #[test]
    fn wire_round_trip_preserves_queries_and_dispatch_results(
        n in 3usize..6,
        density in 0u8..=10,
        topo_seed in 0u64..10_000,
        sched_seed in 0u64..10_000,
    ) {
        let ctx = topology::random(n, density as f64 / 10.0, 1, 6, topo_seed).unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(18)));
        sim.external(Time::new(1), ProcessId::new(0), "kick");
        let run = sim
            .run(&mut Ffip::new(), &mut RandomScheduler::seeded(sched_seed))
            .unwrap();
        let nodes = observers_of(&run);
        let Some(&sigma) = nodes.last() else { return Ok(()) };
        let anchor = nodes[0];
        let (ta, tb) = (GeneralNode::basic(anchor), GeneralNode::basic(sigma));

        let queries = vec![
            Query::MaxX { sigma, theta1: ta.clone(), theta2: tb.clone() },
            Query::Knows { sigma, theta1: ta.clone(), theta2: tb.clone(), x: -3 },
            Query::Witness { sigma, theta1: ta.clone(), theta2: tb.clone() },
            Query::MaxXMatrix { sigma },
            Query::TightBound { from: anchor, to: sigma },
            Query::FastRun { sigma, theta: tb.clone(), gamma: 1, extra_horizon: 12 },
            Query::QueryBatch(vec![
                Query::MaxX { sigma, theta1: ta.clone(), theta2: tb.clone() },
                Query::TightBound { from: anchor, to: sigma },
            ]),
        ];

        let service = ZigzagService::new();
        let session = service.open_batch(run.clone(), SessionConfig::new());
        for q in &queries {
            // The query itself round-trips...
            let encoded = wire::encode_query(q);
            let decoded = wire::decode_query(&encoded).unwrap();
            prop_assert_eq!(&decoded, q);
            // ...the writer-based encoder streams the identical bytes...
            let mut streamed = String::new();
            wire::encode_query_to(&mut streamed, q).unwrap();
            prop_assert_eq!(&streamed, &encoded, "encode_query_to diverged");
            // ...and the decoded form dispatches to the identical result.
            let direct = service.dispatch(session, q).unwrap();
            let via_wire = service.dispatch(session, &decoded).unwrap();
            prop_assert_eq!(&via_wire, &direct, "wire dispatch diverged");
            // The response round-trips too (fast runs reuse the run
            // codec), and its writer-based encoder is byte-identical.
            let encoded = wire::encode_response(&direct);
            let back = wire::decode_response(&encoded).unwrap();
            prop_assert_eq!(&back, &direct, "response round trip changed the answer");
            let mut streamed = String::new();
            wire::encode_response_to(&mut streamed, &direct).unwrap();
            prop_assert_eq!(&streamed, &encoded, "encode_response_to diverged");
            // Serving frames wrap the same documents losslessly.
            let frame = serve::encode_frame(session, q);
            prop_assert_eq!(serve::decode_frame(&frame).unwrap(), (session, q.clone()));
        }
    }
}

/// Stats documents round-trip the wire byte-exactly — query and
/// response sides, writer-based encoders included — and malformed stats
/// documents (wrong bucket counts, overclaimed gauge counts, truncation)
/// are rejected with wire errors, never panics or misdecodes.
#[test]
fn stats_documents_round_trip_and_reject_malformation() {
    use zigzag::api::{StatsReport, LATENCY_BUCKETS};

    let qdoc = wire::encode_query(&Query::Stats);
    assert_eq!(wire::decode_query(&qdoc).unwrap(), Query::Stats);
    let mut streamed = String::new();
    wire::encode_query_to(&mut streamed, &Query::Stats).unwrap();
    assert_eq!(streamed, qdoc);

    let mut report = StatsReport {
        queries: 42,
        observer_hits: 7,
        observer_misses: 5,
        observer_evictions: 2,
        sessions_per_shard: vec![3, 0, 1],
        queue_depths: vec![2, 5],
        ..StatsReport::default()
    };
    for (i, b) in report.latency.buckets.iter_mut().enumerate() {
        *b = (i as u64) * 3;
    }
    let doc = wire::encode_response(&Response::Stats(Box::new(report.clone())));
    assert_eq!(
        wire::decode_response(&doc).unwrap(),
        Response::Stats(Box::new(report.clone()))
    );
    let mut streamed = String::new();
    wire::encode_response_to(&mut streamed, &Response::Stats(Box::new(report.clone()))).unwrap();
    assert_eq!(streamed, doc);
    // Empty gauges (the in-process shape) round-trip too.
    report.sessions_per_shard.clear();
    report.queue_depths.clear();
    let doc = wire::encode_response(&Response::Stats(Box::new(report.clone())));
    assert_eq!(
        wire::decode_response(&doc).unwrap(),
        Response::Stats(Box::new(report))
    );

    let lat_ok = {
        let mut s = String::from("lat");
        for _ in 0..LATENCY_BUCKETS {
            s.push_str(" 0");
        }
        s
    };
    let lat_short = {
        let mut s = String::from("lat");
        for _ in 0..LATENCY_BUCKETS - 1 {
            s.push_str(" 0");
        }
        s
    };
    let hostile = [
        // Counter line truncated.
        "zigzag-response v1\nstats 1 2 3\n".to_string(),
        // Missing / short / overlong latency lines.
        "zigzag-response v1\nstats 1 2 3 4\n".to_string(),
        format!("zigzag-response v1\nstats 1 2 3 4\n{lat_short}\nshards 0\nqueues 0\n"),
        format!("zigzag-response v1\nstats 1 2 3 4\n{lat_ok} 0\nshards 0\nqueues 0\n"),
        // Gauge lines promising more values than the line carries — the
        // count is rejected before any allocation for it.
        format!("zigzag-response v1\nstats 1 2 3 4\n{lat_ok}\nshards 4000000000 1\nqueues 0\n"),
        format!("zigzag-response v1\nstats 1 2 3 4\n{lat_ok}\nshards 0\nqueues 17 1 2\n"),
        // Wrong tags and non-numeric values.
        format!("zigzag-response v1\nstats 1 2 3 4\n{lat_ok}\nqueues 0\nshards 0\n"),
        format!("zigzag-response v1\nstats 1 2 3 4\n{lat_ok}\nshards 1 x\nqueues 0\n"),
        // Trailing garbage after a complete document.
        format!("zigzag-response v1\nstats 1 2 3 4\n{lat_ok}\nshards 0\nqueues 0\nextra\n"),
    ];
    for doc in &hostile {
        assert!(
            matches!(wire::decode_response(doc), Err(Error::Wire { .. })),
            "accepted hostile stats doc: {doc:?}"
        );
    }
}

/// Stats is service-level: the service answers it for any routing
/// handle, a bare session refuses it, and nesting it in a batch is the
/// same refusal encoded as an error response.
#[test]
fn stats_is_service_level_only() {
    let run = tri_run(2, 24);
    let service = ZigzagService::new();
    let id = service.open_batch(run.clone(), SessionConfig::new());
    service
        .dispatch(
            id,
            &Query::MaxXMatrix {
                sigma: run
                    .nodes()
                    .map(|r| r.id())
                    .find(|n| !n.is_initial())
                    .unwrap(),
            },
        )
        .unwrap();

    // Service dispatch answers, even for a handle naming no session.
    let Response::Stats(report) = service
        .dispatch(zigzag::api::SessionId::from_raw(700), &Query::Stats)
        .unwrap()
    else {
        panic!("service-level stats dispatch returned a non-stats answer");
    };
    assert_eq!(report.queries, 1);
    assert_eq!(report.latency.count(), 1);
    assert_eq!(report.observer_misses, 1);
    // Stats itself is not a dispatch: asking again reports the same.
    let Response::Stats(again) = service.dispatch(id, &Query::Stats).unwrap() else {
        panic!("non-stats answer");
    };
    assert_eq!(again, report);

    // Nested in a batch, the whole dispatch fails with the typed error.
    let err = service
        .dispatch(id, &Query::QueryBatch(vec![Query::Stats]))
        .unwrap_err();
    assert!(matches!(err, Error::ServiceLevelQuery), "{err:?}");
}
