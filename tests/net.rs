//! Socket front-end integration tests: byte-identity of Unix-socket
//! serving with the in-process loop, graceful drain (no accepted frame
//! lost), hostile envelopes, per-frame session resolution, and the Stats
//! observability query end to end over a live socket.

use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use zigzag::api::net::{
    encode_envelope_into, read_envelope, write_envelope, EnvelopeScanner, NetConfig, NetServer,
};
use zigzag::api::{serve, wire, Query, Response, SessionConfig, SessionId, ZigzagService};
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{Run, RunCursor, SimConfig, Simulator, Time};
use zigzag::core::GeneralNode;

/// Alphabet random scanner documents draw from: ASCII, whitespace the
/// line-oriented documents care about, and multi-byte UTF-8.
const ALPHABET: [char; 12] = ['a', 'b', 'z', ' ', '\n', '0', '9', 'λ', '∑', 'é', '.', '-'];
const ALPHABET_LEN: usize = ALPHABET.len();

/// Per-process-unique socket path (tests share one process).
fn socket_path(tag: &str) -> PathBuf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("zigzag-net-{}-{tag}-{n}.sock", std::process::id()))
}

fn tri_run(seed: u64) -> Run {
    let mut b = zigzag::bcm::Network::builder();
    let i = b.add_process("i");
    let j = b.add_process("j");
    let k = b.add_process("k");
    b.add_bidirectional(i, j, 2, 5).unwrap();
    b.add_bidirectional(j, k, 1, 4).unwrap();
    b.add_bidirectional(i, k, 3, 7).unwrap();
    let ctx = b.build().unwrap();
    let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
    sim.external(Time::new(1), i, "kick");
    sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
        .unwrap()
}

/// A service with a batch session, a stream session replaying the same
/// run, and a frame mix covering plain queries, query batches, error
/// paths (unknown session, undecodable frame) — the in-process oracle's
/// workload shape.
fn service_and_frames(seed: u64) -> (Arc<ZigzagService>, Vec<String>) {
    let run = tri_run(seed);
    let service = Arc::new(ZigzagService::sharded(8));
    let batch = service.open_batch(run.clone(), SessionConfig::new());
    let stream = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
    let mut cursor = RunCursor::new(&run);
    while let Some(ev) = cursor.next_event() {
        service.append(stream, &ev).unwrap();
    }
    let nodes: Vec<_> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let mut frames = Vec::new();
    for (i, &sigma) in nodes.iter().enumerate() {
        let id = if i % 2 == 0 { batch } else { stream };
        frames.push(serve::encode_frame(id, &Query::MaxXMatrix { sigma }));
        frames.push(serve::encode_frame(
            id,
            &Query::QueryBatch(vec![
                Query::MaxX {
                    sigma,
                    theta1: GeneralNode::basic(nodes[0]),
                    theta2: GeneralNode::basic(sigma),
                },
                Query::TightBound {
                    from: nodes[0],
                    to: sigma,
                },
            ]),
        ));
    }
    // Deterministic error documents: a session nobody opened, a frame
    // that does not decode, and a spec-less coordination ask.
    frames.push(serve::encode_frame(
        SessionId::from_raw(4096),
        &Query::CoordDecision,
    ));
    frames.push("zigzag-frame v1\nsession zero\n".to_string());
    frames.push(serve::encode_frame(batch, &Query::CoordDecision));
    (service, frames)
}

/// The tentpole contract: a Unix-socket client gets byte-identical
/// responses to the in-process serving loop, frame for frame, on a mixed
/// batch/stream session workload with hostile frames in the mix.
#[test]
fn unix_socket_responses_are_byte_identical_to_in_process_serve() {
    for seed in [3, 17] {
        let (service, frames) = service_and_frames(seed);
        let reference = serve::serve(&service, &frames, 1);

        let path = socket_path("ident");
        let server = NetServer::bind_unix(
            &path,
            Arc::clone(&service),
            NetConfig::new()
                .workers(3)
                .poll_interval(Duration::from_millis(5)),
        )
        .unwrap();
        let mut conn = UnixStream::connect(&path).unwrap();
        for frame in &frames {
            write_envelope(&mut conn, frame).unwrap();
        }
        for (i, expected) in reference.iter().enumerate() {
            let got = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
            assert_eq!(&got, expected, "seed={seed} frame={i}");
        }
        drop(conn);
        server.shutdown();
        assert!(!path.exists(), "socket file not unlinked on shutdown");
    }
}

/// Graceful drain: every frame fully written before shutdown is answered
/// with exactly one response envelope; the connection then closes
/// cleanly at an envelope boundary.
#[test]
fn shutdown_drains_every_accepted_frame() {
    let (service, frames) = service_and_frames(5);
    let reference = serve::serve(&service, &frames, 1);

    let path = socket_path("drain");
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(2)
            .poll_interval(Duration::from_millis(5)),
    )
    .unwrap();
    let mut conn = UnixStream::connect(&path).unwrap();
    for frame in &frames {
        write_envelope(&mut conn, frame).unwrap();
    }
    // Reading the first answer pins the race: the connection is
    // accepted and every remaining frame is already buffered on the
    // server side. Shutting down now exercises the drain guarantee —
    // each buffered frame is still answered, in order. (Connections
    // still waiting in the listener backlog are not "accepted" and hold
    // no frames to lose.)
    let first = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
    assert_eq!(&first, &reference[0]);
    // Shut down concurrently with the reads: drain completion requires
    // the client to keep consuming its socket (the writer blocks on a
    // full socket buffer), exactly as a live client would.
    let drainer = std::thread::spawn(move || server.shutdown());
    for (i, expected) in reference.iter().enumerate().skip(1) {
        let got = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
        assert_eq!(&got, expected, "frame={i}");
    }
    drainer.join().unwrap();
    assert!(
        read_envelope(&mut conn, 1 << 22).unwrap().is_none(),
        "connection did not close cleanly after the drained answers"
    );
}

/// Hostile envelopes: an oversized declared length and a non-UTF-8
/// payload are each answered with one zigzag-error v1 envelope and a
/// closed connection — no allocation from the hostile header, no panic.
#[test]
fn hostile_envelopes_get_one_error_document_then_close() {
    let (service, _) = service_and_frames(7);
    let path = socket_path("hostile");
    let server = NetServer::bind_unix(
        &path,
        service,
        NetConfig::new()
            .workers(1)
            .max_frame_bytes(1 << 16)
            .poll_interval(Duration::from_millis(5)),
    )
    .unwrap();

    // Oversized: a 4 GiB-ish declared length against a 64 KiB bound.
    let mut conn = UnixStream::connect(&path).unwrap();
    conn.write_all(&u32::MAX.to_be_bytes()).unwrap();
    conn.flush().unwrap();
    let doc = read_envelope(&mut conn, 1 << 16).unwrap().unwrap();
    assert!(serve::is_error_document(&doc), "{doc:?}");
    assert!(doc.contains("exceeds"), "{doc:?}");
    assert!(read_envelope(&mut conn, 1 << 16).unwrap().is_none());

    // Non-UTF-8 payload of a well-formed envelope.
    let mut conn = UnixStream::connect(&path).unwrap();
    conn.write_all(&2u32.to_be_bytes()).unwrap();
    conn.write_all(&[0xff, 0xfe]).unwrap();
    conn.flush().unwrap();
    let doc = read_envelope(&mut conn, 1 << 16).unwrap().unwrap();
    assert!(serve::is_error_document(&doc), "{doc:?}");
    assert!(doc.contains("UTF-8"), "{doc:?}");
    assert!(read_envelope(&mut conn, 1 << 16).unwrap().is_none());

    server.shutdown();
}

/// Sessions are resolved per frame on the socket path: a session closed
/// between two frames of one connection answers the second with the
/// unknown-session error, never from a stale handle.
#[test]
fn closed_sessions_are_not_served_stale() {
    let run = tri_run(11);
    let service = Arc::new(ZigzagService::sharded(4));
    let id = service.open_batch(run.clone(), SessionConfig::new());
    let sigma = run
        .nodes()
        .map(|r| r.id())
        .find(|n| !n.is_initial())
        .unwrap();
    let frame = serve::encode_frame(id, &Query::MaxXMatrix { sigma });

    let path = socket_path("close");
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(1)
            .poll_interval(Duration::from_millis(5)),
    )
    .unwrap();
    let mut conn = UnixStream::connect(&path).unwrap();
    write_envelope(&mut conn, &frame).unwrap();
    let first = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
    assert!(!serve::is_error_document(&first));

    service.close(id).unwrap();
    write_envelope(&mut conn, &frame).unwrap();
    let second = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
    assert!(serve::is_error_document(&second), "{second:?}");
    assert!(second.contains("unknown session"), "{second:?}");
    server.shutdown();
}

/// The acceptance criterion for serving observability: after a warm run
/// over the socket, a wire Stats query returns nonzero latency-histogram
/// counts, nonzero observer-cache hit and miss counters, the open
/// sessions, and one queue-depth gauge per worker.
#[test]
fn stats_query_over_the_socket_reports_warm_counters() {
    let (service, frames) = service_and_frames(13);
    let path = socket_path("stats");
    let workers = 2;
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(workers)
            .poll_interval(Duration::from_millis(5)),
    )
    .unwrap();
    let mut conn = UnixStream::connect(&path).unwrap();
    for frame in &frames {
        write_envelope(&mut conn, frame).unwrap();
        read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
    }
    // The Stats frame's session line is routing-only; any handle works.
    write_envelope(
        &mut conn,
        &serve::encode_frame(SessionId::from_raw(0), &Query::Stats),
    )
    .unwrap();
    let doc = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
    assert!(!serve::is_error_document(&doc), "{doc:?}");
    let Response::Stats(report) = wire::decode_response(&doc).unwrap() else {
        panic!("stats frame answered with a non-stats response: {doc:?}");
    };
    // Three frames of the mix never reach a session (unknown session,
    // undecodable); everything else is a counted dispatch.
    assert!(report.queries >= (frames.len() as u64).saturating_sub(3));
    assert_eq!(report.latency.count(), report.queries);
    assert!(report.observer_misses > 0, "{report:?}");
    assert!(report.observer_hits > 0, "{report:?}");
    assert_eq!(report.sessions_per_shard.iter().sum::<u64>(), 2);
    assert_eq!(report.queue_depths.len(), workers);
    server.shutdown();
}

/// Backpressure is a policy, not semantics: with the in-flight window
/// clamped to two frames, a client that pipelines every frame up front
/// still reads back byte-identical responses in order — the reader
/// simply stalls at the window until the client's reads release room,
/// instead of buffering replies without bound.
#[test]
fn tiny_inflight_window_still_answers_pipelined_clients_in_order() {
    let (service, frames) = service_and_frames(29);
    let reference = serve::serve(&service, &frames, 1);
    let path = socket_path("window");
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(2)
            .max_inflight_frames(2)
            .poll_interval(Duration::from_millis(5)),
    )
    .unwrap();
    let mut request_bytes = Vec::new();
    for frame in &frames {
        encode_envelope_into(&mut request_bytes, frame).unwrap();
    }
    let mut conn = UnixStream::connect(&path).unwrap();
    conn.write_all(&request_bytes).unwrap();
    for (i, expected) in reference.iter().enumerate() {
        let got = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
        assert_eq!(&got, expected, "frame={i}");
    }
    server.shutdown();
}

/// The server is transport-generic: the same byte-identity holds over
/// loopback TCP.
#[test]
fn tcp_responses_match_in_process_serve() {
    let (service, frames) = service_and_frames(19);
    let reference = serve::serve(&service, &frames, 1);
    let server = NetServer::bind_tcp(
        "127.0.0.1:0",
        Arc::clone(&service),
        NetConfig::new()
            .workers(2)
            .poll_interval(Duration::from_millis(5)),
    )
    .unwrap();
    let addr = server.local_addr().unwrap();
    let mut conn = std::net::TcpStream::connect(addr).unwrap();
    for frame in &frames {
        write_envelope(&mut conn, frame).unwrap();
    }
    for (i, expected) in reference.iter().enumerate() {
        let got = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
        assert_eq!(&got, expected, "frame={i}");
    }
    server.shutdown();
}

/// A reader that hands out `data` in a prescribed sequence of chunk
/// sizes (cycled), so tests control exactly where the kernel's read
/// boundaries fall.
struct ChunkedReader<'a> {
    data: &'a [u8],
    pos: usize,
    sizes: &'a [usize],
    k: usize,
}

impl<'a> ChunkedReader<'a> {
    fn new(data: &'a [u8], sizes: &'a [usize]) -> Self {
        ChunkedReader {
            data,
            pos: 0,
            sizes,
            k: 0,
        }
    }
}

impl std::io::Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.data.len() {
            return Ok(0);
        }
        let want = if self.sizes.is_empty() {
            buf.len()
        } else {
            let s = self.sizes[self.k % self.sizes.len()].max(1);
            self.k += 1;
            s
        };
        let n = want.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Drains a byte stream through a scanner with the given read
/// fragmentation, collecting every yielded document.
fn scan_all(bytes: &[u8], sizes: &[usize], max_frame: usize, chunk: usize) -> Vec<String> {
    let mut r = ChunkedReader::new(bytes, sizes);
    let mut scanner = EnvelopeScanner::with_chunk(max_frame, chunk);
    let mut out = Vec::new();
    while let Some(doc) = scanner.recv(&mut r).unwrap() {
        out.push(doc.to_string());
    }
    assert!(scanner.is_empty(), "bytes left after a clean EOF");
    out
}

/// Frames split at **every** byte boundary: for each split point of the
/// encoded stream, delivering the bytes as exactly two reads yields the
/// same documents — no boundary between header bytes, inside a payload,
/// or between envelopes confuses the scanner. The 1-byte trickle is the
/// degenerate all-boundaries case.
#[test]
fn scanner_reassembles_frames_split_at_every_byte_boundary() {
    let docs = ["a", "", "hello\nworld\n", "λ∑ unicode"];
    let mut bytes = Vec::new();
    for d in docs {
        encode_envelope_into(&mut bytes, d).unwrap();
    }
    for split in 0..=bytes.len() {
        let sizes = [split.max(1), bytes.len() - split + 1];
        assert_eq!(
            scan_all(&bytes, &sizes, 1 << 10, 32),
            docs,
            "split at byte {split}"
        );
    }
    // 1-byte trickle reads: every boundary at once.
    assert_eq!(scan_all(&bytes, &[1], 1 << 10, 32), docs);
}

/// Back-to-back pipelined frames delivered in **one** read are all
/// scanned out with no further fill — the read-side amortization the
/// transport counters advertise.
#[test]
fn scanner_drains_pipelined_frames_from_a_single_read() {
    let docs = ["first", "second\n", "third"];
    let mut bytes = Vec::new();
    for d in docs {
        encode_envelope_into(&mut bytes, d).unwrap();
    }
    let mut scanner = EnvelopeScanner::with_chunk(1 << 10, 1 << 10);
    let mut r = std::io::Cursor::new(&bytes);
    assert_eq!(
        scanner.fill_from(&mut r).unwrap(),
        bytes.len(),
        "one fill slurps the whole pipeline"
    );
    for d in docs {
        assert_eq!(scanner.next().unwrap(), Some(d));
    }
    assert_eq!(scanner.next().unwrap(), None);
    assert!(scanner.is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random document batches under random read fragmentation: the
    /// scanner yields exactly the encoded documents, in order, for any
    /// placement of read boundaries — including boundaries inside the
    /// 4-byte header, inside payloads, and runs of whole frames landing
    /// in one read.
    #[test]
    fn scanner_is_boundary_oblivious(
        raw_docs in collection::vec(collection::vec(0usize..ALPHABET_LEN, 0..40), 0..6),
        sizes in collection::vec(1usize..48, 0..24),
        chunk in 16usize..256,
    ) {
        let docs: Vec<String> = raw_docs
            .iter()
            .map(|ix| ix.iter().map(|&i| ALPHABET[i]).collect())
            .collect();
        let mut bytes = Vec::new();
        for d in &docs {
            encode_envelope_into(&mut bytes, d).unwrap();
        }
        let got = scan_all(&bytes, &sizes, 1 << 12, chunk);
        prop_assert_eq!(got, docs);
    }

    /// A hostile declared length is refused by the scanner before any
    /// buffer growth toward it: the scan buffer never exceeds the
    /// configured chunk, no matter how large the header claims the
    /// payload is — and a refusal is what the stream ends with.
    #[test]
    fn scanner_rejects_oversized_lengths_before_allocating(
        excess in 1u32..1_000_000,
        max_frame in 64usize..4096,
        trickle in 1usize..5,
    ) {
        let declared = (max_frame as u32).saturating_add(excess);
        let mut bytes = declared.to_be_bytes().to_vec();
        // Some payload bytes behind the hostile header; the scanner
        // must refuse before wanting them.
        bytes.extend_from_slice(&[b'x'; 32]);
        let chunk = 32usize;
        let mut scanner = EnvelopeScanner::with_chunk(max_frame, chunk);
        let sizes = [trickle];
        let mut r = ChunkedReader::new(&bytes, &sizes);
        let err = loop {
            match scanner.recv(&mut r) {
                Ok(Some(_)) => prop_assert!(false, "hostile frame yielded a document"),
                Ok(None) => prop_assert!(false, "hostile frame ended cleanly"),
                Err(e) => break e,
            }
        };
        prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // The buffer holds at most the bytes that arrived before the
        // refusal plus one chunk of slack — never anything sized by the
        // hostile declared length.
        prop_assert!(
            scanner.buffer_bytes() <= chunk + 8 && scanner.buffer_bytes() < declared as usize,
            "scanner grew toward a hostile length: {} bytes",
            scanner.buffer_bytes()
        );
    }
}

/// The pipelined client shape end to end: every request envelope written
/// as one buffer, replies scanned back through a reusable buffer —
/// byte-identical to the in-process loop — and the server's transport
/// counters prove the amortization (fewer read syscalls than frames,
/// fewer writer flushes than responses) and the accounting (all request
/// bytes in, one connection, no setup failures).
#[test]
fn pipelined_client_is_byte_identical_and_counters_prove_amortization() {
    let (service, frames) = service_and_frames(23);
    let reference = serve::serve(&service, &frames, 1);
    let path = socket_path("pipeline");
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(2)
            .queue_capacity(2 * frames.len())
            // A lazy poll keeps idle shutdown checks from inflating the
            // read-syscall counter the amortization assertion reads.
            .poll_interval(Duration::from_millis(50)),
    )
    .unwrap();
    let mut request_bytes = Vec::new();
    for frame in &frames {
        encode_envelope_into(&mut request_bytes, frame).unwrap();
    }
    let mut conn = UnixStream::connect(&path).unwrap();
    conn.write_all(&request_bytes).unwrap();
    let mut scanner = EnvelopeScanner::new(1 << 22);
    for (i, expected) in reference.iter().enumerate() {
        let got = scanner.recv(&mut conn).unwrap().unwrap();
        assert_eq!(got, expected, "frame={i}");
    }

    // The server's own snapshot, after every reply has been read.
    // Frame counts are billed *before* reply bytes can reach the client
    // (asserted exactly below), but byte counts are billed as each
    // write returns — on a single core the writer can still owe that
    // bookkeeping when the last reply lands, so give it a beat.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let t = loop {
        let t = server.transport();
        if t.bytes_out > 0 || std::time::Instant::now() > deadline {
            break t;
        }
        std::thread::sleep(Duration::from_millis(1));
    };
    let n = frames.len() as u64;
    assert_eq!(t.connections, 1, "{t:?}");
    assert_eq!(t.conn_failures, 0, "{t:?}");
    assert_eq!(t.frames_in, n, "{t:?}");
    assert_eq!(t.frames_out, n, "{t:?}");
    assert_eq!(t.bytes_in, request_bytes.len() as u64, "{t:?}");
    assert!(t.bytes_out > 0, "{t:?}");
    assert!(t.read_syscalls >= 1, "{t:?}");
    assert!(
        t.read_syscalls < t.frames_in,
        "pipelined reads not amortized: {t:?}"
    );
    assert!(t.writer_flushes >= 1, "{t:?}");
    assert!(t.writer_flushes <= t.frames_out, "{t:?}");

    // The same counters are observable from the wire: a Stats frame
    // answered over this very connection carries a transport snapshot
    // at least as advanced as what we have already observed.
    write_envelope(
        &mut conn,
        &serve::encode_frame(SessionId::from_raw(0), &Query::Stats),
    )
    .unwrap();
    let doc = read_envelope(&mut conn, 1 << 22).unwrap().unwrap();
    let Response::Stats(report) = wire::decode_response(&doc).unwrap() else {
        panic!("stats frame answered with a non-stats response: {doc:?}");
    };
    assert_eq!(report.transport.connections, 1, "{report:?}");
    assert_eq!(report.transport.conn_failures, 0, "{report:?}");
    assert_eq!(report.transport.frames_in, n + 1, "{report:?}");
    assert!(report.transport.bytes_in > request_bytes.len() as u64);
    assert!(report.transport.frames_out >= t.frames_out, "{report:?}");
    server.shutdown();
}

/// Live migration between two running socket servers (PR 9): a
/// coordination-laden stream session is exported out of server A's
/// socket as a `Query::Export` frame, imported into server B's socket as
/// a `Query::Import` frame, and every probe query afterwards answers
/// byte-identically on both live servers.
#[test]
fn live_migration_between_two_net_servers_answers_byte_identically() {
    use zigzag::api::{CoordKind, TimedCoordination};
    use zigzag::bcm::ProcessId;

    let run = tri_run(11);
    let config = SessionConfig::new().spec(TimedCoordination::new(
        CoordKind::Late { x: 3 },
        ProcessId::new(1),
        ProcessId::new(2),
        ProcessId::new(0),
    ));
    let service_a = Arc::new(ZigzagService::new());
    let stream = service_a.open_stream(run.context_arc(), run.horizon(), config);
    let mut cursor = RunCursor::new(&run);
    while let Some(ev) = cursor.next_event() {
        service_a.append(stream, &ev).unwrap();
    }
    let service_b = Arc::new(ZigzagService::new());

    let (path_a, path_b) = (socket_path("mig-a"), socket_path("mig-b"));
    let net = || {
        NetConfig::new()
            .workers(2)
            .poll_interval(Duration::from_millis(5))
    };
    let server_a = NetServer::bind_unix(&path_a, Arc::clone(&service_a), net()).unwrap();
    let server_b = NetServer::bind_unix(&path_b, Arc::clone(&service_b), net()).unwrap();
    let mut conn_a = UnixStream::connect(&path_a).unwrap();
    let mut conn_b = UnixStream::connect(&path_b).unwrap();

    // Ship the session A → B entirely over the two sockets.
    write_envelope(&mut conn_a, &serve::encode_frame(stream, &Query::Export)).unwrap();
    let doc = read_envelope(&mut conn_a, 1 << 22).unwrap().unwrap();
    let Response::Exported(snap) = wire::decode_response(&doc).unwrap() else {
        panic!("export frame answered with: {doc:?}");
    };
    write_envelope(
        &mut conn_b,
        &serve::encode_frame(SessionId::from_raw(0), &Query::Import(snap)),
    )
    .unwrap();
    let doc = read_envelope(&mut conn_b, 1 << 22).unwrap().unwrap();
    let Response::Imported(moved) = wire::decode_response(&doc).unwrap() else {
        panic!("import frame answered with: {doc:?}");
    };

    // Identical queries to both live servers: byte-identical documents.
    let nodes: Vec<_> = run
        .nodes()
        .map(|r| r.id())
        .filter(|n| !n.is_initial())
        .collect();
    let (&first, &last) = (nodes.first().unwrap(), nodes.last().unwrap());
    let probes = vec![
        Query::MaxXMatrix { sigma: last },
        Query::MaxX {
            sigma: last,
            theta1: GeneralNode::basic(first),
            theta2: GeneralNode::basic(last),
        },
        Query::TightBound {
            from: first,
            to: last,
        },
        Query::CoordDecision,
    ];
    for q in &probes {
        write_envelope(&mut conn_a, &serve::encode_frame(stream, q)).unwrap();
        write_envelope(&mut conn_b, &serve::encode_frame(moved, q)).unwrap();
        let doc_a = read_envelope(&mut conn_a, 1 << 22).unwrap().unwrap();
        let doc_b = read_envelope(&mut conn_b, 1 << 22).unwrap().unwrap();
        assert_eq!(doc_a, doc_b, "{q:?} diverged across the migration");
    }

    drop(conn_a);
    drop(conn_b);
    server_a.shutdown();
    server_b.shutdown();
}

/// The shutdown drain is deadline-bounded: a client that pipelines far
/// more reply bytes than any kernel socket buffer holds and then stops
/// reading entirely would — before `NetConfig::drain_timeout` — hang
/// `NetServer::shutdown` forever on the full buffer. With the deadline
/// the stalled connection is abandoned and the drain returns.
#[test]
fn shutdown_is_bounded_when_a_client_stops_reading() {
    let (service, _) = service_and_frames(13);
    let path = socket_path("drain-deadline");
    let server = NetServer::bind_unix(
        &path,
        Arc::clone(&service),
        NetConfig::new()
            .workers(2)
            .poll_interval(Duration::from_millis(5))
            .drain_timeout(Some(Duration::from_millis(200))),
    )
    .unwrap();

    // 2000 Stats frames: the requests fit the kernel buffers going out
    // (so this write_all completes), but the answers are far larger than
    // what comes back fits — the server's writer must stall against a
    // client that never reads.
    let conn = UnixStream::connect(&path).unwrap();
    let frame = serve::encode_frame(SessionId::from_raw(0), &Query::Stats);
    let mut batch = Vec::new();
    for _ in 0..2000 {
        encode_envelope_into(&mut batch, &frame).unwrap();
    }
    {
        let mut w = &conn;
        w.write_all(&batch).unwrap();
        w.flush().unwrap();
    }
    // Give the server a moment to accept, serve, and wedge its writer
    // against the full socket buffer.
    std::thread::sleep(Duration::from_millis(100));

    // The connection stays open (the client "stopped reading", it did
    // not go away) for the whole shutdown.
    let started = std::time::Instant::now();
    server.shutdown();
    let elapsed = started.elapsed();
    drop(conn);
    assert!(
        elapsed < Duration::from_secs(10),
        "drain-deadline shutdown took {elapsed:?}; the stalled connection was not abandoned"
    );
}
