//! Shared workload generators for the integration suites.
#![allow(dead_code)] // each integration binary uses a different subset

use proptest::prelude::*;
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{Context, Network, ProcessId, Run, SimConfig, Simulator, Time};

/// A randomly generated bounded network plus workload parameters.
#[derive(Debug, Clone)]
pub struct RandomWorkload {
    pub n: usize,
    /// Extra channels beyond the connectivity ring, as (from, to, L, U).
    pub extra: Vec<(usize, usize, u64, u64)>,
    /// Ring bounds per hop.
    pub ring: Vec<(u64, u64)>,
    /// External inputs (time, process index).
    pub externals: Vec<(u64, usize)>,
    /// Scheduler seed.
    pub seed: u64,
    /// Recording horizon.
    pub horizon: u64,
}

impl RandomWorkload {
    /// Materializes the context.
    pub fn context(&self) -> Context {
        let mut nb = Network::builder();
        let procs: Vec<ProcessId> = (0..self.n)
            .map(|i| nb.add_process(format!("p{i}")))
            .collect();
        for (k, &(l, u)) in self.ring.iter().enumerate() {
            let from = procs[k];
            let to = procs[(k + 1) % self.n];
            nb.add_channel(from, to, l, u).expect("ring bounds valid");
        }
        for &(f, t, l, u) in &self.extra {
            let (f, t) = (f % self.n, t % self.n);
            if f == t {
                continue;
            }
            // Duplicate channels are rejected by the builder; ignore.
            let _ = nb.add_channel(procs[f], procs[t], l, u);
        }
        nb.build().expect("non-empty network")
    }

    /// Simulates one recorded run of the workload.
    pub fn run(&self) -> Run {
        let ctx = self.context();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(self.horizon)));
        for &(t, p) in &self.externals {
            sim.external(
                Time::new(t.max(1)),
                ProcessId::new((p % self.n) as u32),
                "kick",
            );
        }
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(self.seed))
            .expect("workloads are well-formed")
    }
}

/// Proptest strategy for random workloads (strongly connected via a ring).
pub fn workloads() -> impl Strategy<Value = RandomWorkload> {
    (2usize..=5)
        .prop_flat_map(|n| {
            let bounds = (1u64..=4, 0u64..=5).prop_map(|(l, du)| (l, l + du));
            (
                Just(n),
                proptest::collection::vec((0usize..n, 0usize..n, 1u64..=4, 5u64..=9), 0..=4),
                proptest::collection::vec(bounds, n..=n),
                proptest::collection::vec((1u64..=6, 0usize..n), 1..=2),
                any::<u64>(),
                30u64..=50,
            )
        })
        .prop_map(
            |(n, extra, ring, externals, seed, horizon)| RandomWorkload {
                n,
                extra: extra
                    .into_iter()
                    .map(|(f, t, l, du)| (f, t, l, l + (du - 5)))
                    .collect(),
                ring,
                externals,
                seed,
                horizon,
            },
        )
}
