//! Property tests for the shared-analysis graph layer: the memoized
//! cached-CSR longest-path results must be indistinguishable from a fresh
//! SPFA and from the dense Bellman–Ford reference on random inputs, and
//! the positive-cycle error path must fire identically in all three.

use proptest::prelude::*;
use zigzag::bcm::protocols::Ffip;
use zigzag::bcm::scheduler::RandomScheduler;
use zigzag::bcm::{topology, ProcessId, SimConfig, Simulator, Time};
use zigzag::core::bounds_graph::BoundsGraph;
use zigzag::core::error::CoreError;
use zigzag::core::graph::WeightedDigraph;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// On bounds graphs of runs over `topology::random` networks, every
    /// source agrees across cached, fresh-SPFA and dense computations —
    /// and cached results are genuinely shared.
    #[test]
    fn cached_equals_fresh_equals_dense(
        n in 3usize..7,
        density in 0u8..=10,
        topo_seed in 0u64..1000,
        sched_seed in 0u64..1000,
    ) {
        let ctx = topology::random(n, density as f64 / 10.0, 3, 5, topo_seed).unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(25)));
        sim.external(Time::new(1), ProcessId::new(0), "kick");
        let run = sim
            .run(&mut Ffip::new(), &mut RandomScheduler::seeded(sched_seed))
            .unwrap();
        let gb = BoundsGraph::of_run(&run);
        let g = gb.graph();
        let sources: Vec<_> = run.nodes().map(|r| r.id()).collect();
        for src in sources {
            let cached = g.longest_from_cached(&src).unwrap();
            let again = g.longest_from_cached(&src).unwrap();
            prop_assert!(
                std::sync::Arc::ptr_eq(&cached, &again),
                "repeated query was not served from the cache"
            );
            let fresh = g.longest_from(&src).unwrap();
            let dense = g.longest_from_dense(&src).unwrap();
            for (i, d) in dense.iter().enumerate() {
                prop_assert_eq!(cached.weight(i), fresh.weight(i));
                prop_assert_eq!(cached.weight(i), *d);
            }
        }
    }

    /// A random positive cycle is reported as `PositiveCycle` by the
    /// cached path, the uncached SPFA and the dense reference alike, and
    /// the error is not wrongly memoized as a success afterwards.
    #[test]
    fn positive_cycles_error_on_every_path(
        len in 2usize..6,
        weight in 1i64..5,
        extra in 0i64..3,
    ) {
        let mut g = WeightedDigraph::new();
        for k in 0..len {
            // Cycle of total weight `weight` > 0 plus benign chords.
            let w = if k == 0 { weight } else { 0 };
            g.add_edge(k, (k + 1) % len, w, 0);
            g.add_edge(k, len, -extra, 1); // sink chord, harmless
        }
        prop_assert!(matches!(
            g.longest_from_cached(&0),
            Err(CoreError::PositiveCycle)
        ));
        prop_assert!(matches!(
            g.longest_from(&0),
            Err(CoreError::PositiveCycle)
        ));
        prop_assert!(matches!(
            g.longest_from_dense(&0),
            Err(CoreError::PositiveCycle)
        ));
        prop_assert!(matches!(
            g.longest_to_cached(&0),
            Err(CoreError::PositiveCycle)
        ));
        // Still an error on the second (would-be cached) attempt.
        prop_assert!(g.longest_from_cached(&0).is_err());
    }
}
