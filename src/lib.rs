//! # zigzag — umbrella crate for the zigzag-causality reproduction
//!
//! A reproduction of Dan, Manohar, Moses, *On Using Time Without Clocks via
//! Zigzag Causality* (PODC 2017). This crate re-exports the four layers of
//! the workspace:
//!
//! * [`api`] — **the recommended entry point**: the unified service
//!   facade. A `ZigzagService` owns typed sessions (batch runs and live
//!   streams) and answers one serializable `Query` family — thresholds,
//!   the knowledge predicate, witnesses, fast-run refutations, `GB(r)`
//!   tight bounds, Protocol 2 coordination decisions — through one
//!   `dispatch` code path, with explicit cache policies (LRU-bounded
//!   observer states, mid-stream append-log compaction) and probe
//!   semantics. `api::serve` fans wire-encoded frames across a sharded
//!   worker fleet, `api::net` puts that loop on a TCP or Unix socket
//!   (length-delimited envelopes, backpressure, graceful drain), and a
//!   `Stats` query reports latency histograms and cache counters from
//!   the wire;
//! * [`bcm`] — the bounded communication model without clocks: networks,
//!   transmission-time bounds, event-driven processes, the flooding
//!   full-information protocol, schedulers, discrete-event simulation, run
//!   recording/validation, event streams and space–time diagrams;
//! * [`core`] — zigzag causality: basic/general nodes, happens-before,
//!   two-legged forks, zigzag patterns, timed precedence, bounds graphs
//!   (`GB(r)`, `GB(r,σ)`, `GE(r,σ)`), timing functions, run
//!   constructions, the knowledge engine of Theorem 4, and its
//!   batch-shared (`RunAnalyzer`) and incremental (`IncrementalEngine`)
//!   serving forms;
//! * [`coord`] — the timed-coordination layer: the `Early⟨b →x a⟩` /
//!   `Late⟨a →x b⟩` problems, the paper's optimal Protocol 2, baselines,
//!   and the streaming coordination driver.
//!
//! See `README.md` for a tour (including the migration table from the
//! pre-facade entry points) and `crates/bench/README.md` for the
//! experiment harness and testing strategy.
//!
//! ## Quickstart
//!
//! Simulate the paper's Figure 1, open one batch session and one live
//! stream session over the same schedule, and ask both what `B` knows —
//! the answers are byte-identical:
//!
//! ```
//! use zigzag::api::{Query, Response, SessionConfig, ZigzagService};
//! use zigzag::bcm::protocols::Ffip;
//! use zigzag::bcm::scheduler::RandomScheduler;
//! use zigzag::bcm::{Network, RunCursor, SimConfig, Simulator, Time};
//! use zigzag::core::GeneralNode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Figure 1: C sends to A (bounds [2,5]) and to B (bounds [9,12]).
//! let mut b = Network::builder();
//! let c = b.add_process("C");
//! let a = b.add_process("A");
//! let bb = b.add_process("B");
//! b.add_channel(c, a, 2, 5)?;
//! b.add_channel(c, bb, 9, 12)?;
//! let ctx = b.build()?;
//!
//! let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(60)));
//! sim.external(Time::new(3), c, "go");
//! let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(1))?;
//!
//! // When B receives C's message it *knows* A received it >= 4 earlier.
//! let sigma_c = run.external_receipt_node(c, "go").unwrap();
//! let theta_a = GeneralNode::chain(sigma_c, &[a])?;
//! let theta_b = GeneralNode::chain(sigma_c, &[bb])?;
//! let query = Query::MaxX {
//!     sigma: theta_b.resolve(&run)?,
//!     theta1: theta_a,
//!     theta2: theta_b,
//! };
//!
//! let service = ZigzagService::new();
//! // Batch: a session over the complete recorded run.
//! let batch = service.open_batch(run.clone(), SessionConfig::new());
//! assert_eq!(service.dispatch(batch, &query)?, Response::MaxX(Some(9 - 5)));
//!
//! // Streaming: the same schedule fed event-by-event; the session
//! // answers after every append, and at the full prefix it agrees with
//! // the batch session exactly.
//! let stream = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());
//! let mut cursor = RunCursor::new(&run);
//! while let Some(ev) = cursor.next_event() {
//!     service.append(stream, &ev)?;
//! }
//! assert_eq!(service.dispatch(stream, &query)?, Response::MaxX(Some(4)));
//! # Ok(())
//! # }
//! ```

pub use zigzag_api as api;
pub use zigzag_bcm as bcm;
pub use zigzag_coord as coord;
pub use zigzag_core as core;
