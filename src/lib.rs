//! # zigzag — umbrella crate for the zigzag-causality reproduction
//!
//! A reproduction of Dan, Manohar, Moses, *On Using Time Without Clocks via
//! Zigzag Causality* (PODC 2017). This crate re-exports the three layers of
//! the workspace:
//!
//! * [`bcm`] — the bounded communication model without clocks: networks,
//!   transmission-time bounds, event-driven processes, the flooding
//!   full-information protocol, schedulers, discrete-event simulation, run
//!   recording/validation and space–time diagrams;
//! * [`core`] — zigzag causality: basic/general nodes, happens-before,
//!   two-legged forks, zigzag patterns, timed precedence, bounds graphs
//!   (`GB(r)`, `GB(r,σ)`, `GE(r,σ)`), timing functions and run
//!   constructions (slow runs, fast runs), σ-visible zigzags and the
//!   knowledge engine of Theorem 4;
//! * [`coord`] — the timed-coordination layer: the `Early⟨b →x a⟩` /
//!   `Late⟨a →x b⟩` problems, the paper's optimal Protocol 2, and the
//!   asynchronous / simple-fork baselines.
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the per-figure reproduction results.
//!
//! ## Quickstart
//!
//! ```
//! use zigzag::bcm::{Network, Simulator, SimConfig, Time};
//! use zigzag::bcm::protocols::Ffip;
//! use zigzag::bcm::scheduler::RandomScheduler;
//! use zigzag::core::knowledge::KnowledgeEngine;
//! use zigzag::core::node::GeneralNode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Figure 1: C sends to A (bounds [2,5]) and to B (bounds [9,12]).
//! let mut b = Network::builder();
//! let c = b.add_process("C");
//! let a = b.add_process("A");
//! let bb = b.add_process("B");
//! b.add_channel(c, a, 2, 5)?;
//! b.add_channel(c, bb, 9, 12)?;
//! let ctx = b.build()?;
//!
//! let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(60)));
//! sim.external(Time::new(3), c, "go");
//! let run = sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(1))?;
//!
//! // When B receives C's message it *knows* A received it >= 4 earlier.
//! let sigma_c = run.external_receipt_node(c, "go").unwrap();
//! let sigma_b = run.timeline(bb)[1].id();
//! let engine = KnowledgeEngine::new(&run, sigma_b)?;
//! let theta_a = GeneralNode::chain(sigma_c, &[a])?;
//! let max_x = engine.max_x(&theta_a, &sigma_b.into())?;
//! assert_eq!(max_x, Some(9 - 5)); // L_CB - U_CA
//! # Ok(())
//! # }
//! ```

pub use zigzag_bcm as bcm;
pub use zigzag_coord as coord;
pub use zigzag_core as core;
