//! The knowledge engine: deciding `K_σ(θ1 --x--> θ2)` (Theorem 4).
//!
//! A process at basic node `σ` *knows* a timed precedence iff the
//! precedence holds in **every** run indistinguishable from the current one
//! at `σ`. Quantifying over that infinite set directly is hopeless; the
//! proof of Theorem 4 replaces it with a single extremal construction — the
//! γ-fast run of Definition 24 — plus reachability in the extended bounds
//! graph `GE(r, σ)`:
//!
//! * if `θ2`'s base is **unreachable** from `θ1`'s base in `GE(r, σ)`,
//!   knowledge fails for *every* `x` (the γ parameter pushes `θ2`
//!   arbitrarily early in some indistinguishable run);
//! * otherwise the 0-fast run of `θ1` realizes the **minimal** gap
//!   `time(θ2) − time(θ1)` over all indistinguishable runs, so
//!   `K_σ(θ1 --x--> θ2)` holds iff `x <=` that gap ([`KnowledgeEngine::max_x`]).
//!
//! Every positive answer comes with a checkable σ-visible zigzag witness of
//! exactly the max-x weight ([`KnowledgeEngine::witness`], Corollary 1);
//! every negative answer with a legal indistinguishable run in which the
//! precedence fails ([`KnowledgeEngine::refute`]).

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

use zigzag_bcm::{NetPath, NodeId, ProcessId, Run, Time};

use crate::construct::FastRun;
use crate::error::CoreError;
use crate::extended_graph::{ExtVertex, ExtendedGraph};
use crate::extract::{anchor_tail, extend_head, zigzag_from_ge_path};
use crate::fork::TwoLeggedFork;
use crate::fx::FxBuild;
use crate::node::GeneralNode;
use crate::pattern::ZigzagPattern;
use crate::timing::{fast_timing, FastTiming};
use crate::visible::VisibleZigzag;

/// How one hop of a node's message chain is delivered in the 0-fast run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FastHop {
    /// Condition 3, lower bound binding: delivered at `t + L`.
    Lower,
    /// Condition 3, frontier binding: delivered at `T(ψ_j)`.
    Psi,
    /// Condition 2: the hop coincides with `θ1`'s chain (pinned to `t + U`);
    /// the payload is the chain position reached.
    ChainUpper(usize),
}

/// `θ1`'s chain layout in the fast run: position times and the condition-2
/// delivery prescriptions.
#[derive(Debug)]
struct ChainInfo {
    /// `(sending process, send time, destination) → (arrival, position)`.
    map: BTreeMap<(ProcessId, Time, ProcessId), (Time, usize)>,
    /// Arrival time of the full chain: `time(θ1)` in the fast run.
    arrival: Time,
}

/// The memoized `max_x` answer table: per-`θ1` rows of per-`θ2` final
/// answers (see [`QueryCache::answers`]).
type AnswerRows = HashMap<GeneralNode, HashMap<GeneralNode, Option<i64>, FxBuild>, FxBuild>;

/// Memoized per-query state shared by `knows` / `max_x` / `witness` /
/// `refute` on the same engine: canonical node rewrites, 0-fast timings
/// per anchor base, and `θ1` chain layouts. All derived purely from the
/// immutable `(run, σ)` pair, so entries never go stale.
#[derive(Debug, Default)]
struct QueryCache {
    canonical: Mutex<HashMap<GeneralNode, GeneralNode, FxBuild>>,
    timings: Mutex<HashMap<(NodeId, u64), Arc<FastTiming>, FxBuild>>,
    /// Keyed by `(canonical θ1, γ)`: the layout is computed under the
    /// γ-fast timing of θ1's base, so γ must be part of the identity.
    chains: Mutex<HashMap<(GeneralNode, u64), Arc<ChainInfo>, FxBuild>>,
    /// Final `max_x` answers per `(θ1, θ2)` (uncanonicalized, so repeat
    /// queries skip even the canonical rewrite). Sound for the same
    /// reason the state itself is reusable across appends: the answer is
    /// a pure function of the immutable `(GE(r, σ), θ1, θ2)` triple.
    /// Nested so the hot lookup borrows both keys and clones nothing.
    answers: Mutex<AnswerRows>,
}

/// Which edge set an [`ObserverState`]'s `GE(r, σ)` carries — the second
/// key dimension of [`ObserverCache`], so full and own-sends-excluded
/// states of the same observer coexist warm without colliding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObserverMode {
    /// The paper's full `GE(r, σ)`: σ's own FFIP sends contribute their
    /// unseen-delivery `E''` edges ([`ObserverState::build`]).
    #[default]
    Full,
    /// σ's own sends excluded
    /// ([`ObserverState::build_excluding_own_sends`]): the in-simulation
    /// probe view behind `zigzag_coord`'s `ExcludeOwnSends` semantics.
    ExcludeOwnSends,
}

/// Everything observer-scoped the decision procedure derives from a run:
/// `GE(r, σ)`, the memoized query caches, and the construction arena.
///
/// Split out of [`KnowledgeEngine`] so append-only consumers can keep it
/// alive across run growth: by the *observer-stability invariant*
/// (documented at [`crate::incremental`]), nothing in here changes when
/// events are appended to the run — `past(r, σ)` is fixed at σ's
/// creation, and a message sent inside that past whose delivery σ has
/// not seen can only be delivered at a node *outside* the past. A state
/// built on any prefix containing σ therefore answers every later query
/// exactly as a state rebuilt from scratch would — which is also what
/// makes LRU *eviction* sound ([`ObserverCache`]): a dropped state
/// rebuilt later answers byte-identically.
///
/// The invariant covers **both** [`ObserverMode`]s. The own-sends-
/// excluded graph is the full `GE(r, σ)` minus the `E''` edges of σ's own
/// sends, and that excluded set is itself append-stable: σ's sends are
/// recorded with σ's own event, so the set of messages with source σ is
/// fixed the moment σ exists, and (by causality) none of their deliveries
/// can land inside `past(r, σ)` on any extension. An exclude-mode state
/// built on any prefix containing σ is therefore exactly the state a
/// fresh [`ObserverState::build_excluding_own_sends`] on any longer
/// prefix would produce — the soundness argument behind the warm
/// exclude-mode decision cache of `IncrementalEngine`.
#[derive(Debug)]
pub struct ObserverState {
    sigma: NodeId,
    mode: ObserverMode,
    ge: ExtendedGraph,
    cache: QueryCache,
    /// Delivery-queue scratch recycled across `fast_run_of`/`refute`
    /// constructions at this observer.
    arena: Mutex<crate::construct::RunArena>,
}

impl ObserverState {
    /// Assembles the state around an already-built `GE(r, σ)` (full
    /// [`ObserverMode`]).
    pub fn new(sigma: NodeId, ge: ExtendedGraph) -> Self {
        ObserverState {
            sigma,
            mode: ObserverMode::Full,
            ge,
            cache: QueryCache::default(),
            arena: Mutex::new(crate::construct::RunArena::new()),
        }
    }

    /// Builds the state for observer `sigma` on `run` under `mode`,
    /// sharing a per-run [`crate::extended_graph::MessageIndex`] — the
    /// one construction site behind [`ObserverState::build`] and
    /// [`ObserverState::build_excluding_own_sends`].
    ///
    /// # Errors
    ///
    /// Fails if `sigma` does not appear in `run`.
    pub fn build_mode(
        run: &Run,
        sigma: NodeId,
        index: &crate::extended_graph::MessageIndex,
        mode: ObserverMode,
    ) -> Result<Self, CoreError> {
        if !run.appears(sigma) {
            return Err(CoreError::NodeNotInRun {
                detail: format!("observer {sigma} does not appear in the run"),
            });
        }
        let exclude = match mode {
            ObserverMode::Full => None,
            ObserverMode::ExcludeOwnSends => Some(sigma),
        };
        let mut state = Self::new(
            sigma,
            ExtendedGraph::with_index_excluding(run, sigma, index, exclude),
        );
        state.mode = mode;
        Ok(state)
    }

    /// Builds the state for observer `sigma` on `run`, sharing a per-run
    /// [`crate::extended_graph::MessageIndex`].
    ///
    /// # Errors
    ///
    /// Fails if `sigma` does not appear in `run`.
    pub fn build(
        run: &Run,
        sigma: NodeId,
        index: &crate::extended_graph::MessageIndex,
    ) -> Result<Self, CoreError> {
        Self::build_mode(run, sigma, index, ObserverMode::Full)
    }

    /// Builds the state for observer `sigma` with `sigma`'s **own sends
    /// excluded** from `GE(r, σ)` — the `ExcludeOwnSends` probe semantics
    /// of `zigzag_coord::stream::ProbeSemantics`: the graph a strategy
    /// probed mid-simulation sees, where the node exists but its FFIP
    /// sends are not yet recorded.
    ///
    /// # Errors
    ///
    /// Fails if `sigma` does not appear in `run`.
    pub fn build_excluding_own_sends(
        run: &Run,
        sigma: NodeId,
        index: &crate::extended_graph::MessageIndex,
    ) -> Result<Self, CoreError> {
        Self::build_mode(run, sigma, index, ObserverMode::ExcludeOwnSends)
    }

    /// The observer node `σ` the state was built for.
    pub fn observer(&self) -> NodeId {
        self.sigma
    }

    /// Which [`ObserverMode`] the state's graph carries.
    pub fn mode(&self) -> ObserverMode {
        self.mode
    }
}

/// A bounded, least-recently-used cache of [`ObserverState`]s — the
/// serving-layer form of the per-observer caches in
/// [`crate::analyzer::RunAnalyzer`] and
/// [`crate::incremental::IncrementalEngine`].
///
/// Unbounded per-observer caching is right for analyses that revisit a
/// handful of observers, but a deployment answering queries at millions
/// of observers per stream needs a cap: `ObserverCache` keeps at most
/// `cap` states, evicting the least recently used on overflow. Eviction
/// never changes an answer — by the observer-stability invariant (see
/// [`ObserverState`]) a rebuilt state is byte-identical to the evicted
/// one — it only trades the rebuild cost back in.
#[derive(Debug)]
pub struct ObserverCache {
    /// `None` = unbounded (the pre-policy behavior). `Some(0)` disables
    /// retention entirely: states are built per request and never stored.
    cap: Option<usize>,
    tick: u64,
    map: HashMap<(NodeId, ObserverMode), (Arc<ObserverState>, u64), FxBuild>,
    /// Recency index: tick → state key, kept in lockstep with `map` so
    /// eviction pops the oldest tick in O(log n) instead of scanning the
    /// whole map per miss (ticks are unique, so this is a faithful LRU
    /// order).
    recency: BTreeMap<u64, (NodeId, ObserverMode)>,
    evictions: u64,
    hits: u64,
    misses: u64,
}

impl ObserverCache {
    /// Creates a cache holding at most `cap` states (`None` = unbounded).
    pub fn new(cap: Option<usize>) -> Self {
        ObserverCache {
            cap,
            tick: 0,
            map: HashMap::default(),
            recency: BTreeMap::new(),
            evictions: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured bound.
    pub fn cap(&self) -> Option<usize> {
        self.cap
    }

    /// Re-bounds the cache, evicting least-recently-used states
    /// immediately if the new bound is tighter than the current
    /// population.
    pub fn set_cap(&mut self, cap: Option<usize>) {
        self.cap = cap;
        self.enforce();
    }

    /// Number of states currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The `(observer, mode)` key of every retained state, in no
    /// particular order — the warm-set manifest durable-session
    /// snapshots record.
    pub fn keys(&self) -> impl Iterator<Item = (NodeId, ObserverMode)> + '_ {
        self.map.keys().copied()
    }

    /// Total number of states evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Number of lookups served from a retained state.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that had to build a state (including builds the
    /// cache then declined to retain under `Some(0)`), whether or not the
    /// build succeeded.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// The full-mode state for `sigma`, built with `build` on a miss —
    /// shorthand for [`ObserverCache::get_or_build_mode`] at
    /// [`ObserverMode::Full`].
    ///
    /// # Errors
    ///
    /// Propagates the builder's error on a miss.
    pub fn get_or_build(
        &mut self,
        sigma: NodeId,
        build: impl FnOnce() -> Result<ObserverState, CoreError>,
    ) -> Result<Arc<ObserverState>, CoreError> {
        self.get_or_build_mode(sigma, ObserverMode::Full, build)
    }

    /// The state for `(sigma, mode)`, built with `build` on a miss. On a
    /// hit the entry's recency is refreshed; on a miss the built state is
    /// retained (evicting the least recently used entry if the bound
    /// would overflow). Full and exclude-mode states of the same observer
    /// are distinct entries sharing one LRU order and one bound.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error on a miss.
    pub fn get_or_build_mode(
        &mut self,
        sigma: NodeId,
        mode: ObserverMode,
        build: impl FnOnce() -> Result<ObserverState, CoreError>,
    ) -> Result<Arc<ObserverState>, CoreError> {
        self.tick += 1;
        let key = (sigma, mode);
        // An unbounded cache never evicts, so recency order is dead
        // weight there — skip the BTreeMap churn on the hot hit path.
        let track = self.cap.is_some();
        if let Some((state, used)) = self.map.get_mut(&key) {
            self.hits += 1;
            if track {
                self.recency.remove(used);
                *used = self.tick;
                self.recency.insert(self.tick, key);
            }
            return Ok(state.clone());
        }
        self.misses += 1;
        let built = Arc::new(build()?);
        debug_assert_eq!(built.mode(), mode, "cached state built in another mode");
        if self.cap == Some(0) {
            return Ok(built); // retention disabled: never stored
        }
        self.map.insert(key, (built.clone(), self.tick));
        if track {
            self.recency.insert(self.tick, key);
            self.enforce();
        }
        Ok(built)
    }

    fn enforce(&mut self) {
        let Some(cap) = self.cap else { return };
        while self.map.len() > cap {
            let (_, lru) = self
                .recency
                .pop_first()
                .expect("recency tracks every retained state");
            self.map.remove(&lru);
            self.evictions += 1;
        }
    }
}

/// The dense all-pairs knowledge-threshold matrix of
/// [`KnowledgeEngine::max_x_basic_matrix`]: one flat row-major allocation
/// over the non-initial nodes of `past(r, σ)` in ascending [`NodeId`]
/// order. Cell `(a, b)` holds the largest `x` with `K_σ(a --x--> b)`, or
/// `None` when `b` is unreachable from `a` in `GE(r, σ)`.
///
/// Batch consumers index by position ([`MaxXMatrix::at`]) or by node
/// ([`MaxXMatrix::get`], a binary search — no per-cell map walk, no
/// per-call tree allocation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaxXMatrix {
    nodes: Vec<NodeId>,
    /// Row-major: `data[i * n + j]` = threshold for `nodes[i] → nodes[j]`.
    data: Vec<Option<i64>>,
}

impl MaxXMatrix {
    /// Reassembles a matrix from its parts — the inverse of reading
    /// [`MaxXMatrix::nodes`] and row-major cells out of
    /// [`MaxXMatrix::iter`], used by wire decoders.
    ///
    /// # Errors
    ///
    /// Fails if `data` is not `nodes.len()²` cells or `nodes` is not
    /// strictly ascending.
    pub fn from_parts(nodes: Vec<NodeId>, data: Vec<Option<i64>>) -> Result<Self, CoreError> {
        if data.len() != nodes.len() * nodes.len() {
            return Err(CoreError::InvalidTiming {
                detail: format!("matrix needs {}² cells, got {}", nodes.len(), data.len()),
            });
        }
        if nodes.windows(2).any(|w| w[0] >= w[1]) {
            return Err(CoreError::InvalidTiming {
                detail: "matrix nodes must be strictly ascending".into(),
            });
        }
        Ok(MaxXMatrix { nodes, data })
    }

    /// The row/column nodes, in ascending order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of rows (= columns).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the matrix is empty (an observer whose past holds only
    /// initial nodes).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The dense row/column position of `node`, if present.
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.nodes.binary_search(&node).ok()
    }

    /// Cell by dense position.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of range.
    pub fn at(&self, i: usize, j: usize) -> Option<i64> {
        assert!(
            i < self.len() && j < self.len(),
            "matrix index out of range"
        );
        self.data[i * self.nodes.len() + j]
    }

    /// Cell by node pair: `Some(threshold)` if both nodes are in the
    /// matrix, `None` otherwise. The inner `Option` is the threshold
    /// (`None` = unreachable, no `x` is known).
    pub fn get(&self, a: NodeId, b: NodeId) -> Option<Option<i64>> {
        let (i, j) = (self.index_of(a)?, self.index_of(b)?);
        Some(self.data[i * self.nodes.len() + j])
    }

    /// Iterates every cell as `(a, b, threshold)`, row-major.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId, Option<i64>)> + '_ {
        let n = self.nodes.len();
        self.data
            .iter()
            .enumerate()
            .map(move |(k, &v)| (self.nodes[k / n], self.nodes[k % n], v))
    }
}

impl std::ops::Index<(NodeId, NodeId)> for MaxXMatrix {
    type Output = Option<i64>;

    fn index(&self, (a, b): (NodeId, NodeId)) -> &Self::Output {
        let (i, j) = (
            self.index_of(a).expect("row node not in matrix"),
            self.index_of(b).expect("column node not in matrix"),
        );
        &self.data[i * self.nodes.len() + j]
    }
}

/// Decision procedure for knowledge of timed precedence at a basic node,
/// realizing Theorem 4 and Protocols 1/2.
///
/// The engine inspects only `past(r, σ)` and the common-knowledge channel
/// bounds — exactly the information the paper's model grants a process —
/// so its answers are legitimate *protocol* decisions, not analyses that
/// peek at hidden state.
///
/// # Examples
///
/// ```
/// # use zigzag_bcm::{Network, SimConfig, Simulator, Time, NodeId};
/// # use zigzag_bcm::protocols::Ffip;
/// # use zigzag_bcm::scheduler::EagerScheduler;
/// use zigzag_core::knowledge::KnowledgeEngine;
/// use zigzag_core::GeneralNode;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = Network::builder();
/// # let c = b.add_process("C");
/// # let a = b.add_process("A");
/// # let bb = b.add_process("B");
/// # b.add_channel(c, a, 1, 3)?;
/// # b.add_channel(c, bb, 7, 9)?;
/// # let ctx = b.build()?;
/// # let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
/// # sim.external(Time::new(2), c, "go");
/// # let run = sim.run(&mut Ffip::new(), &mut EagerScheduler)?;
/// // Figure 1: once B hears C's message it knows A acted ≥ L_CB − U_CA
/// // = 4 ticks earlier.
/// let sigma_c = run.external_receipt_node(c, "go").unwrap();
/// let theta_b = GeneralNode::chain(sigma_c, &[bb])?; // where B hears C
/// let theta_a = GeneralNode::chain(sigma_c, &[a])?;  // where A acts
/// let sigma = theta_b.resolve(&run)?;
/// let engine = KnowledgeEngine::new(&run, sigma)?;
/// assert_eq!(engine.max_x(&theta_a, &theta_b)?, Some(4));
/// assert!(engine.knows(&theta_a, &theta_b, 4)?);
/// assert!(!engine.knows(&theta_a, &theta_b, 5)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct KnowledgeEngine<'r> {
    run: &'r Run,
    /// The observer-scoped analysis, shareable across engine views: the
    /// incremental layer keeps one state per observer alive while the run
    /// grows and wraps it around the current prefix per query.
    state: Arc<ObserverState>,
}

impl<'r> KnowledgeEngine<'r> {
    /// Creates the engine for the observer node `sigma`.
    ///
    /// Building many engines over the same run? Derive them from a
    /// [`crate::analyzer::RunAnalyzer`] instead, which shares the run-level
    /// analysis across observers. Growing the run event-by-event? Use a
    /// [`crate::incremental::IncrementalEngine`], which keeps observer
    /// states warm across appends.
    ///
    /// # Errors
    ///
    /// Fails if `sigma` does not appear in `run`.
    pub fn new(run: &'r Run, sigma: NodeId) -> Result<Self, CoreError> {
        if !run.appears(sigma) {
            return Err(CoreError::NodeNotInRun {
                detail: format!("observer {sigma} does not appear in the run"),
            });
        }
        Ok(Self::with_graph(run, sigma, ExtendedGraph::new(run, sigma)))
    }

    /// Assembles an engine around an already-built `GE(r, σ)` (the
    /// [`crate::analyzer::RunAnalyzer`] shared-analysis path).
    pub(crate) fn with_graph(run: &'r Run, sigma: NodeId, ge: ExtendedGraph) -> Self {
        Self::with_state(run, Arc::new(ObserverState::new(sigma, ge)))
    }

    /// Wraps a (possibly long-lived) observer state around a run — the
    /// append-only path used by [`crate::incremental::IncrementalEngine`]
    /// and the service facade's session caches: `run` must contain the
    /// prefix the state was built on (sound by the observer-stability
    /// invariant documented at [`ObserverState`]).
    pub fn with_state(run: &'r Run, state: Arc<ObserverState>) -> Self {
        KnowledgeEngine { run, state }
    }

    /// The observer node `σ`.
    pub fn observer(&self) -> NodeId {
        self.state.sigma
    }

    /// The extended bounds graph `GE(r, σ)` backing the decisions.
    pub fn ge(&self) -> &ExtendedGraph {
        &self.state.ge
    }

    /// Rewrites `θ = ⟨σ', p⟩` into the equivalent node whose chain never
    /// re-enters `past(r, σ)`: hops whose deliveries `σ` has seen are
    /// folded into the base. In every run indistinguishable at `σ` the two
    /// forms resolve to the same basic node, so knowledge queries are
    /// invariant under this rewriting.
    ///
    /// # Errors
    ///
    /// * [`CoreError::NotRecognized`] if the base is outside the past;
    /// * [`CoreError::InitialNode`] if the node is an initial node or its
    ///   chain leaves one (initial nodes never send, and Theorem 4 excludes
    ///   `time = 0` nodes);
    /// * [`CoreError::NodeNotInRun`] if a hop is not a channel.
    fn canonicalize(&self, theta: &GeneralNode) -> Result<GeneralNode, CoreError> {
        if let Some(hit) = self
            .state
            .cache
            .canonical
            .lock()
            .expect("canonical cache lock")
            .get(theta)
        {
            return Ok(hit.clone());
        }
        let canonical = crate::construct::canonicalize_in_past(
            self.run,
            self.state.ge.past(),
            self.state.sigma,
            theta,
        )?;
        self.state
            .cache
            .canonical
            .lock()
            .expect("canonical cache lock")
            .insert(theta.clone(), canonical.clone());
        Ok(canonical)
    }

    /// The memoized 0-/γ-fast timing anchored at `base`: one pair of SPFA
    /// traversals per distinct `(base, γ)` for the lifetime of the engine.
    fn timing(&self, base: NodeId, gamma: u64) -> Result<Arc<FastTiming>, CoreError> {
        if let Some(hit) = self
            .state
            .cache
            .timings
            .lock()
            .expect("timing cache lock")
            .get(&(base, gamma))
        {
            return Ok(hit.clone());
        }
        let ft = Arc::new(fast_timing(&self.state.ge, base, gamma)?);
        self.state
            .cache
            .timings
            .lock()
            .expect("timing cache lock")
            .insert((base, gamma), ft.clone());
        Ok(ft)
    }

    /// The memoized chain layout of a canonical `θ1` under its 0-fast
    /// timing.
    fn chain_info_cached(
        &self,
        ft: &FastTiming,
        theta: &GeneralNode,
    ) -> Result<Arc<ChainInfo>, CoreError> {
        let key = (theta.clone(), ft.gamma);
        if let Some(hit) = self
            .state
            .cache
            .chains
            .lock()
            .expect("chain cache lock")
            .get(&key)
        {
            return Ok(hit.clone());
        }
        let chain = Arc::new(self.chain_info(ft, theta)?);
        self.state
            .cache
            .chains
            .lock()
            .expect("chain cache lock")
            .insert(key, chain.clone());
        Ok(chain)
    }

    /// Lays out a canonical node's chain at upper bounds (Definition 24
    /// condition 2) starting from its fast-timing base time.
    fn chain_info(&self, ft: &FastTiming, theta: &GeneralNode) -> Result<ChainInfo, CoreError> {
        let bounds = self.run.context().bounds();
        let mut t = ft
            .node_time(theta.base())
            .expect("canonical bases lie in the past");
        let mut map = BTreeMap::new();
        for (m, hop) in theta.path().hops().enumerate() {
            let u = bounds
                .get(hop)
                .ok_or(CoreError::Bcm(zigzag_bcm::BcmError::MissingChannel {
                    from: hop.from,
                    to: hop.to,
                }))?
                .upper();
            let next = t + u;
            map.insert((hop.from, t, hop.to), (next, m + 1));
            t = next;
        }
        Ok(ChainInfo { map, arrival: t })
    }

    /// Resolves a canonical node's arrival time in the 0-fast run of `θ1`
    /// without materializing the run: condition-2 hops follow `θ1`'s
    /// pinned chain, all other hops land at `max(t + L, T(ψ))`.
    fn walk(
        &self,
        ft: &FastTiming,
        chain: &ChainInfo,
        theta2: &GeneralNode,
    ) -> Result<(Time, Vec<FastHop>), CoreError> {
        let bounds = self.run.context().bounds();
        let mut t = ft
            .node_time(theta2.base())
            .expect("canonical bases lie in the past");
        let mut hops = Vec::new();
        for hop in theta2.path().hops() {
            let cb =
                bounds
                    .get(hop)
                    .ok_or(CoreError::Bcm(zigzag_bcm::BcmError::MissingChannel {
                        from: hop.from,
                        to: hop.to,
                    }))?;
            if let Some(&(tn, pos)) = chain.map.get(&(hop.from, t, hop.to)) {
                t = tn;
                hops.push(FastHop::ChainUpper(pos));
            } else {
                let low = t + cb.lower();
                let psi = ft.aux_time(hop.to).expect("every process has ψ");
                if low >= psi {
                    t = low;
                    hops.push(FastHop::Lower);
                } else {
                    t = psi;
                    hops.push(FastHop::Psi);
                }
            }
        }
        Ok((t, hops))
    }

    /// The exact knowledge threshold: the largest `x` for which
    /// `K_σ(θ1 --x--> θ2)` holds, or `None` if no `x` is known (Theorem 4's
    /// unreachable case).
    ///
    /// # Errors
    ///
    /// Fails if a node's base is not σ-recognized, a node is initial, or a
    /// chain hop is not a channel.
    pub fn max_x(
        &self,
        theta1: &GeneralNode,
        theta2: &GeneralNode,
    ) -> Result<Option<i64>, CoreError> {
        if let Some(hit) = self
            .state
            .cache
            .answers
            .lock()
            .expect("answer cache lock")
            .get(theta1)
            .and_then(|row| row.get(theta2))
        {
            return Ok(*hit);
        }
        let answer = self.max_x_uncached(theta1, theta2)?;
        self.state
            .cache
            .answers
            .lock()
            .expect("answer cache lock")
            .entry(theta1.clone())
            .or_default()
            .insert(theta2.clone(), answer);
        Ok(answer)
    }

    fn max_x_uncached(
        &self,
        theta1: &GeneralNode,
        theta2: &GeneralNode,
    ) -> Result<Option<i64>, CoreError> {
        let t1c = self.canonicalize(theta1)?;
        let t2c = self.canonicalize(theta2)?;
        let ft = self.timing(t1c.base(), 0)?;
        if !ft.is_reachable(ExtVertex::Node(t2c.base())) {
            return Ok(None);
        }
        let chain = self.chain_info_cached(&ft, &t1c)?;
        let (t2, _) = self.walk(&ft, &chain, &t2c)?;
        Ok(Some(t2.ticks() as i64 - chain.arrival.ticks() as i64))
    }

    /// Batched [`KnowledgeEngine::max_x`]: answers every `(θ1, θ2)` query
    /// in one call, sharing canonicalization, fast timings and chain
    /// layouts across queries (queries with a common `θ1` cost one SPFA
    /// pair total). Results are positionally aligned with `queries`.
    ///
    /// # Errors
    ///
    /// Fails on the first query that [`KnowledgeEngine::max_x`] would fail
    /// on.
    pub fn max_x_batch(
        &self,
        queries: &[(GeneralNode, GeneralNode)],
    ) -> Result<Vec<Option<i64>>, CoreError> {
        queries
            .iter()
            .map(|(theta1, theta2)| self.max_x(theta1, theta2))
            .collect()
    }

    /// Decides `K_σ(θ1 --x--> θ2)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnowledgeEngine::max_x`].
    pub fn knows(
        &self,
        theta1: &GeneralNode,
        theta2: &GeneralNode,
        x: i64,
    ) -> Result<bool, CoreError> {
        Ok(self.max_x(theta1, theta2)?.is_some_and(|m| x <= m))
    }

    /// Produces the σ-visible zigzag witness of Corollary 1: a pattern from
    /// `θ1` to `θ2` whose weight equals [`KnowledgeEngine::max_x`] exactly.
    /// Returns `None` when no knowledge holds (unreachable case).
    ///
    /// The witness is an independent artifact: re-validating it against the
    /// run (or any indistinguishable run) via
    /// [`VisibleZigzag::validate`] certifies the knowledge claim without
    /// trusting this engine.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnowledgeEngine::max_x`], plus internal
    /// inconsistencies reported as [`CoreError::InvalidTiming`].
    pub fn witness(
        &self,
        theta1: &GeneralNode,
        theta2: &GeneralNode,
    ) -> Result<Option<(i64, VisibleZigzag)>, CoreError> {
        let t1c = self.canonicalize(theta1)?;
        let t2c = self.canonicalize(theta2)?;
        let ft = self.timing(t1c.base(), 0)?;
        if !ft.is_reachable(ExtVertex::Node(t2c.base())) {
            return Ok(None);
        }
        let chain = self.chain_info_cached(&ft, &t1c)?;
        let (t2, hops) = self.walk(&ft, &chain, &t2c)?;
        let max_x = t2.ticks() as i64 - chain.arrival.ticks() as i64;

        let split = hops.iter().rposition(|h| !matches!(h, FastHop::Lower));
        let pattern = match split {
            // The whole chain runs at lower bounds: GB/GE path to the base,
            // head extended along the full chain (Lemma 14 + Lemma 16).
            None => {
                let z = self.ge_path_zigzag(t1c.base(), ExtVertex::Node(t2c.base()))?;
                let z = extend_head(&z, t2c.path())?;
                anchor_tail(&z, &t1c)?
            }
            Some(k) => match hops[k] {
                FastHop::ChainUpper(pos) => {
                    // The chains merge (Lemma 13, "type 4"): one fork whose
                    // tail is θ1's chain suffix and head θ2's.
                    let base = GeneralNode::new(t1c.base(), t1c.path().prefix(pos + 1))?;
                    let fork =
                        TwoLeggedFork::new(base, t2c.path().suffix(k + 1), t1c.path().suffix(pos))?;
                    ZigzagPattern::single(fork)
                }
                FastHop::Psi => {
                    // The chain is held back by the frontier of `hop k`'s
                    // process (Lemma 12/15, "type 3"): boundary fork whose
                    // tail chains through the ψ trail.
                    let j = t2c.path().procs()[k + 1];
                    let lp = self
                        .state
                        .ge
                        .longest_from_cached(ExtVertex::Node(t1c.base()))?;
                    let idx = self
                        .state
                        .ge
                        .index_of(ExtVertex::Aux(j))
                        .expect("every process has ψ");
                    let edges = lp.path(idx).ok_or_else(|| CoreError::InvalidTiming {
                        detail: "ψ binding but unreachable — model bug".into(),
                    })?;
                    let cut = edges.iter().rposition(|e| {
                        matches!(self.state.ge.graph().vertex(e.to), ExtVertex::Node(_))
                    });
                    let (prefix, suffix) = match cut {
                        Some(c) => edges.split_at(c + 1),
                        None => (&edges[..0], &edges[..]),
                    };
                    let z = zigzag_from_ge_path(&self.state.ge, t1c.base(), prefix)?;
                    let mut trail: Vec<ProcessId> = suffix
                        .iter()
                        .map(|e| self.state.ge.graph().vertex(e.to).proc())
                        .collect();
                    trail.reverse(); // [j, …, l1]
                    let q = NetPath::new(trail).map_err(CoreError::Bcm)?;
                    let base = GeneralNode::new(t2c.base(), t2c.path().prefix(k + 2))?;
                    let top = TwoLeggedFork::new(base, t2c.path().suffix(k + 1), q)?;
                    let z = z.concat(&ZigzagPattern::single(top))?;
                    anchor_tail(&z, &t1c)?
                }
                FastHop::Lower => unreachable!("split index is a non-Lower hop"),
            },
        };
        Ok(Some((max_x, VisibleZigzag::new(pattern, self.state.sigma))))
    }

    /// All-pairs knowledge thresholds over the (non-initial) nodes of
    /// `past(r, σ)`, restricted to basic-node queries: entry `(a, b)` is
    /// the largest `x` with `K_σ(a --x--> b)`, or `None` when unreachable.
    ///
    /// One SPFA pass per source node — far cheaper than quadratically many
    /// [`KnowledgeEngine::max_x`] calls — and the result is a dense
    /// node-indexed [`MaxXMatrix`] (one flat allocation, O(1) cell reads)
    /// rather than a per-call `BTreeMap`. Used by the protocol-analysis
    /// experiments and benchmarks.
    ///
    /// # Errors
    ///
    /// Fails on a positive cycle (impossible for graphs of legal runs).
    pub fn max_x_basic_matrix(&self) -> Result<MaxXMatrix, CoreError> {
        let past = self.state.ge.past();
        // Past iteration is in (process, index) order — ascending NodeId —
        // so MaxXMatrix lookups can binary-search.
        let nodes: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
        // Resolve each column's dense index once instead of per cell.
        let cols: Vec<Option<usize>> = nodes
            .iter()
            .map(|&b| self.state.ge.index_of(ExtVertex::Node(b)))
            .collect();
        let n = nodes.len();
        let mut data = vec![None; n * n];
        for (i, &a) in nodes.iter().enumerate() {
            let lp = self.state.ge.longest_from_cached(ExtVertex::Node(a))?;
            let row = &mut data[i * n..(i + 1) * n];
            for (cell, &bi) in row.iter_mut().zip(&cols) {
                *cell = bi.and_then(|i| lp.weight(i));
            }
        }
        Ok(MaxXMatrix { nodes, data })
    }

    /// Longest `GE` path between two vertices converted to a zigzag.
    fn ge_path_zigzag(&self, from: NodeId, to: ExtVertex) -> Result<ZigzagPattern, CoreError> {
        let lp = self.state.ge.longest_from_cached(ExtVertex::Node(from))?;
        let idx = self
            .state
            .ge
            .index_of(to)
            .ok_or_else(|| CoreError::InvalidTiming {
                detail: "target vertex missing from GE — model bug".into(),
            })?;
        let edges = lp.path(idx).ok_or_else(|| CoreError::InvalidTiming {
            detail: "reachable target has no path — model bug".into(),
        })?;
        zigzag_from_ge_path(&self.state.ge, from, &edges)
    }

    /// Constructs the γ-fast run of `θ1` — the extremal indistinguishable
    /// run behind the engine's answers.
    ///
    /// Unlike the free function [`crate::construct::fast_run`], this path
    /// shares the engine's `GE(r, σ)` and its memoized canonical rewrites
    /// and fast timings, so repeated constructions (`refute` sweeps,
    /// protocol analyses) pay neither the graph rebuild nor the SPFA pair
    /// again.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::construct::fast_run`].
    pub fn fast_run_of(
        &self,
        theta1: &GeneralNode,
        gamma: u64,
        extra_horizon: u64,
    ) -> Result<FastRun, CoreError> {
        let canonical = self.canonicalize(theta1)?;
        let ft = self.timing(canonical.base(), gamma)?;
        // The clone pulls the memoized timing out of the shared cache; the
        // construction consumes it. The observer's arena recycles the
        // delivery-queue storage across constructions; it is taken out of
        // the lock for the construction's duration so concurrent callers
        // never serialize on it (a racing call just uses a fresh arena).
        let mut arena = std::mem::take(&mut *self.state.arena.lock().expect("arena lock"));
        let result = crate::construct::fast_run_from_timing(
            self.run,
            &self.state.ge,
            &canonical,
            (*ft).clone(),
            extra_horizon,
            &mut arena,
        );
        *self.state.arena.lock().expect("arena lock") = arena;
        result
    }

    /// Produces a *refutation run* for a knowledge claim: a legal run
    /// indistinguishable from the current one at `σ` in which
    /// `θ1 --x--> θ2` fails. Returns `None` iff the knowledge actually
    /// holds (then no such run exists, by Theorem 4).
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnowledgeEngine::max_x`].
    pub fn refute(
        &self,
        theta1: &GeneralNode,
        theta2: &GeneralNode,
        x: i64,
    ) -> Result<Option<FastRun>, CoreError> {
        let t1c = self.canonicalize(theta1)?;
        let t2c = self.canonicalize(theta2)?;
        let bounds = self.run.context().bounds();
        let u2 = bounds.path_upper(t2c.path()).map_err(CoreError::Bcm)?;
        let l1 = bounds.path_lower(t1c.path()).map_err(CoreError::Bcm)?;
        let extra = u2 + bounds.path_upper(t1c.path()).map_err(CoreError::Bcm)? + 2;

        let ft = self.timing(t1c.base(), 0)?;
        if ft.is_reachable(ExtVertex::Node(t2c.base())) {
            let chain = self.chain_info_cached(&ft, &t1c)?;
            let (t2, _) = self.walk(&ft, &chain, &t2c)?;
            let m = t2.ticks() as i64 - chain.arrival.ticks() as i64;
            if x <= m {
                return Ok(None);
            }
            return self.fast_run_of(&t1c, 0, extra).map(Some);
        }
        let gamma = (u2 as i64 - l1 as i64 - x).max(0) as u64;
        self.fast_run_of(&t1c, gamma, extra).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precedence::satisfies;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::{EagerScheduler, RandomScheduler};
    use zigzag_bcm::validate::{validate_run, Strictness};
    use zigzag_bcm::{Network, SimConfig, Simulator};

    /// Figure 1 context: C → A `[1,3]`, C → B `[7,9]`.
    fn fig1_run() -> (Run, ProcessId, ProcessId, ProcessId) {
        let mut b = Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        let bb = b.add_process("B");
        b.add_channel(c, a, 1, 3).unwrap();
        b.add_channel(c, bb, 7, 9).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(2), c, "go");
        let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
        (run, c, a, bb)
    }

    fn tri_run(seed: u64, horizon: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(horizon)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn fig1_fork_knowledge_threshold() {
        let (run, c, a, bb) = fig1_run();
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let theta_a = GeneralNode::chain(sigma_c, &[a]).unwrap();
        let theta_b = GeneralNode::chain(sigma_c, &[bb]).unwrap();
        let sigma = theta_b.resolve(&run).unwrap();
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        // B knows a --x--> b exactly up to L_CB − U_CA = 4.
        assert_eq!(engine.max_x(&theta_a, &theta_b).unwrap(), Some(4));
        assert!(engine.knows(&theta_a, &theta_b, 4).unwrap());
        assert!(engine.knows(&theta_a, &theta_b, -10).unwrap());
        assert!(!engine.knows(&theta_a, &theta_b, 5).unwrap());
        // And the reverse direction: b --x--> a only for x <= U_CB… no:
        // max_x(b, a) = −L_CB + U_CA = threshold for "b at most that after a".
        let m = engine.max_x(&theta_b, &theta_a).unwrap().unwrap();
        assert_eq!(m, -(9 - 1)); // b −(−8)→ a: a at most 8 before… tight.
    }

    #[test]
    fn witnesses_match_max_x_exactly() {
        let (run, c, a, bb) = fig1_run();
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let theta_a = GeneralNode::chain(sigma_c, &[a]).unwrap();
        let theta_b = GeneralNode::chain(sigma_c, &[bb]).unwrap();
        let sigma = theta_b.resolve(&run).unwrap();
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let (m, vz) = engine.witness(&theta_a, &theta_b).unwrap().unwrap();
        assert_eq!(m, 4);
        let report = vz.validate(&run).unwrap();
        assert_eq!(report.weight, m);
        assert_eq!(report.from, theta_a.resolve(&run).unwrap());
        assert_eq!(report.to, theta_b.resolve(&run).unwrap());
    }

    #[test]
    fn max_x_agrees_with_constructed_fast_run() {
        // The graph walk and the materialized Definition 24 run agree.
        for seed in 0..10 {
            let run = tri_run(seed, 50);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let engine = KnowledgeEngine::new(&run, sigma).unwrap();
            let past = run.past(sigma);
            let anchors: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
            for &a in &anchors {
                for &b in &anchors {
                    let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                    let Some(m) = engine.max_x(&ta, &tb).unwrap() else {
                        continue;
                    };
                    let fr = engine.fast_run_of(&ta, 0, 30).unwrap();
                    validate_run(&fr.run, Strictness::Strict).unwrap();
                    let gap = fr.run.time(b).unwrap().diff(fr.run.time(a).unwrap());
                    assert_eq!(gap, m, "seed {seed}: walk vs fast run at {a}->{b}");
                }
            }
        }
    }

    #[test]
    fn witnesses_validate_across_random_runs() {
        let mut validated = 0usize;
        for seed in 0..8 {
            let run = tri_run(seed, 60);
            let sigma = NodeId::new(ProcessId::new(2), 2);
            if !run.appears(sigma) {
                continue;
            }
            let engine = KnowledgeEngine::new(&run, sigma).unwrap();
            let past = run.past(sigma);
            let nodes: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
            for &a in &nodes {
                for &b in &nodes {
                    let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                    let Some((m, vz)) = engine.witness(&ta, &tb).unwrap() else {
                        continue;
                    };
                    match vz.validate(&run) {
                        Ok(report) => {
                            assert_eq!(report.weight, m, "seed {seed} {a}->{b}");
                            validated += 1;
                        }
                        Err(CoreError::HorizonTooSmall { .. }) => {}
                        Err(e) => panic!("seed {seed} {a}->{b}: {e}"),
                    }
                }
            }
        }
        assert!(validated > 10, "only {validated} witnesses validated");
    }

    #[test]
    fn general_node_queries_and_chain_merging() {
        let run = tri_run(3, 60);
        let sigma = NodeId::new(ProcessId::new(1), 3);
        if !run.appears(sigma) {
            return;
        }
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let i1 = run
            .external_receipt_node(ProcessId::new(0), "kick")
            .unwrap();
        if !run.past(sigma).contains(i1) {
            return;
        }
        let theta1 = GeneralNode::chain(i1, &[ProcessId::new(2)]).unwrap();
        // θ2 extends θ1's own chain: knowledge must reflect the shared
        // prefix (condition-2 merging), and the witness must validate.
        let theta2 = GeneralNode::chain(i1, &[ProcessId::new(2), ProcessId::new(1)]).unwrap();
        let m = engine.max_x(&theta1, &theta2).unwrap().unwrap();
        // θ2 is θ1 plus one hop k → j with bounds [1, 4]: at least L = 1
        // (exactly L unless the ψ frontier of j binds, which depends on
        // the sampled schedule), and never more than U = 4.
        assert!(
            (1..=4).contains(&m),
            "chain-extension threshold {m} outside [L, U]"
        );
        let (mw, vz) = engine.witness(&theta1, &theta2).unwrap().unwrap();
        assert_eq!(mw, m);
        match vz.validate(&run) {
            Ok(report) => assert_eq!(report.weight, m),
            Err(CoreError::HorizonTooSmall { .. }) => {}
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn refutations_are_legal_indistinguishable_counterexamples() {
        for seed in 0..6 {
            let run = tri_run(seed, 50);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let engine = KnowledgeEngine::new(&run, sigma).unwrap();
            let past = run.past(sigma);
            let nodes: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
            let mut refuted = 0;
            for &a in &nodes {
                for &b in &nodes {
                    let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                    let m = engine.max_x(&ta, &tb).unwrap();
                    // Query one past the threshold (or an arbitrary x for
                    // the unreachable case).
                    let x = m.map_or(0, |m| m + 1);
                    let fr = engine
                        .refute(&ta, &tb, x)
                        .unwrap()
                        .expect("x above threshold must be refutable");
                    validate_run(&fr.run, Strictness::Strict).unwrap();
                    // Indistinguishable at σ: σ appears with its past intact.
                    assert!(fr.run.appears(sigma));
                    // The precedence fails in the refutation run.
                    assert!(
                        !satisfies(&fr.run, &ta, &tb, x).unwrap(),
                        "seed {seed}: refutation does not refute {a} --{x}--> {b}"
                    );
                    refuted += 1;
                    // And at or below the threshold, no refutation exists.
                    if let Some(m) = m {
                        assert!(engine.refute(&ta, &tb, m).unwrap().is_none());
                    }
                }
            }
            assert!(refuted > 0, "seed {seed}: nothing refuted");
        }
    }

    #[test]
    fn upper_bound_knowledge_through_receive_edges() {
        // Even with one-way channels, B's receipt of C's message bounds
        // A's action from below: a >= b − U_CB + L_CA. The engine reports
        // exactly that threshold.
        let (run, c, a, bb) = fig1_run();
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let theta_a = GeneralNode::chain(sigma_c, &[a]).unwrap();
        let theta_b = GeneralNode::chain(sigma_c, &[bb]).unwrap();
        let sigma = theta_b.resolve(&run).unwrap();
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let theta_sigma = GeneralNode::basic(sigma);
        // max_x = L_CA − U_CB = 1 − 9.
        assert_eq!(engine.max_x(&theta_sigma, &theta_a).unwrap(), Some(-8));
        let (m, vz) = engine.witness(&theta_sigma, &theta_a).unwrap().unwrap();
        assert_eq!(m, -8);
        let report = vz.validate(&run).unwrap();
        assert_eq!(report.weight, -8);
    }

    #[test]
    fn unreachable_nodes_are_never_known() {
        // C → B and D → B, with B hearing D strictly before C. From B's
        // later node there is no constraint path to σ_D: D's action could
        // have happened arbitrarily early, so B knows *no* lower bound on
        // time(σ_D) − time(σ) for any x.
        let mut b = Network::builder();
        let c = b.add_process("C");
        let d = b.add_process("D");
        let bb = b.add_process("B");
        b.add_channel(c, bb, 7, 9).unwrap();
        b.add_channel(d, bb, 2, 4).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(2), c, "go");
        sim.external(Time::new(1), d, "kick");
        let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
        let sigma_d = run.external_receipt_node(d, "kick").unwrap();
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let sigma = GeneralNode::chain(sigma_c, &[bb])
            .unwrap()
            .resolve(&run)
            .unwrap();
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let theta_sigma = GeneralNode::basic(sigma);
        let theta_d = GeneralNode::basic(sigma_d);
        assert!(run.past(sigma).contains(sigma_d), "B heard D");
        // σ_D is unreachable from σ in GE(r, σ): no knowledge for any x.
        assert_eq!(engine.max_x(&theta_sigma, &theta_d).unwrap(), None);
        assert!(engine.witness(&theta_sigma, &theta_d).unwrap().is_none());
        assert!(!engine.knows(&theta_sigma, &theta_d, -1000).unwrap());
        // …and every such claim is refutable with a concrete run.
        let fr = engine
            .refute(&theta_sigma, &theta_d, -1000)
            .unwrap()
            .unwrap();
        validate_run(&fr.run, Strictness::Strict).unwrap();
        assert!(!satisfies(&fr.run, &theta_sigma, &theta_d, -1000).unwrap());
        // The reverse direction *is* known: σ_D precedes σ by ≥ L_DB + 1.
        assert_eq!(engine.max_x(&theta_d, &theta_sigma).unwrap(), Some(3));
    }

    #[test]
    fn rejects_unrecognized_and_initial_nodes() {
        let (run, c, a, bb) = fig1_run();
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let theta_b = GeneralNode::chain(sigma_c, &[bb]).unwrap();
        let sigma = theta_b.resolve(&run).unwrap();
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        // A's node is not σ-recognized as a *base* (B never hears from A).
        let a1 = NodeId::new(a, 1);
        let theta_a1 = GeneralNode::basic(a1);
        assert!(matches!(
            engine.max_x(&theta_a1, &theta_b),
            Err(CoreError::NotRecognized { .. })
        ));
        // Initial nodes are excluded.
        let init = GeneralNode::basic(NodeId::initial(c));
        assert!(matches!(
            engine.max_x(&init, &theta_b),
            Err(CoreError::InitialNode { .. })
        ));
        let init_chain = GeneralNode::chain(NodeId::initial(c), &[a]).unwrap();
        assert!(matches!(
            engine.max_x(&init_chain, &theta_b),
            Err(CoreError::InitialNode { .. })
        ));
        // Unknown observer.
        assert!(KnowledgeEngine::new(&run, NodeId::new(bb, 9)).is_err());
    }

    #[test]
    fn warm_queries_match_cold_and_batch() {
        // Repeated queries on one engine (memoized SPFA, canonical and
        // timing caches) must answer exactly like a fresh engine per query
        // — the seed behavior — and like the batched API.
        for seed in 0..4 {
            let run = tri_run(seed, 50);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let warm = KnowledgeEngine::new(&run, sigma).unwrap();
            let nodes: Vec<NodeId> = run.past(sigma).iter().filter(|n| !n.is_initial()).collect();
            let queries: Vec<(GeneralNode, GeneralNode)> = nodes
                .iter()
                .flat_map(|&a| nodes.iter().map(move |&b| (a.into(), b.into())))
                .collect();
            let batched = warm.max_x_batch(&queries).unwrap();
            for (k, (ta, tb)) in queries.iter().enumerate() {
                let cold = KnowledgeEngine::new(&run, sigma)
                    .unwrap()
                    .max_x(ta, tb)
                    .unwrap();
                // Twice on the warm engine: first touch fills the caches,
                // second is served from them.
                assert_eq!(warm.max_x(ta, tb).unwrap(), cold, "seed {seed} {ta}->{tb}");
                assert_eq!(
                    warm.max_x(ta, tb).unwrap(),
                    cold,
                    "seed {seed} {ta}->{tb} (warm)"
                );
                assert_eq!(batched[k], cold, "seed {seed} {ta}->{tb} (batch)");
            }
        }
    }

    #[test]
    fn dense_matrix_matches_pairwise_and_indexes() {
        let run = tri_run(2, 50);
        let sigma = NodeId::new(ProcessId::new(1), 2);
        if !run.appears(sigma) {
            return;
        }
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let m = engine.max_x_basic_matrix().unwrap();
        assert!(!m.is_empty());
        assert_eq!(m.nodes().len(), m.len());
        assert!(
            m.nodes().windows(2).all(|w| w[0] < w[1]),
            "matrix nodes not in ascending order"
        );
        let mut cells = 0usize;
        for (a, b, v) in m.iter() {
            let pairwise = engine
                .max_x(&GeneralNode::basic(a), &GeneralNode::basic(b))
                .unwrap();
            assert_eq!(v, pairwise, "matrix disagrees with max_x at {a}->{b}");
            assert_eq!(m.get(a, b), Some(v));
            assert_eq!(m[(a, b)], v);
            let (i, j) = (m.index_of(a).unwrap(), m.index_of(b).unwrap());
            assert_eq!(m.at(i, j), v);
            cells += 1;
        }
        assert_eq!(cells, m.len() * m.len());
        // Nodes outside the matrix answer None, not panic.
        assert_eq!(m.get(NodeId::new(ProcessId::new(0), 99), sigma), None);
        assert_eq!(m.index_of(NodeId::new(ProcessId::new(0), 99)), None);
    }

    #[test]
    fn shared_ge_fast_run_matches_free_construction() {
        // The engine path (shared GE + cached canonicalization/timings)
        // must construct byte-for-byte the same extremal run as the free
        // function that rebuilds everything per call.
        use crate::construct::fast_run;
        for seed in 0..4 {
            let run = tri_run(seed, 50);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let engine = KnowledgeEngine::new(&run, sigma).unwrap();
            let anchors: Vec<NodeId> = run.past(sigma).iter().filter(|n| !n.is_initial()).collect();
            for &a in &anchors {
                for gamma in [0u64, 5] {
                    let theta = GeneralNode::basic(a);
                    // Twice through the engine: the second construction is
                    // served entirely from warm caches.
                    let warm1 = engine.fast_run_of(&theta, gamma, 20).unwrap();
                    let warm2 = engine.fast_run_of(&theta, gamma, 20).unwrap();
                    let free = fast_run(&run, sigma, &theta, gamma, 20).unwrap();
                    for fr in [&warm1, &warm2] {
                        assert_eq!(fr.sigma, free.sigma);
                        assert_eq!(fr.gamma, free.gamma);
                        assert_eq!(fr.theta_time, free.theta_time);
                        assert_eq!(fr.run.node_count(), free.run.node_count());
                        for rec in free.run.nodes() {
                            assert_eq!(
                                fr.run.time(rec.id()),
                                Some(rec.time()),
                                "seed {seed}: engine fast run diverged at {}",
                                rec.id()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn knowledge_is_monotone_in_x() {
        let run = tri_run(1, 50);
        let sigma = NodeId::new(ProcessId::new(0), 2);
        if !run.appears(sigma) {
            return;
        }
        let engine = KnowledgeEngine::new(&run, sigma).unwrap();
        let past = run.past(sigma);
        let nodes: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
        for &a in &nodes {
            for &b in &nodes {
                let (ta, tb) = (GeneralNode::basic(a), GeneralNode::basic(b));
                if let Some(m) = engine.max_x(&ta, &tb).unwrap() {
                    for dx in [-3i64, -1, 0] {
                        assert!(engine.knows(&ta, &tb, m + dx).unwrap());
                    }
                    for dx in [1i64, 2, 10] {
                        assert!(!engine.knows(&ta, &tb, m + dx).unwrap());
                    }
                }
            }
        }
    }
}
