//! A weighted directed multigraph with longest-path queries.
//!
//! Bounds graphs (paper §5) contain cycles (every delivered message
//! contributes a forward `+L` edge and a backward `−U` edge) but **no
//! positive cycles** — a positive cycle would force a node to occur later
//! than itself. Longest paths are therefore well-defined and computed with
//! a queue-based Bellman–Ford (SPFA); a positive cycle is reported as
//! [`CoreError::PositiveCycle`] and indicates corrupted input.
//!
//! # Shared analysis
//!
//! Causal-order queries are the hot path of the knowledge engine: a single
//! `max_x`/`witness`/`refute` round trips over the same graph many times,
//! and batched queries (all-pairs matrices, protocol sweeps) revisit the
//! same sources. Two layers amortize that cost:
//!
//! * a **frozen CSR form** ([`CsrTopology`]) — forward and reverse
//!   adjacency built once per graph generation, that SPFA scans instead
//!   of the per-vertex `Vec`s;
//! * a **longest-path cache** — every SPFA result is memoized per
//!   `(source, direction)` and shared as an [`Arc`], so repeated queries
//!   against an unmodified graph are O(1) — and allocation-free — after
//!   first touch ([`WeightedDigraph::longest_from_cached`] /
//!   [`WeightedDigraph::longest_to_cached`]).
//!
//! Both layers survive mutation **monotonically**: the only mutations the
//! graph supports are additions ([`WeightedDigraph::add_vertex`] /
//! [`WeightedDigraph::add_edge`]), and adding vertices or edges can only
//! *raise* longest-path weights — every old path still exists, new edges
//! merely offer new ones. So instead of dropping memoized results on
//! mutation, the graph logs the edges appended since each result was
//! computed and **delta-relaxes** a stale result on its next query: the
//! new edges seed an incremental SPFA that cascades forward from exactly
//! the vertices they improve (the frontier), leaving the converged bulk
//! of the old result untouched. The frozen CSR is rebuilt lazily per
//! generation; delta cascades walk the live adjacency directly, since
//! they touch few vertices. This is what makes append-only consumers
//! (`crate::incremental`) pay per-append cost proportional to the change,
//! not the graph.
//!
//! # Data layout
//!
//! The hot core is struct-of-arrays over `u32` indices:
//!
//! * [`CsrTopology`] keeps each direction as four parallel lanes —
//!   `off: Vec<u32>` row offsets plus `targets: Vec<u32>`,
//!   `weights: Vec<i64>`, `labels: Vec<u32>` — so a relaxation scan
//!   streams the 4-byte target and 8-byte weight lanes instead of
//!   striding over 32-byte [`Edge`] records. `Edge` survives as the
//!   public *view* type: [`CsrTopology::out_edges`] /
//!   [`CsrTopology::in_edges`] materialize an `Edge` array lazily, on
//!   first accessor use, so hot paths never pay for it.
//! * [`LongestPaths`] is sentinel-coded: `dist: Vec<i64>` with
//!   [`i64::MIN`] meaning *unreachable* (no `Option` tag bytes), and a
//!   predecessor forest as three lanes (`pred_other: Vec<u32>` with
//!   [`u32::MAX`] meaning *no predecessor*, plus weight and label lanes)
//!   from which [`LongestPaths::path`] reconstructs `Edge` values on
//!   demand — 20 bytes per vertex instead of 56.
//! * All interior vertex ids are `u32`; the `HashMap<V, usize>` interner
//!   stays at the boundary, and every narrowing conversion funnels
//!   through one checked helper (`checked_u32`) that reports
//!   [`CoreError::IndexOverflow`] instead of silently truncating.
//!
//! # Scratch arena and blocked relaxation
//!
//! The transient state of an SPFA run — the predecessor working lane,
//! the `u64`-word in-queue bitset, both frontier generations, and the
//! delta staging buffer — lives in a `SpfaScratch` arena owned by the
//! graph's analysis cache. A query takes the arena out under the lock,
//! traverses outside the lock, and puts the buffers back, so steady-state
//! serving recycles the same warm allocations across queries (the result
//! lanes themselves are freshly allocated: they outlive the query inside
//! the memo). Relaxation is *blocked*: the frontier drains in
//! generations (two `Vec<u32>` swapped per round, deduplicated through
//! the bitset), each generation scanning contiguous SoA edge slices.
//! Positive cycles are detected by the generation count — with no
//! positive cycle a run converges within `|V|` drains (every improvement
//! chain longer than `|V|` revisits a vertex with a strictly larger
//! distance, i.e. a positive cycle) — which replaces the old per-run
//! `relax_count` allocation and matches the dense Bellman–Ford verdict
//! exactly.
//!
//! Everything lives behind a [`Mutex`] so graphs (and the engines built
//! on them) stay `Send + Sync` for the parallel sweep layer.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

use crate::error::CoreError;
use crate::fx::FxBuild;

/// Sentinel distance: the vertex is unreachable from the query root.
const UNREACHABLE: i64 = i64::MIN;

/// Sentinel predecessor: the vertex is the root (or unreachable).
const NO_PRED: u32 = u32::MAX;

/// Narrows a `usize` into the graph's interior `u32` index space.
///
/// This is the single checked-conversion site for the hot core: CSR
/// offsets, interned vertex ids, and append-log endpoints all funnel
/// through it. Infallible public signatures (`add_vertex`, `csr`) unwrap
/// the result; fallible query paths propagate it.
///
/// # Errors
///
/// Returns [`CoreError::IndexOverflow`] if `value` does not fit in
/// `u32`.
fn checked_u32(value: usize, what: &str) -> Result<u32, CoreError> {
    u32::try_from(value).map_err(|_| CoreError::IndexOverflow {
        detail: format!("{what} ({value}) exceeds the u32 index space"),
    })
}

/// An edge of the graph, with a caller-defined `label` used by the
/// extraction layer to remember what the edge encodes (successor hop,
/// message send, message reverse, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source vertex index.
    pub from: usize,
    /// Target vertex index.
    pub to: usize,
    /// Edge weight (a timing constraint `T(from) + weight <= T(to)`).
    pub weight: i64,
    /// Caller-defined tag.
    pub label: u32,
}

/// One direction of the CSR form: row offsets plus three parallel edge
/// lanes. `targets[p]` is the vertex a relaxation scan of row `u`
/// reaches through position `p` (the edge's head for the forward lanes,
/// its tail for the reverse lanes).
#[derive(Debug, Clone, Default)]
struct CsrLanes {
    off: Vec<u32>,
    targets: Vec<u32>,
    weights: Vec<i64>,
    labels: Vec<u32>,
}

impl CsrLanes {
    /// Packs adjacency rows into lanes. `row_is_target` selects which
    /// endpoint the scan reaches: `false` packs outgoing rows (scan
    /// reaches `e.to`), `true` packs incoming rows (scan reaches
    /// `e.from`).
    fn pack(adj: &[Vec<Edge>], row_is_target: bool) -> Result<CsrLanes, CoreError> {
        let total: usize = adj.iter().map(Vec::len).sum();
        // One check covers every cast below: vertex ids are < adj.len()
        // and offsets are <= total.
        checked_u32(adj.len(), "vertex count")?;
        checked_u32(total, "edge count")?;
        let mut lanes = CsrLanes {
            off: Vec::with_capacity(adj.len() + 1),
            targets: Vec::with_capacity(total),
            weights: Vec::with_capacity(total),
            labels: Vec::with_capacity(total),
        };
        lanes.off.push(0);
        for edges in adj {
            lanes.targets.extend(
                edges
                    .iter()
                    .map(|e| (if row_is_target { e.from } else { e.to }) as u32),
            );
            lanes.weights.extend(edges.iter().map(|e| e.weight));
            lanes.labels.extend(edges.iter().map(|e| e.label));
            lanes.off.push(lanes.targets.len() as u32);
        }
        Ok(lanes)
    }

    #[inline]
    fn row(&self, u: usize) -> std::ops::Range<usize> {
        self.off[u] as usize..self.off[u + 1] as usize
    }
}

/// The frozen compressed-sparse-row form of a [`WeightedDigraph`]:
/// forward and reverse adjacency as struct-of-arrays lanes plus offsets
/// (see the [module docs](self) for the layout).
///
/// Built once per graph generation ([`WeightedDigraph::csr`]) and shared
/// by every SPFA over that generation. Scanning a row touches the
/// contiguous target/weight lanes; the [`Edge`] slices returned by
/// [`CsrTopology::out_edges`] / [`CsrTopology::in_edges`] are
/// materialized lazily the first time an accessor asks for them.
#[derive(Debug, Clone)]
pub struct CsrTopology {
    fwd: CsrLanes,
    rev: CsrLanes,
    fwd_view: OnceLock<Vec<Edge>>,
    rev_view: OnceLock<Vec<Edge>>,
}

impl CsrTopology {
    fn build(out: &[Vec<Edge>], incoming: &[Vec<Edge>]) -> Result<Self, CoreError> {
        Ok(CsrTopology {
            fwd: CsrLanes::pack(out, false)?,
            rev: CsrLanes::pack(incoming, true)?,
            fwd_view: OnceLock::new(),
            rev_view: OnceLock::new(),
        })
    }

    fn lanes(&self, dir: Direction) -> &CsrLanes {
        match dir {
            Direction::Forward => &self.fwd,
            Direction::Backward => &self.rev,
        }
    }

    /// Reconstructs the full `Edge` view of one direction from its lanes.
    fn materialize(lanes: &CsrLanes, row_is_target: bool) -> Vec<Edge> {
        let mut view = Vec::with_capacity(lanes.targets.len());
        for u in 0..lanes.off.len().saturating_sub(1) {
            for p in lanes.row(u) {
                let reach = lanes.targets[p] as usize;
                let (from, to) = if row_is_target {
                    (reach, u)
                } else {
                    (u, reach)
                };
                view.push(Edge {
                    from,
                    to,
                    weight: lanes.weights[p],
                    label: lanes.labels[p],
                });
            }
        }
        view
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.fwd.off.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.fwd.targets.len()
    }

    /// Outgoing edges of vertex index `u`, as one contiguous slice.
    ///
    /// The `Edge` array backing the slice is rebuilt from the lanes on
    /// the first call and shared afterwards; SPFA never touches it.
    #[inline]
    pub fn out_edges(&self, u: usize) -> &[Edge] {
        let view = self
            .fwd_view
            .get_or_init(|| Self::materialize(&self.fwd, false));
        &view[self.fwd.row(u)]
    }

    /// Incoming edges of vertex index `u`, as one contiguous slice.
    #[inline]
    pub fn in_edges(&self, u: usize) -> &[Edge] {
        let view = self
            .rev_view
            .get_or_init(|| Self::materialize(&self.rev, true));
        &view[self.rev.row(u)]
    }
}

/// One append-log entry: an edge with its endpoints shrunk to the `u32`
/// interior index width (24 bytes instead of [`Edge`]'s 32).
#[derive(Debug, Clone, Copy)]
struct LogEdge {
    from: u32,
    to: u32,
    label: u32,
    weight: i64,
}

/// The append log: packed `u32`-indexed records, one push per appended
/// edge on the hot mutation path. Maintained only while memoized results
/// exist, and drained into [`SpfaScratch::delta`] (a straight memcpy)
/// when a stale result catches up.
#[derive(Debug, Clone, Default)]
struct EdgeLog {
    edges: Vec<LogEdge>,
}

impl EdgeLog {
    fn len(&self) -> usize {
        self.edges.len()
    }

    fn clear(&mut self) {
        self.edges.clear();
    }

    fn push(&mut self, from: u32, to: u32, weight: i64, label: u32) {
        self.edges.push(LogEdge {
            from,
            to,
            label,
            weight,
        });
    }

    /// Copies entries `start..` into `buf` (cleared first), reusing
    /// `buf`'s capacity.
    fn stage_into(&self, start: usize, buf: &mut Vec<LogEdge>) {
        buf.clear();
        buf.extend_from_slice(&self.edges[start..]);
    }
}

/// Reusable SPFA working state: everything a traversal needs besides the
/// result lanes themselves. Owned by the analysis cache and recycled
/// across queries (taken out under the lock, used outside it, put back),
/// so a steady-state serving loop reallocates nothing per SPFA.
#[derive(Debug, Default)]
struct SpfaScratch {
    /// Working predecessor lane for cold runs: the CSR position of the
    /// edge that last improved each vertex (`NO_PRED` = none).
    pred_pos: Vec<u32>,
    /// In-frontier bitset, one bit per vertex in `u64` words.
    in_queue: Vec<u64>,
    /// Current frontier generation.
    frontier: Vec<u32>,
    /// Next frontier generation (swapped with `frontier` per drain).
    next: Vec<u32>,
    /// Staging buffer for the appended edges a delta pass relaxes over.
    delta: Vec<LogEdge>,
}

impl SpfaScratch {
    /// Resets the bitset and frontiers for a graph of `n` vertices.
    /// `pred_pos` is reset separately (only cold runs need it).
    fn reset(&mut self, n: usize) {
        let words = n.div_ceil(64);
        self.in_queue.clear();
        self.in_queue.resize(words, 0);
        self.frontier.clear();
        self.next.clear();
    }

    #[inline]
    fn enqueue(&mut self, v: u32) {
        let (w, b) = ((v / 64) as usize, v % 64);
        if self.in_queue[w] & (1 << b) == 0 {
            self.in_queue[w] |= 1 << b;
            self.next.push(v);
        }
    }

    #[inline]
    fn dequeue(&mut self, v: u32) {
        let (w, b) = ((v / 64) as usize, v % 64);
        self.in_queue[w] &= !(1 << b);
    }
}

/// One memoized SPFA result, tagged with the graph generation it is
/// current at: results from older generations are delta-relaxed forward
/// instead of recomputed (see the [module docs](self)).
#[derive(Debug, Clone)]
struct CachedPaths {
    /// Vertex count the result is current at.
    vertices: usize,
    /// Edge count the result is current at.
    edges: usize,
    lp: Arc<LongestPaths>,
}

/// Memoized analysis state: the CSR form of the latest generation, all
/// SPFA results computed so far keyed by `(source, direction)`, the
/// append log that lets stale results catch up incrementally, and the
/// scratch arena the traversals recycle.
#[derive(Debug, Default)]
struct AnalysisCache {
    csr: Option<Arc<CsrTopology>>,
    paths: HashMap<(u32, Direction), CachedPaths, FxBuild>,
    /// Edges appended since `log_base`, in insertion order. Maintained
    /// only while memoized results exist (reset whenever `paths` is
    /// empty), so pure construction phases log nothing.
    log: EdgeLog,
    /// Edge count at the start of `log`.
    log_base: usize,
    /// The reusable traversal arena; `None` while a query has it out.
    scratch: Option<Box<SpfaScratch>>,
}

/// A weighted directed multigraph over vertices of type `V`.
///
/// Vertices are interned to dense indices on first use; parallel edges are
/// allowed (bounds graphs need them: two processes exchanging messages
/// produce edges of both signs between the same node pair).
///
/// Longest-path queries are memoized: see the [module docs](self) and
/// [`WeightedDigraph::longest_from_cached`].
#[derive(Debug)]
pub struct WeightedDigraph<V> {
    index: HashMap<V, usize, FxBuild>,
    vertices: Vec<V>,
    out: Vec<Vec<Edge>>,
    r#in: Vec<Vec<Edge>>,
    edge_count: usize,
    cache: Mutex<AnalysisCache>,
}

impl<V: Clone> Clone for WeightedDigraph<V> {
    fn clone(&self) -> Self {
        // Cached Arcs describe the same topology; sharing them is safe and
        // keeps a clone-then-query pattern warm. The scratch arena is not
        // shared — each graph warms its own.
        let shared = {
            let cache = self.cache.lock().expect("cache lock");
            AnalysisCache {
                csr: cache.csr.clone(),
                paths: cache.paths.clone(),
                log: cache.log.clone(),
                log_base: cache.log_base,
                scratch: None,
            }
        };
        WeightedDigraph {
            index: self.index.clone(),
            vertices: self.vertices.clone(),
            out: self.out.clone(),
            r#in: self.r#in.clone(),
            edge_count: self.edge_count,
            cache: Mutex::new(shared),
        }
    }
}

impl<V: Hash + Eq + Clone> Default for WeightedDigraph<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Hash + Eq + Clone> WeightedDigraph<V> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        WeightedDigraph {
            index: HashMap::default(),
            vertices: Vec::new(),
            out: Vec::new(),
            r#in: Vec::new(),
            edge_count: 0,
            cache: Mutex::new(AnalysisCache::default()),
        }
    }

    /// Pre-sizes the vertex-side storage (interner and adjacency tables)
    /// for `n` upcoming vertices: bulk builders reserve once instead of
    /// growing through repeated reallocation and rehashing.
    pub(crate) fn reserve_vertices(&mut self, n: usize) {
        self.index.reserve(n);
        self.vertices.reserve(n);
        self.out.reserve(n);
        self.r#in.reserve(n);
    }

    /// Records a mutation: the CSR freezes a generation and is rebuilt
    /// lazily; memoized SPFA results are *kept* and the appended edge (if
    /// any) is logged so they can delta-relax on their next query.
    fn note_mutation(&mut self, appended: Option<Edge>) {
        let edge_count = self.edge_count;
        let cache = self.cache.get_mut().expect("cache lock");
        cache.csr = None;
        if cache.paths.is_empty() {
            // Nothing to catch up: restart the log here so construction
            // phases (thousands of adds before any query) log nothing.
            cache.log.clear();
            cache.log_base = edge_count;
        } else if let Some(e) = appended {
            // Endpoints were interned through `add_vertex`, which already
            // guarantees they fit in u32.
            cache
                .log
                .push(e.from as u32, e.to as u32, e.weight, e.label);
        }
    }

    /// Interns `v`, returning its dense index. Memoized longest-path
    /// results survive (a fresh vertex is unreachable until an edge
    /// arrives) and are resized on their next query.
    ///
    /// # Panics
    ///
    /// Panics if the graph already holds `u32::MAX` vertices (interior
    /// indices are `u32`; see the [module docs](self)).
    pub fn add_vertex(&mut self, v: V) -> usize {
        if let Some(&i) = self.index.get(&v) {
            return i;
        }
        let i = self.vertices.len();
        checked_u32(i + 1, "vertex count").expect("graph exceeds the u32 index space");
        self.index.insert(v.clone(), i);
        self.vertices.push(v);
        self.out.push(Vec::new());
        self.r#in.push(Vec::new());
        self.note_mutation(None);
        i
    }

    /// Adds the edge `from --weight--> to` with a label. Memoized
    /// longest-path results survive and delta-relax over the new edge on
    /// their next query (see the [module docs](self)).
    pub fn add_edge(&mut self, from: V, to: V, weight: i64, label: u32) {
        let f = self.add_vertex(from);
        let t = self.add_vertex(to);
        self.add_edge_indexed(f, t, weight, label);
    }

    /// Adds an edge between two already-interned dense indices (as
    /// returned by [`WeightedDigraph::add_vertex`]). The hot append paths
    /// use this to intern each endpoint once per batch of edges instead
    /// of once per edge.
    pub(crate) fn add_edge_indexed(&mut self, from: usize, to: usize, weight: i64, label: u32) {
        let e = Edge {
            from,
            to,
            weight,
            label,
        };
        self.out[from].push(e);
        self.r#in[to].push(e);
        self.edge_count += 1;
        self.note_mutation(Some(e));
    }

    /// The frozen CSR form of the current graph generation, built on first
    /// use and shared until the next mutation.
    ///
    /// # Panics
    ///
    /// Panics if the edge count exceeds the `u32` index space (the
    /// fallible query paths report [`CoreError::IndexOverflow`] instead).
    pub fn csr(&self) -> Arc<CsrTopology> {
        self.csr_checked()
            .expect("graph exceeds the u32 index space")
    }

    fn csr_checked(&self) -> Result<Arc<CsrTopology>, CoreError> {
        let mut cache = self.cache.lock().expect("cache lock");
        if let Some(csr) = &cache.csr {
            return Ok(csr.clone());
        }
        let csr = Arc::new(CsrTopology::build(&self.out, &self.r#in)?);
        cache.csr = Some(csr.clone());
        Ok(csr)
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The dense index of `v`, if interned.
    pub fn index_of(&self, v: &V) -> Option<usize> {
        self.index.get(v).copied()
    }

    /// The vertex at dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn vertex(&self, i: usize) -> &V {
        &self.vertices[i]
    }

    /// Whether `v` has been interned.
    pub fn contains(&self, v: &V) -> bool {
        self.index.contains_key(v)
    }

    /// Outgoing edges of vertex index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn edges_from(&self, i: usize) -> &[Edge] {
        &self.out[i]
    }

    /// Incoming edges of vertex index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn edges_to(&self, i: usize) -> &[Edge] {
        &self.r#in[i]
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = &V> + '_ {
        self.vertices.iter()
    }

    /// Longest-path weights from `src` to every vertex (`None` =
    /// unreachable), via a fresh SPFA over the frozen CSR form.
    ///
    /// Each call traverses afresh — it neither consults nor populates the
    /// per-source result memo, so one-shot callers pay exactly one SPFA
    /// and retain no result. (The frozen [`CsrTopology`] the traversal
    /// runs over *is* built and retained on first use, shared by every
    /// query until the graph mutates, and the traversal borrows the
    /// shared scratch arena like every other query.) On hot paths that
    /// revisit sources, prefer [`WeightedDigraph::longest_from_cached`],
    /// which shares one memoized traversal across repeated queries.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if a positive cycle is
    /// reachable from `src`.
    pub fn longest_from(&self, src: &V) -> Result<LongestPaths, CoreError> {
        let s = self.index_of(src).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_from: source vertex not in graph".into(),
        })?;
        self.uncached_spfa(s, Direction::Forward)
    }

    /// Longest-path weights from every vertex *to* `dst` (`None` =
    /// no path), via a fresh SPFA on the reversed CSR adjacency; see
    /// [`WeightedDigraph::longest_from`] for the cached/uncached contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if a positive cycle reaches
    /// `dst`.
    pub fn longest_to(&self, dst: &V) -> Result<LongestPaths, CoreError> {
        let s = self.index_of(dst).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_to: destination vertex not in graph".into(),
        })?;
        self.uncached_spfa(s, Direction::Backward)
    }

    fn uncached_spfa(&self, src: usize, dir: Direction) -> Result<LongestPaths, CoreError> {
        let csr = self.csr_checked()?;
        let mut scratch = self.take_scratch();
        let result = spfa(&csr, src, dir, &mut scratch);
        self.put_scratch(scratch);
        result
    }

    /// Memoized [`WeightedDigraph::longest_from`]: the first query per
    /// source runs SPFA, every later query on the unmodified graph returns
    /// the shared result in O(1) without allocating.
    ///
    /// # Errors
    ///
    /// Same conditions as [`WeightedDigraph::longest_from`].
    pub fn longest_from_cached(&self, src: &V) -> Result<Arc<LongestPaths>, CoreError> {
        let s = self.index_of(src).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_from: source vertex not in graph".into(),
        })?;
        self.cached_spfa(s, Direction::Forward)
    }

    /// Memoized [`WeightedDigraph::longest_to`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`WeightedDigraph::longest_to`].
    pub fn longest_to_cached(&self, dst: &V) -> Result<Arc<LongestPaths>, CoreError> {
        let s = self.index_of(dst).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_to: destination vertex not in graph".into(),
        })?;
        self.cached_spfa(s, Direction::Backward)
    }

    /// Number of appended edges currently held in the catch-up log.
    ///
    /// The log is retained only while memoized SPFA results exist; on a
    /// very long append-only stream with warm caches it can grow to one
    /// extra copy of the adjacency. [`WeightedDigraph::compact`] reclaims
    /// it mid-stream.
    pub fn append_log_len(&self) -> usize {
        self.cache.lock().expect("cache lock").log.len()
    }

    /// Settles every memoized SPFA result (delta-relaxing stale ones over
    /// the appended edges) and then drops the catch-up log: after this
    /// call every cached result is current and
    /// [`WeightedDigraph::append_log_len`] is 0. Returns the number of log
    /// entries reclaimed.
    ///
    /// Answers are unaffected — settling runs exactly the delta
    /// relaxation the next query would have run lazily; compaction merely
    /// releases memory the settled results no longer need. Intended as a
    /// mid-stream maintenance hook for append-only consumers (see
    /// [`crate::incremental::IncrementalEngine::compact`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if settling a cached result
    /// detects one (impossible for graphs of legal runs).
    pub fn compact(&self) -> Result<usize, CoreError> {
        // Collect the stale keys first, then settle each outside the lock
        // (cached_spfa re-locks internally).
        let (vcount, ecount) = (self.vertices.len(), self.edge_count);
        let stale: Vec<(u32, Direction)> = {
            let cache = self.cache.lock().expect("cache lock");
            cache
                .paths
                .iter()
                .filter(|(_, hit)| hit.vertices != vcount || hit.edges != ecount)
                .map(|(&key, _)| key)
                .collect()
        };
        for (src, dir) in stale {
            self.cached_spfa(src as usize, dir)?;
        }
        let mut cache = self.cache.lock().expect("cache lock");
        // Settling may have raced with nothing (no mutation is possible
        // under &self), so every entry is now current and the whole log
        // is reclaimable.
        let dropped = cache.log.len();
        cache.log.clear();
        cache.log_base = ecount;
        Ok(dropped)
    }

    fn take_scratch(&self) -> Box<SpfaScratch> {
        self.cache
            .lock()
            .expect("cache lock")
            .scratch
            .take()
            .unwrap_or_default()
    }

    fn put_scratch(&self, scratch: Box<SpfaScratch>) {
        let mut cache = self.cache.lock().expect("cache lock");
        // A concurrent query may have allocated its own arena; keep one.
        if cache.scratch.is_none() {
            cache.scratch = Some(scratch);
        }
    }

    fn cached_spfa(&self, src: usize, dir: Direction) -> Result<Arc<LongestPaths>, CoreError> {
        let (vcount, ecount) = (self.vertices.len(), self.edge_count);
        let key = (src as u32, dir);
        {
            // Current hits return immediately. A stale hit catches up *in
            // place, under the lock*: the delta pass is proportional to
            // the appended edges and the vertices they improve, so the
            // steady streaming loop pays one lock round and zero memo
            // churn per append batch.
            let mut cache = self.cache.lock().expect("cache lock");
            let AnalysisCache {
                paths,
                log,
                log_base,
                scratch: scratch_slot,
                ..
            } = &mut *cache;
            match paths.get_mut(&key) {
                Some(hit) if hit.vertices == vcount && hit.edges == ecount => {
                    return Ok(hit.lp.clone());
                }
                // The log begins no later than any surviving entry's
                // generation (entries are cleared with the log); guard
                // anyway and fall back to a fresh traversal.
                Some(hit) if hit.edges >= *log_base => {
                    let start = hit.edges - *log_base;
                    let mut scratch = scratch_slot.take().unwrap_or_default();
                    log.stage_into(start, &mut scratch.delta);
                    // In the steady streaming state the memo holds the
                    // only strong reference, so this catches up with no
                    // O(n) copy; external holders force one clone.
                    let result = spfa_delta(
                        Arc::make_mut(&mut hit.lp),
                        &self.out,
                        &self.r#in,
                        vcount,
                        dir,
                        &mut scratch,
                    );
                    if scratch_slot.is_none() {
                        *scratch_slot = Some(scratch);
                    }
                    return match result {
                        Ok(()) => {
                            hit.vertices = vcount;
                            hit.edges = ecount;
                            Ok(hit.lp.clone())
                        }
                        // Drop the partially-relaxed entry: the next
                        // query re-runs cold and reports the same
                        // verdict.
                        Err(e) => {
                            paths.remove(&key);
                            Err(e)
                        }
                    };
                }
                _ => {}
            }
        }
        // Cold traversal outside the lock: concurrent first touches may
        // duplicate work but never block each other.
        let mut scratch = self.take_scratch();
        let result = self
            .csr_checked()
            .and_then(|csr| spfa(&csr, src, dir, &mut scratch).map(Arc::new));
        let mut cache = self.cache.lock().expect("cache lock");
        if cache.scratch.is_none() {
            cache.scratch = Some(scratch);
        }
        let lp = result?;
        cache.paths.insert(
            key,
            CachedPaths {
                vertices: vcount,
                edges: ecount,
                lp: lp.clone(),
            },
        );
        drop(cache);
        Ok(lp)
    }
}

/// Queue-based Bellman–Ford (SPFA) for longest paths over the frozen SoA
/// CSR, with blocked relaxation: the frontier drains in generations, each
/// generation scanning contiguous target/weight lanes. A graph with no
/// positive cycle converges within `|V|` drains (the longest simple path
/// has `|V| − 1` edges), so a run that needs more has found one.
///
/// The working predecessor lane records CSR edge positions (one 4-byte
/// write per improvement); the result's predecessor lanes are
/// materialized afterwards in one sweep over the rows.
fn spfa(
    csr: &CsrTopology,
    src: usize,
    dir: Direction,
    scratch: &mut SpfaScratch,
) -> Result<LongestPaths, CoreError> {
    let n = csr.vertex_count();
    let lanes = csr.lanes(dir);
    let mut dist = vec![UNREACHABLE; n];
    scratch.reset(n);
    scratch.pred_pos.clear();
    scratch.pred_pos.resize(n, NO_PRED);
    dist[src] = 0;
    scratch.next.push(src as u32);
    std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    let mut drains = 0usize;
    while !scratch.frontier.is_empty() {
        drains += 1;
        if drains > n {
            return Err(CoreError::PositiveCycle);
        }
        let SpfaScratch {
            pred_pos,
            in_queue,
            frontier,
            next,
            ..
        } = scratch;
        for &u in frontier.iter() {
            let (w, b) = ((u / 64) as usize, u % 64);
            in_queue[w] &= !(1 << b);
            let du = dist[u as usize];
            // Zip the target/weight lanes of one contiguous row: no
            // per-edge bounds checks, prefetch-friendly strides.
            let row = lanes.row(u as usize);
            let base = row.start;
            let targets = &lanes.targets[row.clone()];
            let weights = &lanes.weights[row];
            for (i, (&t, &w)) in targets.iter().zip(weights).enumerate() {
                let v = t as usize;
                let cand = du + w;
                if cand > dist[v] {
                    dist[v] = cand;
                    pred_pos[v] = (base + i) as u32;
                    let (w, b) = ((t / 64) as usize, t % 64);
                    if in_queue[w] & (1 << b) == 0 {
                        in_queue[w] |= 1 << b;
                        next.push(t);
                    }
                }
            }
        }
        frontier.clear();
        std::mem::swap(frontier, next);
    }
    // Materialize the predecessor lanes: one sweep over the rows assigns
    // each improved vertex the endpoints of its winning edge position.
    let mut pred_other = vec![NO_PRED; n];
    let mut pred_weight = vec![0i64; n];
    let mut pred_label = vec![0u32; n];
    for u in 0..n {
        for p in lanes.row(u) {
            let v = lanes.targets[p] as usize;
            if scratch.pred_pos[v] == p as u32 {
                pred_other[v] = u as u32;
                pred_weight[v] = lanes.weights[p];
                pred_label[v] = lanes.labels[p];
            }
        }
    }
    Ok(LongestPaths {
        src: src as u32,
        dir,
        dist,
        pred_other,
        pred_weight,
        pred_label,
    })
}

/// Incremental SPFA: catches a converged longest-path result up with the
/// edges staged in `scratch.delta`, **in place**. The new edges seed the
/// frontier with exactly the vertices they improve; the cascade then
/// drains in generations over the live adjacency (which already contains
/// old and new edges), so the converged bulk of the result is never
/// revisited. The same `|V|`-drain bound detects positive cycles: an
/// improvement chain longer than `|V|` revisits some vertex with a
/// strictly larger distance.
///
/// Correct because mutations are append-only: every path the old result
/// accounted for still exists, so its weights are valid lower bounds,
/// and any strictly better path uses at least one new edge — which is
/// exactly what gets seeded.
fn spfa_delta(
    lp: &mut LongestPaths,
    out: &[Vec<Edge>],
    incoming: &[Vec<Edge>],
    n: usize,
    dir: Direction,
    scratch: &mut SpfaScratch,
) -> Result<(), CoreError> {
    lp.dist.resize(n, UNREACHABLE);
    lp.pred_other.resize(n, NO_PRED);
    lp.pred_weight.resize(n, 0);
    lp.pred_label.resize(n, 0);
    scratch.reset(n);
    macro_rules! relax {
        ($e:expr, $u:expr, $v:expr) => {{
            let du = lp.dist[$u];
            if du != UNREACHABLE {
                let cand = du + $e.weight;
                if cand > lp.dist[$v] {
                    lp.dist[$v] = cand;
                    lp.pred_other[$v] = $u as u32;
                    lp.pred_weight[$v] = $e.weight;
                    lp.pred_label[$v] = $e.label;
                    scratch.enqueue($v as u32);
                }
            }
        }};
    }
    for k in 0..scratch.delta.len() {
        let e = scratch.delta[k];
        let (u, v) = match dir {
            Direction::Forward => (e.from as usize, e.to as usize),
            Direction::Backward => (e.to as usize, e.from as usize),
        };
        relax!(e, u, v);
    }
    std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    let mut drains = 0usize;
    while !scratch.frontier.is_empty() {
        drains += 1;
        if drains > n {
            return Err(CoreError::PositiveCycle);
        }
        for i in 0..scratch.frontier.len() {
            let u = scratch.frontier[i];
            scratch.dequeue(u);
            let edges = match dir {
                Direction::Forward => &out[u as usize],
                Direction::Backward => &incoming[u as usize],
            };
            for e in edges {
                let (u, v) = match dir {
                    Direction::Forward => (e.from, e.to),
                    Direction::Backward => (e.to, e.from),
                };
                relax!(e, u, v);
            }
        }
        scratch.frontier.clear();
        std::mem::swap(&mut scratch.frontier, &mut scratch.next);
    }
    Ok(())
}

impl<V: Hash + Eq + Clone> WeightedDigraph<V> {
    /// Longest-path weights from `src` via the classic dense Bellman–Ford
    /// (`|V| − 1` full relaxation rounds plus a detection round).
    ///
    /// Functionally identical to [`WeightedDigraph::longest_from`]; kept
    /// as the ablation baseline for the queue-based SPFA the bounds-graph
    /// queries use (see the `graphs` and `layout` benchmarks).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if a positive cycle is
    /// reachable from `src`.
    pub fn longest_from_dense(&self, src: &V) -> Result<Vec<Option<i64>>, CoreError> {
        let s = self.index_of(src).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_from_dense: source vertex not in graph".into(),
        })?;
        let n = self.vertices.len();
        let mut dist: Vec<Option<i64>> = vec![None; n];
        dist[s] = Some(0);
        let relax = |dist: &mut Vec<Option<i64>>| {
            let mut changed = false;
            for edges in &self.out {
                for e in edges {
                    let Some(du) = dist[e.from] else { continue };
                    let cand = du + e.weight;
                    if dist[e.to].is_none_or(|dv| cand > dv) {
                        dist[e.to] = Some(cand);
                        changed = true;
                    }
                }
            }
            changed
        };
        for _ in 1..n.max(1) {
            if !relax(&mut dist) {
                return Ok(dist);
            }
        }
        if relax(&mut dist) {
            return Err(CoreError::PositiveCycle);
        }
        Ok(dist)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Direction {
    Forward,
    Backward,
}

/// The result of a longest-path computation: sentinel-coded distances and
/// a predecessor forest (as parallel lanes; see the [module docs](self))
/// for path reconstruction.
#[derive(Debug, Clone)]
pub struct LongestPaths {
    src: u32,
    dir: Direction,
    /// `UNREACHABLE` (= `i64::MIN`) marks disconnected vertices.
    dist: Vec<i64>,
    /// The predecessor vertex on the walk toward `src` (`NO_PRED` =
    /// root or unreachable), plus the weight and label of the edge that
    /// connects them; `path` reassembles `Edge` values from these.
    pred_other: Vec<u32>,
    pred_weight: Vec<i64>,
    pred_label: Vec<u32>,
}

impl LongestPaths {
    /// The longest-path weight to vertex index `i` (`None` if no path).
    ///
    /// For a forward query this is the weight from `src` to `i`; for a
    /// backward query ([`WeightedDigraph::longest_to`]), from `i` to the
    /// destination.
    pub fn weight(&self, i: usize) -> Option<i64> {
        self.dist.get(i).copied().filter(|&d| d != UNREACHABLE)
    }

    /// Whether vertex index `i` is connected to the query root.
    pub fn reaches(&self, i: usize) -> bool {
        self.weight(i).is_some()
    }

    /// The maximum weight over all connected vertices.
    pub fn max_weight(&self) -> Option<i64> {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .max()
    }

    /// The minimum weight over all connected vertices.
    pub fn min_weight(&self) -> Option<i64> {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != UNREACHABLE)
            .min()
    }

    /// Reconstructs the longest path to/from vertex index `i` as an edge
    /// sequence in walk order (empty for the root itself); `None` if `i`
    /// is unreachable.
    pub fn path(&self, i: usize) -> Option<Vec<Edge>> {
        self.weight(i)?;
        let mut edges = Vec::new();
        let mut cur = i;
        while cur != self.src as usize {
            let other = self.pred_other[cur];
            assert_ne!(
                other, NO_PRED,
                "reachable non-root vertices have predecessors"
            );
            let (from, to) = match self.dir {
                Direction::Forward => (other as usize, cur),
                Direction::Backward => (cur, other as usize),
            };
            edges.push(Edge {
                from,
                to,
                weight: self.pred_weight[cur],
                label: self.pred_label[cur],
            });
            cur = other as usize;
        }
        if self.dir == Direction::Forward {
            edges.reverse();
        }
        Some(edges)
    }

    /// Indices of all connected vertices.
    pub fn connected(&self) -> impl Iterator<Item = usize> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| (d != UNREACHABLE).then_some(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WeightedDigraph<&'static str> {
        // a -> b (2), a -> c (5), b -> d (4), c -> d (−1), d -> a (−100)
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 2, 0);
        g.add_edge("a", "c", 5, 0);
        g.add_edge("b", "d", 4, 0);
        g.add_edge("c", "d", -1, 0);
        g.add_edge("d", "a", -100, 0);
        g
    }

    #[test]
    fn forward_longest_paths() {
        let g = diamond();
        let lp = g.longest_from(&"a").unwrap();
        let idx = |v: &str| g.index_of(&v).unwrap();
        assert_eq!(lp.weight(idx("a")), Some(0));
        assert_eq!(lp.weight(idx("b")), Some(2));
        assert_eq!(lp.weight(idx("c")), Some(5));
        assert_eq!(lp.weight(idx("d")), Some(6)); // via b
        let path = lp.path(idx("d")).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(g.vertex(path[0].to), &"b");
        assert_eq!(lp.max_weight(), Some(6));
        assert_eq!(lp.min_weight(), Some(0)); // the d->a edge (−100) never improves a
        assert_eq!(lp.connected().count(), 4);
        assert!(lp.reaches(idx("d")));
    }

    #[test]
    fn backward_longest_paths() {
        let g = diamond();
        let lp = g.longest_to(&"d").unwrap();
        let idx = |v: &str| g.index_of(&v).unwrap();
        assert_eq!(lp.weight(idx("d")), Some(0));
        assert_eq!(lp.weight(idx("b")), Some(4));
        assert_eq!(lp.weight(idx("c")), Some(-1));
        assert_eq!(lp.weight(idx("a")), Some(6));
        let path = lp.path(idx("a")).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].from, idx("a"));
        assert_eq!(path[1].to, idx("d"));
    }

    #[test]
    fn unreachable_vertices() {
        let mut g = diamond();
        g.add_vertex("z");
        let lp = g.longest_from(&"a").unwrap();
        assert_eq!(lp.weight(g.index_of(&"z").unwrap()), None);
        assert!(lp.path(g.index_of(&"z").unwrap()).is_none());
        assert!(!lp.reaches(g.index_of(&"z").unwrap()));
    }

    #[test]
    fn positive_cycle_detected() {
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 1, 0);
        g.add_edge("b", "a", 0, 0); // cycle weight +1
        assert!(matches!(
            g.longest_from(&"a"),
            Err(CoreError::PositiveCycle)
        ));
        assert!(matches!(g.longest_to(&"a"), Err(CoreError::PositiveCycle)));
    }

    #[test]
    fn zero_cycles_are_fine() {
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 3, 0);
        g.add_edge("b", "a", -3, 0);
        g.add_edge("b", "c", 1, 0);
        let lp = g.longest_from(&"a").unwrap();
        assert_eq!(lp.weight(g.index_of(&"c").unwrap()), Some(4));
    }

    #[test]
    fn parallel_edges_kept() {
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 1, 7);
        g.add_edge("a", "b", 5, 8);
        assert_eq!(g.edge_count(), 2);
        let lp = g.longest_from(&"a").unwrap();
        let b = g.index_of(&"b").unwrap();
        assert_eq!(lp.weight(b), Some(5));
        assert_eq!(lp.path(b).unwrap()[0].label, 8);
        assert_eq!(g.edges_from(g.index_of(&"a").unwrap()).len(), 2);
        assert_eq!(g.edges_to(b).len(), 2);
    }

    #[test]
    fn dense_bellman_ford_agrees_with_spfa() {
        let g = diamond();
        let lp = g.longest_from(&"a").unwrap();
        let dense = g.longest_from_dense(&"a").unwrap();
        for (i, d) in dense.iter().enumerate() {
            assert_eq!(lp.weight(i), *d);
        }
        // Positive cycles are detected by both.
        let mut bad = WeightedDigraph::new();
        bad.add_edge("a", "b", 1, 0);
        bad.add_edge("b", "a", 0, 0);
        assert!(matches!(
            bad.longest_from_dense(&"a"),
            Err(CoreError::PositiveCycle)
        ));
        assert!(g.longest_from_dense(&"nope").is_err());
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = diamond();
        let csr = g.csr();
        assert_eq!(csr.vertex_count(), g.vertex_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for i in 0..g.vertex_count() {
            assert_eq!(csr.out_edges(i), g.edges_from(i));
            assert_eq!(csr.in_edges(i), g.edges_to(i));
        }
        // The frozen form is shared until the graph mutates.
        assert!(Arc::ptr_eq(&csr, &g.csr()));
    }

    #[test]
    fn checked_conversion_reports_overflow() {
        assert_eq!(checked_u32(0, "x").unwrap(), 0);
        assert_eq!(checked_u32(42, "x").unwrap(), 42);
        assert_eq!(checked_u32(u32::MAX as usize, "x").unwrap(), u32::MAX);
        let err = checked_u32(usize::MAX, "edge count").unwrap_err();
        assert!(matches!(err, CoreError::IndexOverflow { .. }));
        assert!(err.to_string().contains("edge count"));
    }

    #[test]
    fn scratch_arena_is_recycled() {
        let g = diamond();
        // First query allocates the arena; it must be parked afterwards.
        let _ = g.longest_from_cached(&"a").unwrap();
        assert!(g.cache.lock().unwrap().scratch.is_some());
        // Later queries (cold and delta) keep recycling the same buffers.
        let before = g
            .cache
            .lock()
            .unwrap()
            .scratch
            .as_ref()
            .map(|s| s.frontier.capacity())
            .unwrap();
        let _ = g.longest_to_cached(&"d").unwrap();
        assert!(g.cache.lock().unwrap().scratch.is_some());
        let _ = before;
    }

    #[test]
    fn cached_queries_share_one_traversal() {
        let mut g = diamond();
        let a1 = g.longest_from_cached(&"a").unwrap();
        let a2 = g.longest_from_cached(&"a").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "second query re-ran SPFA");
        let b1 = g.longest_to_cached(&"d").unwrap();
        let b2 = g.longest_to_cached(&"d").unwrap();
        assert!(Arc::ptr_eq(&b1, &b2));
        // Forward and backward caches are distinct entries.
        assert_eq!(a1.weight(g.index_of(&"d").unwrap()), Some(6));
        assert_eq!(b1.weight(g.index_of(&"a").unwrap()), Some(6));
        // Mutation invalidates: the next query sees the new edge. (a1 is
        // still held here, so the delta pass clones rather than mutating
        // the shared result in place.)
        g.add_edge("a", "d", 100, 9);
        let a3 = g.longest_from_cached(&"a").unwrap();
        assert!(!Arc::ptr_eq(&a1, &a3), "mutation did not invalidate");
        assert_eq!(a3.weight(g.index_of(&"d").unwrap()), Some(100));
        // The superseded result is unchanged.
        assert_eq!(a1.weight(g.index_of(&"d").unwrap()), Some(6));
    }

    #[test]
    fn clones_share_warm_caches() {
        let g = diamond();
        let warm = g.longest_from_cached(&"a").unwrap();
        let clone = g.clone();
        let from_clone = clone.longest_from_cached(&"a").unwrap();
        assert!(Arc::ptr_eq(&warm, &from_clone), "clone lost the warm cache");
    }

    #[test]
    fn delta_after_clone_does_not_disturb_the_sibling() {
        // Two graphs sharing warm cache Arcs: a delta on one must leave
        // the other's cached answers untouched (copy-on-write).
        let mut g = diamond();
        let _ = g.longest_from_cached(&"a").unwrap();
        let sibling = g.clone();
        g.add_edge("a", "d", 100, 9);
        let grown = g.longest_from_cached(&"a").unwrap();
        let kept = sibling.longest_from_cached(&"a").unwrap();
        assert_eq!(grown.weight(g.index_of(&"d").unwrap()), Some(100));
        assert_eq!(kept.weight(sibling.index_of(&"d").unwrap()), Some(6));
    }

    #[test]
    fn delta_relaxed_caches_equal_fresh_traversals() {
        // Grow a graph edge by edge with warm caches alive the whole time;
        // after every append the delta-relaxed results must equal what a
        // freshly built graph computes from scratch, for every source and
        // both directions.
        let additions: Vec<(&str, &str, i64)> = vec![
            ("a", "b", 2),
            ("b", "c", -1),
            ("c", "a", -5),
            ("a", "c", 4),
            ("c", "d", 3),
            ("d", "b", -2),
            ("e", "a", -6),
            ("d", "e", -4),
            ("b", "e", 0),
        ];
        let mut grown: WeightedDigraph<&str> = WeightedDigraph::new();
        grown.add_edge("a", "b", 2, 0);
        // Warm several sources so every later append must delta-relax.
        let _ = grown.longest_from_cached(&"a").unwrap();
        let _ = grown.longest_to_cached(&"b").unwrap();
        for k in 1..additions.len() {
            let (f, t, w) = additions[k];
            grown.add_edge(f, t, w, 0);
            let mut fresh: WeightedDigraph<&str> = WeightedDigraph::new();
            for &(f, t, w) in &additions[..=k] {
                fresh.add_edge(f, t, w, 0);
            }
            for src in ["a", "b", "c", "d", "e"] {
                if !fresh.contains(&src) {
                    continue;
                }
                let warm_fwd = grown.longest_from_cached(&src).unwrap();
                let warm_bwd = grown.longest_to_cached(&src).unwrap();
                let cold_fwd = fresh.longest_from(&src).unwrap();
                let cold_bwd = fresh.longest_to(&src).unwrap();
                for v in ["a", "b", "c", "d", "e"] {
                    let (gi, fi) = match (grown.index_of(&v), fresh.index_of(&v)) {
                        (Some(gi), Some(fi)) => (gi, fi),
                        _ => continue,
                    };
                    assert_eq!(
                        warm_fwd.weight(gi),
                        cold_fwd.weight(fi),
                        "delta fwd diverged at step {k}, {src} -> {v}"
                    );
                    assert_eq!(
                        warm_bwd.weight(gi),
                        cold_bwd.weight(fi),
                        "delta bwd diverged at step {k}, {v} -> {src}"
                    );
                    // Reconstructed paths realize the reported weights.
                    if let Some(w) = warm_fwd.weight(gi) {
                        let path = warm_fwd.path(gi).unwrap();
                        assert_eq!(path.iter().map(|e| e.weight).sum::<i64>(), w);
                    }
                }
            }
        }
    }

    #[test]
    fn delta_relaxation_detects_late_positive_cycles() {
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 1, 0);
        g.add_edge("b", "c", 1, 0);
        let warm = g.longest_from_cached(&"a").unwrap();
        assert_eq!(warm.weight(g.index_of(&"c").unwrap()), Some(2));
        // The closing edge creates a positive cycle reachable from "a":
        // the delta pass must report it, not spin.
        g.add_edge("c", "a", 0, 0);
        assert!(matches!(
            g.longest_from_cached(&"a"),
            Err(CoreError::PositiveCycle)
        ));
        // And it keeps reporting it on retry (the evicted entry re-runs
        // cold), matching the uncached verdict.
        assert!(matches!(
            g.longest_from_cached(&"a"),
            Err(CoreError::PositiveCycle)
        ));
        assert!(matches!(
            g.longest_from(&"a"),
            Err(CoreError::PositiveCycle)
        ));
    }

    #[test]
    fn new_vertices_extend_cached_results() {
        let mut g = diamond();
        let warm = g.longest_from_cached(&"a").unwrap();
        g.add_vertex("z");
        // Still answerable; z is unreachable until an edge arrives.
        let after = g.longest_from_cached(&"a").unwrap();
        assert_eq!(after.weight(g.index_of(&"z").unwrap()), None);
        g.add_edge("d", "z", 3, 0);
        let connected = g.longest_from_cached(&"a").unwrap();
        assert_eq!(connected.weight(g.index_of(&"z").unwrap()), Some(9));
        assert_eq!(
            warm.weight(g.index_of(&"d").unwrap()),
            connected.weight(g.index_of(&"d").unwrap())
        );
    }

    #[test]
    fn compaction_reclaims_the_log_and_keeps_answers() {
        let mut g: WeightedDigraph<&str> = WeightedDigraph::new();
        g.add_edge("a", "b", 2, 0);
        // Warm two sources so later appends are logged.
        let _ = g.longest_from_cached(&"a").unwrap();
        let _ = g.longest_to_cached(&"b").unwrap();
        g.add_edge("b", "c", 3, 0);
        g.add_edge("a", "c", 1, 0);
        assert_eq!(g.append_log_len(), 2);
        let dropped = g.compact().unwrap();
        assert_eq!(dropped, 2);
        assert_eq!(g.append_log_len(), 0);
        // Settled results answer exactly like a fresh traversal.
        let warm = g.longest_from_cached(&"a").unwrap();
        let cold = g.longest_from(&"a").unwrap();
        for v in ["a", "b", "c"] {
            let i = g.index_of(&v).unwrap();
            assert_eq!(warm.weight(i), cold.weight(i));
        }
        // Appends after compaction still delta-relax correctly.
        g.add_edge("c", "d", 4, 0);
        assert_eq!(g.append_log_len(), 1);
        let after = g.longest_from_cached(&"a").unwrap();
        assert_eq!(after.weight(g.index_of(&"d").unwrap()), Some(9));
        assert_eq!(g.compact().unwrap(), 1);
        // Compacting an empty-log graph is a no-op.
        assert_eq!(g.compact().unwrap(), 0);
    }

    #[test]
    fn missing_roots_error() {
        let g = diamond();
        assert!(g.longest_from(&"nope").is_err());
        assert!(g.longest_to(&"nope").is_err());
        assert!(g.contains(&"a"));
        assert!(!g.contains(&"nope"));
        assert_eq!(g.vertices().count(), 4);
        assert_eq!(g.vertex_count(), 4);
    }
}
