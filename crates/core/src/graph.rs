//! A weighted directed multigraph with longest-path queries.
//!
//! Bounds graphs (paper §5) contain cycles (every delivered message
//! contributes a forward `+L` edge and a backward `−U` edge) but **no
//! positive cycles** — a positive cycle would force a node to occur later
//! than itself. Longest paths are therefore well-defined and computed with
//! a queue-based Bellman–Ford (SPFA); a positive cycle is reported as
//! [`CoreError::PositiveCycle`] and indicates corrupted input.
//!
//! # Shared analysis
//!
//! Causal-order queries are the hot path of the knowledge engine: a single
//! `max_x`/`witness`/`refute` round trips over the same graph many times,
//! and batched queries (all-pairs matrices, protocol sweeps) revisit the
//! same sources. Two layers amortize that cost:
//!
//! * a **frozen CSR form** ([`CsrTopology`]) — forward and reverse
//!   adjacency as one flat `Vec<Edge>` plus offsets, built once per graph
//!   generation, that SPFA scans instead of the per-vertex `Vec`s (better
//!   locality, no per-vertex indirection);
//! * a **longest-path cache** — every SPFA result is memoized per
//!   `(source, direction)` and shared as an [`Arc`], so repeated queries
//!   against an unmodified graph are O(1) after first touch
//!   ([`WeightedDigraph::longest_from_cached`] /
//!   [`WeightedDigraph::longest_to_cached`]).
//!
//! Both layers survive mutation **monotonically**: the only mutations the
//! graph supports are additions ([`WeightedDigraph::add_vertex`] /
//! [`WeightedDigraph::add_edge`]), and adding vertices or edges can only
//! *raise* longest-path weights — every old path still exists, new edges
//! merely offer new ones. So instead of dropping memoized results on
//! mutation, the graph logs the edges appended since each result was
//! computed and **delta-relaxes** a stale result on its next query: the
//! new edges seed an incremental SPFA that cascades forward from exactly
//! the vertices they improve (the frontier), leaving the converged bulk
//! of the old result untouched. The frozen CSR is rebuilt lazily per
//! generation; delta cascades walk the live adjacency directly, since
//! they touch few vertices. This is what makes append-only consumers
//! (`crate::incremental`) pay per-append cost proportional to the change,
//! not the graph.
//!
//! Everything lives behind a [`Mutex`] so graphs (and the engines built
//! on them) stay `Send + Sync` for the parallel sweep layer.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::{Arc, Mutex};

use crate::error::CoreError;

/// An edge of the graph, with a caller-defined `label` used by the
/// extraction layer to remember what the edge encodes (successor hop,
/// message send, message reverse, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Source vertex index.
    pub from: usize,
    /// Target vertex index.
    pub to: usize,
    /// Edge weight (a timing constraint `T(from) + weight <= T(to)`).
    pub weight: i64,
    /// Caller-defined tag.
    pub label: u32,
}

/// The frozen compressed-sparse-row form of a [`WeightedDigraph`]:
/// forward and reverse adjacency as flat edge arrays plus offsets.
///
/// Built once per graph generation ([`WeightedDigraph::csr`]) and shared
/// by every SPFA over that generation. Scanning `edges[off[u]..off[u+1]]`
/// touches one contiguous allocation instead of chasing a `Vec` per
/// vertex.
#[derive(Debug, Clone)]
pub struct CsrTopology {
    fwd_off: Vec<u32>,
    fwd: Vec<Edge>,
    rev_off: Vec<u32>,
    rev: Vec<Edge>,
}

impl CsrTopology {
    fn build(out: &[Vec<Edge>], incoming: &[Vec<Edge>]) -> Self {
        fn pack(adj: &[Vec<Edge>]) -> (Vec<u32>, Vec<Edge>) {
            let total: usize = adj.iter().map(Vec::len).sum();
            let mut off = Vec::with_capacity(adj.len() + 1);
            let mut flat = Vec::with_capacity(total);
            off.push(0u32);
            for edges in adj {
                flat.extend_from_slice(edges);
                off.push(flat.len() as u32);
            }
            (off, flat)
        }
        let (fwd_off, fwd) = pack(out);
        let (rev_off, rev) = pack(incoming);
        CsrTopology {
            fwd_off,
            fwd,
            rev_off,
            rev,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.fwd_off.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.fwd.len()
    }

    /// Outgoing edges of vertex index `u`, as one contiguous slice.
    #[inline]
    pub fn out_edges(&self, u: usize) -> &[Edge] {
        &self.fwd[self.fwd_off[u] as usize..self.fwd_off[u + 1] as usize]
    }

    /// Incoming edges of vertex index `u`, as one contiguous slice.
    #[inline]
    pub fn in_edges(&self, u: usize) -> &[Edge] {
        &self.rev[self.rev_off[u] as usize..self.rev_off[u + 1] as usize]
    }
}

/// One memoized SPFA result, tagged with the graph generation it is
/// current at: results from older generations are delta-relaxed forward
/// instead of recomputed (see the [module docs](self)).
#[derive(Debug, Clone)]
struct CachedPaths {
    /// Vertex count the result is current at.
    vertices: usize,
    /// Edge count the result is current at.
    edges: usize,
    lp: Arc<LongestPaths>,
}

/// Memoized analysis state: the CSR form of the latest generation plus all
/// SPFA results computed so far, keyed by `(source, direction)`, plus the
/// append log that lets stale results catch up incrementally.
#[derive(Debug, Default)]
struct AnalysisCache {
    csr: Option<Arc<CsrTopology>>,
    paths: HashMap<(usize, Direction), CachedPaths>,
    /// Edges appended since `log_base`, in insertion order. Maintained
    /// only while memoized results exist (reset whenever `paths` is
    /// empty), so pure construction phases log nothing.
    log: Vec<Edge>,
    /// Edge count at the start of `log`.
    log_base: usize,
}

/// A weighted directed multigraph over vertices of type `V`.
///
/// Vertices are interned to dense indices on first use; parallel edges are
/// allowed (bounds graphs need them: two processes exchanging messages
/// produce edges of both signs between the same node pair).
///
/// Longest-path queries are memoized: see the [module docs](self) and
/// [`WeightedDigraph::longest_from_cached`].
#[derive(Debug)]
pub struct WeightedDigraph<V> {
    index: HashMap<V, usize>,
    vertices: Vec<V>,
    out: Vec<Vec<Edge>>,
    r#in: Vec<Vec<Edge>>,
    edge_count: usize,
    cache: Mutex<AnalysisCache>,
}

impl<V: Clone> Clone for WeightedDigraph<V> {
    fn clone(&self) -> Self {
        // Cached Arcs describe the same topology; sharing them is safe and
        // keeps a clone-then-query pattern warm.
        let shared = {
            let cache = self.cache.lock().expect("cache lock");
            AnalysisCache {
                csr: cache.csr.clone(),
                paths: cache.paths.clone(),
                log: cache.log.clone(),
                log_base: cache.log_base,
            }
        };
        WeightedDigraph {
            index: self.index.clone(),
            vertices: self.vertices.clone(),
            out: self.out.clone(),
            r#in: self.r#in.clone(),
            edge_count: self.edge_count,
            cache: Mutex::new(shared),
        }
    }
}

impl<V: Hash + Eq + Clone> Default for WeightedDigraph<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Hash + Eq + Clone> WeightedDigraph<V> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        WeightedDigraph {
            index: HashMap::new(),
            vertices: Vec::new(),
            out: Vec::new(),
            r#in: Vec::new(),
            edge_count: 0,
            cache: Mutex::new(AnalysisCache::default()),
        }
    }

    /// Records a mutation: the CSR freezes a generation and is rebuilt
    /// lazily; memoized SPFA results are *kept* and the appended edge (if
    /// any) is logged so they can delta-relax on their next query.
    fn note_mutation(&mut self, appended: Option<Edge>) {
        let edge_count = self.edge_count;
        let cache = self.cache.get_mut().expect("cache lock");
        cache.csr = None;
        if cache.paths.is_empty() {
            // Nothing to catch up: restart the log here so construction
            // phases (thousands of adds before any query) log nothing.
            cache.log.clear();
            cache.log_base = edge_count;
        } else if let Some(e) = appended {
            cache.log.push(e);
        }
    }

    /// Interns `v`, returning its dense index. Memoized longest-path
    /// results survive (a fresh vertex is unreachable until an edge
    /// arrives) and are resized on their next query.
    pub fn add_vertex(&mut self, v: V) -> usize {
        if let Some(&i) = self.index.get(&v) {
            return i;
        }
        let i = self.vertices.len();
        self.index.insert(v.clone(), i);
        self.vertices.push(v);
        self.out.push(Vec::new());
        self.r#in.push(Vec::new());
        self.note_mutation(None);
        i
    }

    /// Adds the edge `from --weight--> to` with a label. Memoized
    /// longest-path results survive and delta-relax over the new edge on
    /// their next query (see the [module docs](self)).
    pub fn add_edge(&mut self, from: V, to: V, weight: i64, label: u32) {
        let f = self.add_vertex(from);
        let t = self.add_vertex(to);
        let e = Edge {
            from: f,
            to: t,
            weight,
            label,
        };
        self.out[f].push(e);
        self.r#in[t].push(e);
        self.edge_count += 1;
        self.note_mutation(Some(e));
    }

    /// The frozen CSR form of the current graph generation, built on first
    /// use and shared until the next mutation.
    pub fn csr(&self) -> Arc<CsrTopology> {
        let mut cache = self.cache.lock().expect("cache lock");
        cache
            .csr
            .get_or_insert_with(|| Arc::new(CsrTopology::build(&self.out, &self.r#in)))
            .clone()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The dense index of `v`, if interned.
    pub fn index_of(&self, v: &V) -> Option<usize> {
        self.index.get(v).copied()
    }

    /// The vertex at dense index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn vertex(&self, i: usize) -> &V {
        &self.vertices[i]
    }

    /// Whether `v` has been interned.
    pub fn contains(&self, v: &V) -> bool {
        self.index.contains_key(v)
    }

    /// Outgoing edges of vertex index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn edges_from(&self, i: usize) -> &[Edge] {
        &self.out[i]
    }

    /// Incoming edges of vertex index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn edges_to(&self, i: usize) -> &[Edge] {
        &self.r#in[i]
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = &V> + '_ {
        self.vertices.iter()
    }

    /// Longest-path weights from `src` to every vertex (`None` =
    /// unreachable), via a fresh SPFA over the frozen CSR form.
    ///
    /// Each call traverses afresh — it neither consults nor populates the
    /// per-source result memo, so one-shot callers pay exactly one SPFA
    /// and retain no result. (The frozen [`CsrTopology`] the traversal
    /// runs over *is* built and retained on first use, shared by every
    /// query until the graph mutates.) On hot paths that revisit sources,
    /// prefer [`WeightedDigraph::longest_from_cached`], which shares one
    /// memoized traversal across repeated queries.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if a positive cycle is
    /// reachable from `src`.
    pub fn longest_from(&self, src: &V) -> Result<LongestPaths, CoreError> {
        let s = self.index_of(src).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_from: source vertex not in graph".into(),
        })?;
        spfa(&self.csr(), s, Direction::Forward)
    }

    /// Longest-path weights from every vertex *to* `dst` (`None` =
    /// no path), via a fresh SPFA on the reversed CSR adjacency; see
    /// [`WeightedDigraph::longest_from`] for the cached/uncached contract.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if a positive cycle reaches
    /// `dst`.
    pub fn longest_to(&self, dst: &V) -> Result<LongestPaths, CoreError> {
        let s = self.index_of(dst).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_to: destination vertex not in graph".into(),
        })?;
        spfa(&self.csr(), s, Direction::Backward)
    }

    /// Memoized [`WeightedDigraph::longest_from`]: the first query per
    /// source runs SPFA, every later query on the unmodified graph returns
    /// the shared result in O(1).
    ///
    /// # Errors
    ///
    /// Same conditions as [`WeightedDigraph::longest_from`].
    pub fn longest_from_cached(&self, src: &V) -> Result<Arc<LongestPaths>, CoreError> {
        let s = self.index_of(src).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_from: source vertex not in graph".into(),
        })?;
        self.cached_spfa(s, Direction::Forward)
    }

    /// Memoized [`WeightedDigraph::longest_to`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`WeightedDigraph::longest_to`].
    pub fn longest_to_cached(&self, dst: &V) -> Result<Arc<LongestPaths>, CoreError> {
        let s = self.index_of(dst).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_to: destination vertex not in graph".into(),
        })?;
        self.cached_spfa(s, Direction::Backward)
    }

    /// Number of appended edges currently held in the catch-up log.
    ///
    /// The log is retained only while memoized SPFA results exist; on a
    /// very long append-only stream with warm caches it can grow to one
    /// extra copy of the adjacency. [`WeightedDigraph::compact`] reclaims
    /// it mid-stream.
    pub fn append_log_len(&self) -> usize {
        self.cache.lock().expect("cache lock").log.len()
    }

    /// Settles every memoized SPFA result (delta-relaxing stale ones over
    /// the appended edges) and then drops the catch-up log: after this
    /// call every cached result is current and
    /// [`WeightedDigraph::append_log_len`] is 0. Returns the number of log
    /// entries reclaimed.
    ///
    /// Answers are unaffected — settling runs exactly the delta
    /// relaxation the next query would have run lazily; compaction merely
    /// releases memory the settled results no longer need. Intended as a
    /// mid-stream maintenance hook for append-only consumers (see
    /// [`crate::incremental::IncrementalEngine::compact`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if settling a cached result
    /// detects one (impossible for graphs of legal runs).
    pub fn compact(&self) -> Result<usize, CoreError> {
        // Collect the stale keys first, then settle each outside the lock
        // (cached_spfa re-locks internally).
        let (vcount, ecount) = (self.vertices.len(), self.edge_count);
        let stale: Vec<(usize, Direction)> = {
            let cache = self.cache.lock().expect("cache lock");
            cache
                .paths
                .iter()
                .filter(|(_, hit)| hit.vertices != vcount || hit.edges != ecount)
                .map(|(&key, _)| key)
                .collect()
        };
        for (src, dir) in stale {
            self.cached_spfa(src, dir)?;
        }
        let mut cache = self.cache.lock().expect("cache lock");
        // Settling may have raced with nothing (no mutation is possible
        // under &self), so every entry is now current and the whole log
        // is reclaimable.
        let dropped = cache.log.len();
        cache.log.clear();
        cache.log_base = ecount;
        Ok(dropped)
    }

    fn cached_spfa(&self, src: usize, dir: Direction) -> Result<Arc<LongestPaths>, CoreError> {
        let (vcount, ecount) = (self.vertices.len(), self.edge_count);
        // Current hits return immediately; stale hits pull the edges
        // appended since their generation out of the log.
        let stale = {
            let cache = self.cache.lock().expect("cache lock");
            match cache.paths.get(&(src, dir)) {
                Some(hit) if hit.vertices == vcount && hit.edges == ecount => {
                    return Ok(hit.lp.clone());
                }
                // The log begins no later than any surviving entry's
                // generation (entries are cleared with the log); guard
                // anyway and fall back to a fresh traversal.
                Some(hit) if hit.edges >= cache.log_base => {
                    let delta = cache.log[hit.edges - cache.log_base..].to_vec();
                    Some((hit.lp.clone(), delta))
                }
                _ => None,
            }
        };
        // Run the traversal outside the lock: concurrent first touches may
        // duplicate work but never block each other.
        let lp = match stale {
            Some((old, delta)) => Arc::new(self.spfa_delta(&old, &delta, dir)?),
            None => {
                let csr = self.csr();
                Arc::new(spfa(&csr, src, dir)?)
            }
        };
        self.cache.lock().expect("cache lock").paths.insert(
            (src, dir),
            CachedPaths {
                vertices: vcount,
                edges: ecount,
                lp: lp.clone(),
            },
        );
        Ok(lp)
    }

    /// Incremental SPFA: catches a converged longest-path result up with
    /// the edges appended since it was computed. The new edges seed the
    /// queue with exactly the vertices they improve; the cascade then
    /// walks the live adjacency (which already contains old and new
    /// edges), so the converged bulk of `old` is never revisited.
    ///
    /// Correct because mutations are append-only: every path `old`
    /// accounted for still exists, so its weights are valid lower bounds,
    /// and any strictly better path uses at least one new edge — which is
    /// exactly what gets seeded.
    fn spfa_delta(
        &self,
        old: &LongestPaths,
        new_edges: &[Edge],
        dir: Direction,
    ) -> Result<LongestPaths, CoreError> {
        let n = self.vertices.len();
        let mut dist = old.dist.clone();
        dist.resize(n, None);
        let mut pred = old.pred.clone();
        pred.resize(n, None);
        let mut relax_count: Vec<u32> = vec![0; n];
        let mut in_queue = vec![false; n];
        let mut queue = VecDeque::new();
        let endpoints = |e: &Edge| match dir {
            Direction::Forward => (e.from, e.to),
            Direction::Backward => (e.to, e.from),
        };
        let relax = |e: &Edge,
                     dist: &mut Vec<Option<i64>>,
                     pred: &mut Vec<Option<Edge>>|
         -> Option<usize> {
            let (u, v) = endpoints(e);
            let du = dist[u]?;
            let cand = du + e.weight;
            if dist[v].is_none_or(|dv| cand > dv) {
                dist[v] = Some(cand);
                pred[v] = Some(*e);
                return Some(v);
            }
            None
        };
        for e in new_edges {
            if let Some(v) = relax(e, &mut dist, &mut pred) {
                relax_count[v] += 1;
                if !in_queue[v] {
                    in_queue[v] = true;
                    queue.push_back(v);
                }
            }
        }
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            let edges = match dir {
                Direction::Forward => &self.out[u],
                Direction::Backward => &self.r#in[u],
            };
            for e in edges {
                if let Some(v) = relax(e, &mut dist, &mut pred) {
                    relax_count[v] += 1;
                    if relax_count[v] as usize > n {
                        return Err(CoreError::PositiveCycle);
                    }
                    if !in_queue[v] {
                        in_queue[v] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        Ok(LongestPaths {
            src: old.src,
            dir,
            dist,
            pred,
        })
    }
}

/// Queue-based Bellman–Ford (SPFA) for longest paths over a frozen CSR,
/// with positive-cycle detection via per-vertex relaxation counting.
fn spfa(csr: &CsrTopology, src: usize, dir: Direction) -> Result<LongestPaths, CoreError> {
    let n = csr.vertex_count();
    let mut dist: Vec<Option<i64>> = vec![None; n];
    let mut pred: Vec<Option<Edge>> = vec![None; n];
    let mut relax_count: Vec<u32> = vec![0; n];
    let mut in_queue = vec![false; n];
    dist[src] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(src);
    in_queue[src] = true;
    while let Some(u) = queue.pop_front() {
        in_queue[u] = false;
        let du = dist[u].expect("queued vertices have distances");
        let edges = match dir {
            Direction::Forward => csr.out_edges(u),
            Direction::Backward => csr.in_edges(u),
        };
        for e in edges {
            let v = match dir {
                Direction::Forward => e.to,
                Direction::Backward => e.from,
            };
            let cand = du + e.weight;
            if dist[v].is_none_or(|dv| cand > dv) {
                dist[v] = Some(cand);
                pred[v] = Some(*e);
                relax_count[v] += 1;
                if relax_count[v] as usize > n {
                    return Err(CoreError::PositiveCycle);
                }
                if !in_queue[v] {
                    in_queue[v] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    Ok(LongestPaths {
        src,
        dir,
        dist,
        pred,
    })
}

impl<V: Hash + Eq + Clone> WeightedDigraph<V> {
    /// Longest-path weights from `src` via the classic dense Bellman–Ford
    /// (`|V| − 1` full relaxation rounds plus a detection round).
    ///
    /// Functionally identical to [`WeightedDigraph::longest_from`]; kept
    /// as the ablation baseline for the queue-based SPFA the bounds-graph
    /// queries use (see the `graphs` benchmark).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if a positive cycle is
    /// reachable from `src`.
    pub fn longest_from_dense(&self, src: &V) -> Result<Vec<Option<i64>>, CoreError> {
        let s = self.index_of(src).ok_or_else(|| CoreError::InvalidTiming {
            detail: "longest_from_dense: source vertex not in graph".into(),
        })?;
        let n = self.vertices.len();
        let mut dist: Vec<Option<i64>> = vec![None; n];
        dist[s] = Some(0);
        let relax = |dist: &mut Vec<Option<i64>>| {
            let mut changed = false;
            for edges in &self.out {
                for e in edges {
                    let Some(du) = dist[e.from] else { continue };
                    let cand = du + e.weight;
                    if dist[e.to].is_none_or(|dv| cand > dv) {
                        dist[e.to] = Some(cand);
                        changed = true;
                    }
                }
            }
            changed
        };
        for _ in 1..n.max(1) {
            if !relax(&mut dist) {
                return Ok(dist);
            }
        }
        if relax(&mut dist) {
            return Err(CoreError::PositiveCycle);
        }
        Ok(dist)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Direction {
    Forward,
    Backward,
}

/// The result of a longest-path computation: distances and a predecessor
/// forest for path reconstruction.
#[derive(Debug, Clone)]
pub struct LongestPaths {
    src: usize,
    dir: Direction,
    dist: Vec<Option<i64>>,
    pred: Vec<Option<Edge>>,
}

impl LongestPaths {
    /// The longest-path weight to vertex index `i` (`None` if no path).
    ///
    /// For a forward query this is the weight from `src` to `i`; for a
    /// backward query ([`WeightedDigraph::longest_to`]), from `i` to the
    /// destination.
    pub fn weight(&self, i: usize) -> Option<i64> {
        self.dist.get(i).copied().flatten()
    }

    /// Whether vertex index `i` is connected to the query root.
    pub fn reaches(&self, i: usize) -> bool {
        self.weight(i).is_some()
    }

    /// The maximum weight over all connected vertices.
    pub fn max_weight(&self) -> Option<i64> {
        self.dist.iter().flatten().copied().max()
    }

    /// The minimum weight over all connected vertices.
    pub fn min_weight(&self) -> Option<i64> {
        self.dist.iter().flatten().copied().min()
    }

    /// Reconstructs the longest path to/from vertex index `i` as an edge
    /// sequence in walk order (empty for the root itself); `None` if `i`
    /// is unreachable.
    pub fn path(&self, i: usize) -> Option<Vec<Edge>> {
        self.weight(i)?;
        let mut edges = Vec::new();
        let mut cur = i;
        while cur != self.src {
            let e = self.pred[cur].expect("reachable non-root vertices have predecessors");
            edges.push(e);
            cur = match self.dir {
                Direction::Forward => e.from,
                Direction::Backward => e.to,
            };
        }
        if self.dir == Direction::Forward {
            edges.reverse();
        }
        Some(edges)
    }

    /// Indices of all connected vertices.
    pub fn connected(&self) -> impl Iterator<Item = usize> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.map(|_| i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> WeightedDigraph<&'static str> {
        // a -> b (2), a -> c (5), b -> d (4), c -> d (−1), d -> a (−100)
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 2, 0);
        g.add_edge("a", "c", 5, 0);
        g.add_edge("b", "d", 4, 0);
        g.add_edge("c", "d", -1, 0);
        g.add_edge("d", "a", -100, 0);
        g
    }

    #[test]
    fn forward_longest_paths() {
        let g = diamond();
        let lp = g.longest_from(&"a").unwrap();
        let idx = |v: &str| g.index_of(&v).unwrap();
        assert_eq!(lp.weight(idx("a")), Some(0));
        assert_eq!(lp.weight(idx("b")), Some(2));
        assert_eq!(lp.weight(idx("c")), Some(5));
        assert_eq!(lp.weight(idx("d")), Some(6)); // via b
        let path = lp.path(idx("d")).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(g.vertex(path[0].to), &"b");
        assert_eq!(lp.max_weight(), Some(6));
        assert_eq!(lp.min_weight(), Some(0)); // the d->a edge (−100) never improves a
        assert_eq!(lp.connected().count(), 4);
        assert!(lp.reaches(idx("d")));
    }

    #[test]
    fn backward_longest_paths() {
        let g = diamond();
        let lp = g.longest_to(&"d").unwrap();
        let idx = |v: &str| g.index_of(&v).unwrap();
        assert_eq!(lp.weight(idx("d")), Some(0));
        assert_eq!(lp.weight(idx("b")), Some(4));
        assert_eq!(lp.weight(idx("c")), Some(-1));
        assert_eq!(lp.weight(idx("a")), Some(6));
        let path = lp.path(idx("a")).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[0].from, idx("a"));
        assert_eq!(path[1].to, idx("d"));
    }

    #[test]
    fn unreachable_vertices() {
        let mut g = diamond();
        g.add_vertex("z");
        let lp = g.longest_from(&"a").unwrap();
        assert_eq!(lp.weight(g.index_of(&"z").unwrap()), None);
        assert!(lp.path(g.index_of(&"z").unwrap()).is_none());
        assert!(!lp.reaches(g.index_of(&"z").unwrap()));
    }

    #[test]
    fn positive_cycle_detected() {
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 1, 0);
        g.add_edge("b", "a", 0, 0); // cycle weight +1
        assert!(matches!(
            g.longest_from(&"a"),
            Err(CoreError::PositiveCycle)
        ));
        assert!(matches!(g.longest_to(&"a"), Err(CoreError::PositiveCycle)));
    }

    #[test]
    fn zero_cycles_are_fine() {
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 3, 0);
        g.add_edge("b", "a", -3, 0);
        g.add_edge("b", "c", 1, 0);
        let lp = g.longest_from(&"a").unwrap();
        assert_eq!(lp.weight(g.index_of(&"c").unwrap()), Some(4));
    }

    #[test]
    fn parallel_edges_kept() {
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 1, 7);
        g.add_edge("a", "b", 5, 8);
        assert_eq!(g.edge_count(), 2);
        let lp = g.longest_from(&"a").unwrap();
        let b = g.index_of(&"b").unwrap();
        assert_eq!(lp.weight(b), Some(5));
        assert_eq!(lp.path(b).unwrap()[0].label, 8);
        assert_eq!(g.edges_from(g.index_of(&"a").unwrap()).len(), 2);
        assert_eq!(g.edges_to(b).len(), 2);
    }

    #[test]
    fn dense_bellman_ford_agrees_with_spfa() {
        let g = diamond();
        let lp = g.longest_from(&"a").unwrap();
        let dense = g.longest_from_dense(&"a").unwrap();
        for (i, d) in dense.iter().enumerate() {
            assert_eq!(lp.weight(i), *d);
        }
        // Positive cycles are detected by both.
        let mut bad = WeightedDigraph::new();
        bad.add_edge("a", "b", 1, 0);
        bad.add_edge("b", "a", 0, 0);
        assert!(matches!(
            bad.longest_from_dense(&"a"),
            Err(CoreError::PositiveCycle)
        ));
        assert!(g.longest_from_dense(&"nope").is_err());
    }

    #[test]
    fn csr_matches_adjacency() {
        let g = diamond();
        let csr = g.csr();
        assert_eq!(csr.vertex_count(), g.vertex_count());
        assert_eq!(csr.edge_count(), g.edge_count());
        for i in 0..g.vertex_count() {
            assert_eq!(csr.out_edges(i), g.edges_from(i));
            assert_eq!(csr.in_edges(i), g.edges_to(i));
        }
        // The frozen form is shared until the graph mutates.
        assert!(Arc::ptr_eq(&csr, &g.csr()));
    }

    #[test]
    fn cached_queries_share_one_traversal() {
        let mut g = diamond();
        let a1 = g.longest_from_cached(&"a").unwrap();
        let a2 = g.longest_from_cached(&"a").unwrap();
        assert!(Arc::ptr_eq(&a1, &a2), "second query re-ran SPFA");
        let b1 = g.longest_to_cached(&"d").unwrap();
        let b2 = g.longest_to_cached(&"d").unwrap();
        assert!(Arc::ptr_eq(&b1, &b2));
        // Forward and backward caches are distinct entries.
        assert_eq!(a1.weight(g.index_of(&"d").unwrap()), Some(6));
        assert_eq!(b1.weight(g.index_of(&"a").unwrap()), Some(6));
        // Mutation invalidates: the next query sees the new edge.
        g.add_edge("a", "d", 100, 9);
        let a3 = g.longest_from_cached(&"a").unwrap();
        assert!(!Arc::ptr_eq(&a1, &a3), "mutation did not invalidate");
        assert_eq!(a3.weight(g.index_of(&"d").unwrap()), Some(100));
    }

    #[test]
    fn clones_share_warm_caches() {
        let g = diamond();
        let warm = g.longest_from_cached(&"a").unwrap();
        let clone = g.clone();
        let from_clone = clone.longest_from_cached(&"a").unwrap();
        assert!(Arc::ptr_eq(&warm, &from_clone), "clone lost the warm cache");
    }

    #[test]
    fn delta_relaxed_caches_equal_fresh_traversals() {
        // Grow a graph edge by edge with warm caches alive the whole time;
        // after every append the delta-relaxed results must equal what a
        // freshly built graph computes from scratch, for every source and
        // both directions.
        let additions: Vec<(&str, &str, i64)> = vec![
            ("a", "b", 2),
            ("b", "c", -1),
            ("c", "a", -5),
            ("a", "c", 4),
            ("c", "d", 3),
            ("d", "b", -2),
            ("e", "a", -6),
            ("d", "e", -4),
            ("b", "e", 0),
        ];
        let mut grown: WeightedDigraph<&str> = WeightedDigraph::new();
        grown.add_edge("a", "b", 2, 0);
        // Warm several sources so every later append must delta-relax.
        let _ = grown.longest_from_cached(&"a").unwrap();
        let _ = grown.longest_to_cached(&"b").unwrap();
        for k in 1..additions.len() {
            let (f, t, w) = additions[k];
            grown.add_edge(f, t, w, 0);
            let mut fresh: WeightedDigraph<&str> = WeightedDigraph::new();
            for &(f, t, w) in &additions[..=k] {
                fresh.add_edge(f, t, w, 0);
            }
            for src in ["a", "b", "c", "d", "e"] {
                if !fresh.contains(&src) {
                    continue;
                }
                let warm_fwd = grown.longest_from_cached(&src).unwrap();
                let warm_bwd = grown.longest_to_cached(&src).unwrap();
                let cold_fwd = fresh.longest_from(&src).unwrap();
                let cold_bwd = fresh.longest_to(&src).unwrap();
                for v in ["a", "b", "c", "d", "e"] {
                    let (gi, fi) = match (grown.index_of(&v), fresh.index_of(&v)) {
                        (Some(gi), Some(fi)) => (gi, fi),
                        _ => continue,
                    };
                    assert_eq!(
                        warm_fwd.weight(gi),
                        cold_fwd.weight(fi),
                        "delta fwd diverged at step {k}, {src} -> {v}"
                    );
                    assert_eq!(
                        warm_bwd.weight(gi),
                        cold_bwd.weight(fi),
                        "delta bwd diverged at step {k}, {v} -> {src}"
                    );
                    // Reconstructed paths realize the reported weights.
                    if let Some(w) = warm_fwd.weight(gi) {
                        let path = warm_fwd.path(gi).unwrap();
                        assert_eq!(path.iter().map(|e| e.weight).sum::<i64>(), w);
                    }
                }
            }
        }
    }

    #[test]
    fn delta_relaxation_detects_late_positive_cycles() {
        let mut g = WeightedDigraph::new();
        g.add_edge("a", "b", 1, 0);
        g.add_edge("b", "c", 1, 0);
        let warm = g.longest_from_cached(&"a").unwrap();
        assert_eq!(warm.weight(g.index_of(&"c").unwrap()), Some(2));
        // The closing edge creates a positive cycle reachable from "a":
        // the delta pass must report it, not spin.
        g.add_edge("c", "a", 0, 0);
        assert!(matches!(
            g.longest_from_cached(&"a"),
            Err(CoreError::PositiveCycle)
        ));
    }

    #[test]
    fn new_vertices_extend_cached_results() {
        let mut g = diamond();
        let warm = g.longest_from_cached(&"a").unwrap();
        g.add_vertex("z");
        // Still answerable; z is unreachable until an edge arrives.
        let after = g.longest_from_cached(&"a").unwrap();
        assert_eq!(after.weight(g.index_of(&"z").unwrap()), None);
        g.add_edge("d", "z", 3, 0);
        let connected = g.longest_from_cached(&"a").unwrap();
        assert_eq!(connected.weight(g.index_of(&"z").unwrap()), Some(9));
        assert_eq!(
            warm.weight(g.index_of(&"d").unwrap()),
            connected.weight(g.index_of(&"d").unwrap())
        );
    }

    #[test]
    fn compaction_reclaims_the_log_and_keeps_answers() {
        let mut g: WeightedDigraph<&str> = WeightedDigraph::new();
        g.add_edge("a", "b", 2, 0);
        // Warm two sources so later appends are logged.
        let _ = g.longest_from_cached(&"a").unwrap();
        let _ = g.longest_to_cached(&"b").unwrap();
        g.add_edge("b", "c", 3, 0);
        g.add_edge("a", "c", 1, 0);
        assert_eq!(g.append_log_len(), 2);
        let dropped = g.compact().unwrap();
        assert_eq!(dropped, 2);
        assert_eq!(g.append_log_len(), 0);
        // Settled results answer exactly like a fresh traversal.
        let warm = g.longest_from_cached(&"a").unwrap();
        let cold = g.longest_from(&"a").unwrap();
        for v in ["a", "b", "c"] {
            let i = g.index_of(&v).unwrap();
            assert_eq!(warm.weight(i), cold.weight(i));
        }
        // Appends after compaction still delta-relax correctly.
        g.add_edge("c", "d", 4, 0);
        assert_eq!(g.append_log_len(), 1);
        let after = g.longest_from_cached(&"a").unwrap();
        assert_eq!(after.weight(g.index_of(&"d").unwrap()), Some(9));
        assert_eq!(g.compact().unwrap(), 1);
        // Compacting an empty-log graph is a no-op.
        assert_eq!(g.compact().unwrap(), 0);
    }

    #[test]
    fn missing_roots_error() {
        let g = diamond();
        assert!(g.longest_from(&"nope").is_err());
        assert!(g.longest_to(&"nope").is_err());
        assert!(g.contains(&"a"));
        assert!(!g.contains(&"nope"));
        assert_eq!(g.vertices().count(), 4);
        assert_eq!(g.vertex_count(), 4);
    }
}
