//! General nodes `θ = ⟨σ, p⟩` (paper Definitions 3–4).
//!
//! A process reasons not only about basic nodes it has seen, but about the
//! endpoints of message chains leaving them — e.g. "the node at which A
//! receives C's message", written `σ_C · A`. A [`GeneralNode`] names such a
//! point; [`GeneralNode::resolve`] maps it to the concrete basic node
//! `basic(θ, r)` it denotes in a particular run.

use std::fmt;

use zigzag_bcm::{NetPath, NodeId, ProcessId, Run, Time};

use crate::error::CoreError;

/// A general node `θ = ⟨σ, p⟩`: the basic node that receives the message
/// chain leaving `σ` along the network path `p` (whose first process is
/// `σ`'s).
///
/// If `p` is a singleton, `θ` denotes `σ` itself. Otherwise the denoted
/// basic node depends on the run (Definition 4): under FFIP every
/// non-initial node sends to each out-neighbor, so the chain exists in
/// every run in which `σ` appears (with enough recorded horizon).
///
/// # Examples
///
/// ```
/// use zigzag_bcm::{NodeId, ProcessId};
/// use zigzag_core::GeneralNode;
/// let sigma = NodeId::new(ProcessId::new(2), 1); // a node of process C
/// let theta = GeneralNode::chain(sigma, &[ProcessId::new(0)])?; // σ_C · A
/// assert_eq!(theta.proc(), ProcessId::new(0));
/// assert!(!theta.is_basic());
/// # Ok::<(), zigzag_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GeneralNode {
    base: NodeId,
    path: NetPath,
}

impl GeneralNode {
    /// The general node `⟨σ, [i]⟩` denoting the basic node `σ` itself.
    pub fn basic(base: NodeId) -> Self {
        GeneralNode {
            base,
            path: NetPath::singleton(base.proc()),
        }
    }

    /// Creates `⟨base, path⟩`.
    ///
    /// # Errors
    ///
    /// Fails if `path` does not start at `base`'s process.
    pub fn new(base: NodeId, path: NetPath) -> Result<Self, CoreError> {
        if path.first() != base.proc() {
            return Err(CoreError::MalformedFork {
                detail: format!(
                    "path {path} does not start at the base node's process {}",
                    base.proc()
                ),
            });
        }
        Ok(GeneralNode { base, path })
    }

    /// Creates `⟨base, [base.proc, rest…]⟩` — e.g.
    /// `GeneralNode::chain(σ_C, &[A])` is the paper's `σ_C · A`.
    ///
    /// # Errors
    ///
    /// Fails if consecutive processes repeat (self-loop hop).
    pub fn chain(base: NodeId, rest: &[ProcessId]) -> Result<Self, CoreError> {
        let mut procs = Vec::with_capacity(rest.len() + 1);
        procs.push(base.proc());
        procs.extend_from_slice(rest);
        let path = NetPath::new(procs).map_err(CoreError::Bcm)?;
        Ok(GeneralNode { base, path })
    }

    /// The base basic node `σ`.
    pub fn base(&self) -> NodeId {
        self.base
    }

    /// The network path `p`.
    pub fn path(&self) -> &NetPath {
        &self.path
    }

    /// The process at which the node lies (an *i-node* has `proc() == i`).
    pub fn proc(&self) -> ProcessId {
        self.path.last()
    }

    /// Whether the node denotes its base directly (singleton path).
    pub fn is_basic(&self) -> bool {
        self.path.is_singleton()
    }

    /// The node `θq` obtained by extending the chain along `q`
    /// (paper §2.2: `q` must start at this node's process).
    ///
    /// # Errors
    ///
    /// Fails if `q` does not start at [`GeneralNode::proc`].
    pub fn then(&self, q: &NetPath) -> Result<GeneralNode, CoreError> {
        let path = self.path.compose(q).map_err(CoreError::Bcm)?;
        Ok(GeneralNode {
            base: self.base,
            path,
        })
    }

    /// The node `θ · j` obtained by one more hop.
    ///
    /// # Errors
    ///
    /// Fails if `j` equals this node's process.
    pub fn hop(&self, j: ProcessId) -> Result<GeneralNode, CoreError> {
        let path = self.path.extended(j).map_err(CoreError::Bcm)?;
        Ok(GeneralNode {
            base: self.base,
            path,
        })
    }

    /// Resolves `basic(θ, r)` (Definition 4): follows the message chain
    /// leaving the base along the path, one delivery per hop.
    ///
    /// # Errors
    ///
    /// Fails if the base does not appear in `r`, if the chain does not
    /// exist (initial nodes send no messages; a hop is not a channel), or
    /// if a delivery lies beyond the recorded horizon
    /// ([`CoreError::HorizonTooSmall`]).
    pub fn resolve(&self, run: &Run) -> Result<NodeId, CoreError> {
        if !run.appears(self.base) {
            return Err(CoreError::NodeNotInRun {
                detail: format!("base {} missing", self.base),
            });
        }
        let mut cur = self.base;
        for hop in self.path.hops() {
            debug_assert_eq!(cur.proc(), hop.from);
            let m = run
                .message_from_to(cur, hop.to)
                .ok_or_else(|| CoreError::NodeNotInRun {
                    detail: format!(
                        "no message from {cur} to {} (initial node or missing channel)",
                        hop.to
                    ),
                })?;
            match run.message(m).delivery() {
                Some(d) => cur = d.node,
                None => {
                    return Err(CoreError::HorizonTooSmall {
                        detail: format!(
                            "message {m} from {cur} to {} undelivered at horizon {}",
                            hop.to,
                            run.horizon()
                        ),
                    })
                }
            }
        }
        Ok(cur)
    }

    /// `time_r(θ) = time_r(basic(θ, r))`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`GeneralNode::resolve`].
    pub fn time_in(&self, run: &Run) -> Result<Time, CoreError> {
        let basic = self.resolve(run)?;
        run.time(basic).ok_or_else(|| CoreError::NodeNotInRun {
            detail: format!("{basic} resolved but missing"),
        })
    }

    /// Whether the node appears in `r` (resolvable within the horizon).
    pub fn appears_in(&self, run: &Run) -> bool {
        self.resolve(run).is_ok()
    }
}

impl From<NodeId> for GeneralNode {
    fn from(node: NodeId) -> Self {
        GeneralNode::basic(node)
    }
}

impl fmt::Display for GeneralNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_basic() {
            write!(f, "⟨{}⟩", self.base)
        } else {
            write!(f, "⟨{}, {}⟩", self.base, self.path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::EagerScheduler;
    use zigzag_bcm::{Network, SimConfig, Simulator};

    fn line_run() -> Run {
        let mut b = Network::builder();
        let p0 = b.add_process("p0");
        let p1 = b.add_process("p1");
        let p2 = b.add_process("p2");
        b.add_bidirectional(p0, p1, 2, 4).unwrap();
        b.add_bidirectional(p1, p2, 3, 5).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
        sim.external(Time::new(1), p0, "kick");
        sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap()
    }

    #[test]
    fn basic_nodes_resolve_to_themselves() {
        let run = line_run();
        let sigma = NodeId::new(ProcessId::new(0), 1);
        let theta = GeneralNode::basic(sigma);
        assert!(theta.is_basic());
        assert_eq!(theta.resolve(&run).unwrap(), sigma);
        assert_eq!(theta.time_in(&run).unwrap(), Time::new(1));
        let from: GeneralNode = sigma.into();
        assert_eq!(from, theta);
        assert_eq!(theta.to_string(), "⟨p0#1⟩");
    }

    #[test]
    fn chains_follow_deliveries() {
        let run = line_run();
        let sigma = NodeId::new(ProcessId::new(0), 1); // receives "kick" at t=1
        let theta = GeneralNode::chain(sigma, &[ProcessId::new(1), ProcessId::new(2)]).unwrap();
        assert_eq!(theta.proc(), ProcessId::new(2));
        let basic = theta.resolve(&run).unwrap();
        assert_eq!(basic.proc(), ProcessId::new(2));
        // Eager: 1 + L01 + L12 = 1 + 2 + 3.
        assert_eq!(theta.time_in(&run).unwrap(), Time::new(6));
        assert!(theta.appears_in(&run));
        assert!(theta.to_string().contains("p0#1"));
    }

    #[test]
    fn composition_operators() {
        let sigma = NodeId::new(ProcessId::new(0), 1);
        let theta = GeneralNode::basic(sigma)
            .hop(ProcessId::new(1))
            .unwrap()
            .hop(ProcessId::new(2))
            .unwrap();
        let q = NetPath::new(vec![ProcessId::new(2), ProcessId::new(1)]).unwrap();
        let theta_q = theta.then(&q).unwrap();
        assert_eq!(theta_q.path().len(), 4);
        assert_eq!(theta_q.proc(), ProcessId::new(1));
        // then() with mismatched start fails.
        let bad = NetPath::new(vec![ProcessId::new(0), ProcessId::new(1)]).unwrap();
        assert!(theta.then(&bad).is_err());
        assert!(theta.hop(ProcessId::new(2)).is_err());
    }

    #[test]
    fn invalid_constructions() {
        let sigma = NodeId::new(ProcessId::new(0), 1);
        let path = NetPath::new(vec![ProcessId::new(1), ProcessId::new(2)]).unwrap();
        assert!(GeneralNode::new(sigma, path).is_err());
        assert!(GeneralNode::chain(sigma, &[ProcessId::new(0)]).is_err());
    }

    #[test]
    fn unresolvable_chains() {
        let run = line_run();
        // Initial nodes never send messages.
        let init = NodeId::initial(ProcessId::new(0));
        let theta = GeneralNode::chain(init, &[ProcessId::new(1)]).unwrap();
        assert!(matches!(
            theta.resolve(&run),
            Err(CoreError::NodeNotInRun { .. })
        ));
        // Missing base.
        let ghost = NodeId::new(ProcessId::new(0), 99);
        assert!(!GeneralNode::basic(ghost).appears_in(&run));
        // Missing channel p0 -> p2.
        let sigma = NodeId::new(ProcessId::new(0), 1);
        let no_chan = GeneralNode::chain(sigma, &[ProcessId::new(2)]).unwrap();
        assert!(matches!(
            no_chan.resolve(&run),
            Err(CoreError::NodeNotInRun { .. })
        ));
    }

    #[test]
    fn horizon_cutoff_detected() {
        let run = line_run();
        // A very long ping-pong chain eventually leaves the horizon.
        let sigma = NodeId::new(ProcessId::new(0), 1);
        let mut theta = GeneralNode::basic(sigma);
        let mut err = None;
        for _ in 0..40 {
            theta = theta.hop(ProcessId::new(1)).unwrap();
            theta = theta.hop(ProcessId::new(0)).unwrap();
            if let Err(e) = theta.resolve(&run) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(CoreError::HorizonTooSmall { .. })));
    }
}
