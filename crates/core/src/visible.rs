//! σ-visible zigzag patterns (paper Definition 7).
//!
//! Information does not flow along a zigzag pattern: the timing guarantee
//! hinges on *orderings at junction processes* (did `D` hear `C` before
//! `E`?), which the endpoints cannot observe directly. A zigzag is
//! **σ-visible** when message chains inform the observer `σ` of every
//! pivotal junction: then — and, by Theorem 4, *only* then — can `σ` know
//! the precedence the pattern implies.

use std::fmt;

use zigzag_bcm::{NodeId, Run};

use crate::error::CoreError;
use crate::pattern::{ZigzagPattern, ZigzagReport};

/// A zigzag pattern together with the observer node `σ` claimed to see it.
///
/// Definition 7 requires, for `Z = (F_1, …, F_c)` to be σ-visible in `r`:
///
/// 1. `head(F_k) ⪯_r σ` for all `1 <= k <= c − 1` — the observer has heard
///    of every junction's earlier side, so it can certify the ordering
///    `time(head(F_k)) <= time(tail(F_{k+1}))` (tails beyond its past are
///    deliveries it has *not* seen, which must occur after its boundary);
/// 2. `base(F_c) = ⟨σ', p'⟩` for some `σ' ⪯_r σ` — the top fork itself is
///    known to exist.
///
/// Note that condition 2 concerns only the *base* of the top fork: its head
/// and tail may lie far outside the observer's past.
///
/// # Examples
///
/// ```
/// # use zigzag_bcm::{Network, SimConfig, Simulator, Time, NodeId};
/// # use zigzag_bcm::protocols::Ffip;
/// # use zigzag_bcm::scheduler::EagerScheduler;
/// use zigzag_core::visible::VisibleZigzag;
/// use zigzag_core::{GeneralNode, TwoLeggedFork, ZigzagPattern};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = Network::builder();
/// # let c = b.add_process("C");
/// # let a = b.add_process("A");
/// # let bb = b.add_process("B");
/// # b.add_channel(c, a, 1, 3)?;
/// # b.add_channel(c, bb, 7, 9)?;
/// # let ctx = b.build()?;
/// # let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
/// # sim.external(Time::new(2), c, "go");
/// # let run = sim.run(&mut Ffip::new(), &mut EagerScheduler)?;
/// // Figure 1 as a one-fork zigzag, observed by B at the chain's end.
/// let sigma_c = run.external_receipt_node(c, "go").unwrap();
/// let fork = TwoLeggedFork::new(
///     GeneralNode::basic(sigma_c),
///     zigzag_bcm::NetPath::new(vec![c, bb])?, // head: to B
///     zigzag_bcm::NetPath::new(vec![c, a])?,  // tail: to A
/// )?;
/// let pattern = ZigzagPattern::single(fork);
/// let sigma_b = pattern.to_node().resolve(&run)?; // B's node receiving the chain
/// let vz = VisibleZigzag::new(pattern, sigma_b);
/// let report = vz.validate(&run)?;
/// assert_eq!(report.weight, 7 - 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisibleZigzag {
    pattern: ZigzagPattern,
    observer: NodeId,
}

impl VisibleZigzag {
    /// Pairs a pattern with its observer. Visibility itself is a
    /// run-dependent property, checked by [`VisibleZigzag::validate`].
    pub fn new(pattern: ZigzagPattern, observer: NodeId) -> Self {
        VisibleZigzag { pattern, observer }
    }

    /// The underlying zigzag pattern.
    pub fn pattern(&self) -> &ZigzagPattern {
        &self.pattern
    }

    /// The observer node `σ`.
    pub fn observer(&self) -> NodeId {
        self.observer
    }

    /// Checks σ-visibility (Definition 7) in `run` without validating the
    /// zigzag itself.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::NotRecognized`] naming the first violated
    /// condition, [`CoreError::NodeNotInRun`] if the observer or a fork
    /// head cannot be resolved.
    pub fn check_visibility(&self, run: &Run) -> Result<(), CoreError> {
        if !run.appears(self.observer) {
            return Err(CoreError::NodeNotInRun {
                detail: format!("observer {} missing from run", self.observer),
            });
        }
        let past = run.past(self.observer);
        let forks = self.pattern.forks();
        // Condition (i): heads of all but the top fork are in the past.
        for (k, fork) in forks.iter().enumerate().take(forks.len() - 1) {
            let head = fork.head().resolve(run)?;
            if !past.contains(head) {
                return Err(CoreError::NotRecognized {
                    observer: self.observer,
                    detail: format!(
                        "head of fork {} resolves to {head}, outside past(r, σ)",
                        k + 1
                    ),
                });
            }
        }
        // Condition (ii): the top fork's base node is σ-recognized.
        let top = &forks[forks.len() - 1];
        let base = top.base().base();
        if !past.contains(base) {
            return Err(CoreError::NotRecognized {
                observer: self.observer,
                detail: format!("base {base} of the top fork is outside past(r, σ)"),
            });
        }
        Ok(())
    }

    /// Validates both the zigzag (Definition 6, via
    /// [`ZigzagPattern::validate`]) and its σ-visibility (Definition 7),
    /// returning the zigzag report.
    ///
    /// A successful validation certifies, by the easy direction of
    /// Theorem 4, that `K_σ(from --wt--> to)` holds for the reported
    /// endpoints and weight.
    ///
    /// # Errors
    ///
    /// Fails if the pattern is not a zigzag in `run`, or not σ-visible.
    pub fn validate(&self, run: &Run) -> Result<ZigzagReport, CoreError> {
        self.check_visibility(run)?;
        self.pattern.validate(run)
    }
}

impl fmt::Display for VisibleZigzag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} visible at {}", self.pattern, self.observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fork::TwoLeggedFork;
    use crate::node::GeneralNode;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::{PerChannelScheduler, RandomScheduler};
    use zigzag_bcm::{Channel, NetPath, Network, ProcessId, SimConfig, Simulator, Time};

    /// Figure 2b network: A, B, C, D, E with channels C→A, C→D, E→D, E→B,
    /// and the reporting channel D→B that makes the zigzag visible to B.
    struct Fig2b {
        a: ProcessId,
        b: ProcessId,
        c: ProcessId,
        d: ProcessId,
        e: ProcessId,
        ctx: zigzag_bcm::Context,
    }

    fn fig2b() -> Fig2b {
        let mut nb = Network::builder();
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        let c = nb.add_process("C");
        let d = nb.add_process("D");
        let e = nb.add_process("E");
        nb.add_channel(c, a, 1, 3).unwrap();
        nb.add_channel(c, d, 6, 8).unwrap();
        nb.add_channel(e, d, 1, 2).unwrap();
        nb.add_channel(e, b, 4, 7).unwrap();
        nb.add_channel(d, b, 1, 5).unwrap(); // the dashed reporting chain
        Fig2b {
            a,
            b,
            c,
            d,
            e,
            ctx: nb.build().unwrap(),
        }
    }

    fn fig2b_run(f: &Fig2b, tc: u64, te: u64, seed: u64) -> zigzag_bcm::Run {
        let mut sim = Simulator::new(f.ctx.clone(), SimConfig::with_horizon(Time::new(80)));
        sim.external(Time::new(tc), f.c, "go_c");
        sim.external(Time::new(te), f.e, "go_e");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    fn fig2b_pattern(f: &Fig2b, run: &zigzag_bcm::Run) -> ZigzagPattern {
        let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
        let sigma_e = run.external_receipt_node(f.e, "go_e").unwrap();
        let lower = TwoLeggedFork::new(
            GeneralNode::basic(sigma_c),
            NetPath::new(vec![f.c, f.d]).unwrap(),
            NetPath::new(vec![f.c, f.a]).unwrap(),
        )
        .unwrap();
        let upper = TwoLeggedFork::new(
            GeneralNode::basic(sigma_e),
            NetPath::new(vec![f.e, f.b]).unwrap(),
            NetPath::new(vec![f.e, f.d]).unwrap(),
        )
        .unwrap();
        ZigzagPattern::new(vec![lower, upper]).unwrap()
    }

    /// B's node after hearing both E's direct message and D's report.
    fn observer_at_b(f: &Fig2b, run: &zigzag_bcm::Run) -> NodeId {
        let tl = run.timeline(f.b);
        let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
        let d1 = NodeId::new(f.d, 1);
        tl.iter()
            .map(|r| r.id())
            .find(|&n| {
                let past = run.past(n);
                past.contains(sigma_c) && past.contains(d1) && past.contains(NodeId::new(f.e, 1))
            })
            .expect("B eventually hears of C, D and E under FFIP")
    }

    #[test]
    fn figure_2b_visible_zigzag_validates() {
        let f = fig2b();
        for seed in 0..15 {
            let run = fig2b_run(&f, 1, 20, seed);
            let z = fig2b_pattern(&f, &run);
            let sigma = observer_at_b(&f, &run);
            let vz = VisibleZigzag::new(z, sigma);
            let report = vz.validate(&run).unwrap();
            // Eq. (1) weight plus one separation at D.
            assert_eq!(report.weight, (6 - 3) + (4 - 2) + 1);
            assert!(report.gap >= report.weight, "Theorem 1 violated");
            assert_eq!(vz.observer(), sigma);
            assert_eq!(vz.pattern().len(), 2);
            assert!(vz.to_string().contains("visible at"));
        }
    }

    #[test]
    fn invisible_when_observer_has_not_heard_the_junction() {
        let f = fig2b();
        let run = fig2b_run(&f, 1, 20, 3);
        let z = fig2b_pattern(&f, &run);
        // B's first node hears only E's direct message, not D's report —
        // the lower fork's head (C's arrival at D) is outside its past.
        let sigma_b1 = run
            .timeline(f.b)
            .iter()
            .map(|r| r.id())
            .find(|n| !n.is_initial() && !run.past(*n).contains(NodeId::new(f.d, 1)));
        let Some(sigma) = sigma_b1 else { return };
        let vz = VisibleZigzag::new(z, sigma);
        assert!(matches!(
            vz.validate(&run),
            Err(CoreError::NotRecognized { .. })
        ));
    }

    #[test]
    fn invisible_when_top_fork_base_unknown() {
        let f = fig2b();
        let run = fig2b_run(&f, 30, 1, 5);
        let z = fig2b_pattern(&f, &run);
        // Observe at a node of B that heard E (top fork base is σ_E for
        // the upper fork)... choose A's node instead: A never hears E.
        let sigma_a = NodeId::new(f.a, 1);
        if !run.appears(sigma_a) {
            return;
        }
        let vz = VisibleZigzag::new(z, sigma_a);
        assert!(vz.check_visibility(&run).is_err());
    }

    #[test]
    fn missing_observer_is_an_error() {
        let f = fig2b();
        let run = fig2b_run(&f, 1, 20, 0);
        let z = fig2b_pattern(&f, &run);
        let vz = VisibleZigzag::new(z, NodeId::new(f.b, 99));
        assert!(matches!(
            vz.validate(&run),
            Err(CoreError::NodeNotInRun { .. })
        ));
    }

    #[test]
    fn ordering_violation_still_caught_by_pattern_validation() {
        // Even a fully visible pattern fails if the junction ordering does
        // not hold in the run (D heard E before C).
        let f = fig2b();
        let mut sim = Simulator::new(f.ctx.clone(), SimConfig::with_horizon(Time::new(80)));
        sim.external(Time::new(10), f.c, "go_c");
        sim.external(Time::new(1), f.e, "go_e");
        let mut sched = PerChannelScheduler::new(0.5);
        sched.set_delay(Channel::new(f.c, f.d), 8);
        sched.set_delay(Channel::new(f.e, f.d), 1);
        let run = sim.run(&mut Ffip::new(), &mut sched).unwrap();
        let z = fig2b_pattern(&f, &run);
        let sigma = observer_at_b(&f, &run);
        let vz = VisibleZigzag::new(z, sigma);
        assert!(matches!(
            vz.validate(&run),
            Err(CoreError::MalformedPattern { .. })
        ));
    }
}
