//! Run constructions (paper Lemma 8 and Definition 24).
//!
//! The necessity halves of Theorems 2 and 4 are proved by *building*
//! alternative runs: given a valid timing function over a bounds graph,
//! there is a legal run realizing exactly those times. This module provides
//! three constructions, each returning a [`Run`] that the caller can (and
//! tests do) certify with [`zigzag_bcm::validate::validate_run`]:
//!
//! * [`run_by_timing`] — the generic Lemma 8 construction `r[T]` from a
//!   valid timing function over a p-closed node set;
//! * [`slow_run`] — the Theorem 2 witness: every node of the σ-precedence
//!   set is delayed as much as possible relative to `σ`, making
//!   longest-path bounds tight;
//! * [`fast_run`] — the `γ`-fast run `fast_γ^σ(r, θ')` of Definition 24,
//!   the Theorem 4 witness in which everything reachable from `θ'`'s base
//!   is squeezed as early as possible.
//!
//! # Finite horizons and the frontier
//!
//! The paper's runs are infinite, so its basic bounds graph `GB(r)` covers
//! every delivery. A recorded prefix instead has *in-flight* messages at
//! the horizon, whose (mandatory, within `U`) future deliveries constrain
//! how late the recorded nodes may be pushed. [`FrontierGraph`] closes
//! `GB(r)` under the horizon exactly the way `GE(r, σ)` closes `GB(r, σ)`
//! under the observer's knowledge horizon (Definition 16): one auxiliary
//! vertex per process ("the earliest beyond-the-prefix delivery point"),
//! plus the `E'`/`E''`/`E'''` edge families. Slow runs are tight with
//! respect to frontier longest paths; for node pairs well inside the
//! prefix these coincide with plain `GB(r)` longest paths.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use zigzag_bcm::builder::RunBuilder;
use zigzag_bcm::run::Past;
use zigzag_bcm::{Bounds, NodeId, ProcessId, Run, Time};

use crate::bounds_graph::{BoundsGraph, LABEL_RECV, LABEL_SEND, LABEL_SUCCESSOR};
use crate::error::CoreError;
use crate::extended_graph::{
    ExtVertex, ExtendedGraph, LABEL_AUX_CHAN, LABEL_BOUNDARY, LABEL_UNSEEN,
};
use crate::graph::{LongestPaths, WeightedDigraph};
use crate::node::GeneralNode;
use crate::timing::{fast_timing, FastTiming, NodeTiming};

/// The horizon-closed bounds graph of a full recorded run: `GB(r)` plus one
/// frontier vertex `ω_i` per process and the Definition-16 edge families
/// applied at the recording horizon instead of an observer's past.
///
/// * `E'`: `last_i --1--> ω_i` — the unrecorded region of `i`'s timeline
///   starts strictly after its last recorded node;
/// * `E''`: `ω_j --(−U_ij)--> σ_i` for every in-flight message from a
///   recorded node `σ_i` to `j` — it must be delivered within `U_ij`, at or
///   after `ω_j`;
/// * `E'''`: `ω_i --(−U_ji)--> ω_j` for every channel `(j, i)` — FFIP
///   re-floods whatever is delivered beyond the prefix.
#[derive(Debug, Clone)]
pub struct FrontierGraph {
    graph: WeightedDigraph<ExtVertex>,
}

impl FrontierGraph {
    /// Builds the frontier graph of `run`.
    pub fn of_run(run: &Run) -> Self {
        let net = run.context().network();
        let bounds = run.context().bounds();
        let mut graph: WeightedDigraph<ExtVertex> = WeightedDigraph::new();

        for rec in run.nodes() {
            graph.add_vertex(ExtVertex::Node(rec.id()));
        }
        for p in net.processes() {
            graph.add_vertex(ExtVertex::Aux(p));
            let tl = run.timeline(p);
            for k in 1..tl.len() {
                graph.add_edge(
                    ExtVertex::Node(tl[k - 1].id()),
                    ExtVertex::Node(tl[k].id()),
                    1,
                    LABEL_SUCCESSOR,
                );
            }
            let last = tl.last().expect("every process has an initial node");
            graph.add_edge(
                ExtVertex::Node(last.id()),
                ExtVertex::Aux(p),
                1,
                LABEL_BOUNDARY,
            );
        }
        for m in run.messages() {
            let cb = bounds
                .get(m.channel())
                .expect("recorded messages travel on known channels");
            match m.delivery() {
                Some(d) => {
                    graph.add_edge(
                        ExtVertex::Node(m.src()),
                        ExtVertex::Node(d.node),
                        cb.lower() as i64,
                        LABEL_SEND,
                    );
                    graph.add_edge(
                        ExtVertex::Node(d.node),
                        ExtVertex::Node(m.src()),
                        -(cb.upper() as i64),
                        LABEL_RECV,
                    );
                }
                None => {
                    graph.add_edge(
                        ExtVertex::Aux(m.channel().to),
                        ExtVertex::Node(m.src()),
                        -(cb.upper() as i64),
                        LABEL_UNSEEN,
                    );
                }
            }
        }
        for ch in net.channels() {
            graph.add_edge(
                ExtVertex::Aux(ch.to),
                ExtVertex::Aux(ch.from),
                -(bounds.get(*ch).expect("covered").upper() as i64),
                LABEL_AUX_CHAN,
            );
        }
        FrontierGraph { graph }
    }

    /// The underlying weighted digraph.
    pub fn graph(&self) -> &WeightedDigraph<ExtVertex> {
        &self.graph
    }

    /// Longest-path weights from every vertex **to** `sigma` (the tight
    /// precedence bounds of the finite-prefix model).
    ///
    /// # Errors
    ///
    /// Fails if `sigma` is not a recorded node, or on a positive cycle
    /// (impossible for graphs of legal runs).
    pub fn longest_to(&self, sigma: NodeId) -> Result<LongestPaths, CoreError> {
        self.graph.longest_to(&ExtVertex::Node(sigma))
    }

    /// The tight bound on `time(to) − time(from)` over all runs sharing
    /// this prefix structure: the longest `from → to` path weight, or
    /// `None` if no path constrains the pair.
    ///
    /// # Errors
    ///
    /// Fails if either node is not recorded, or on a positive cycle.
    pub fn tight_bound(&self, from: NodeId, to: NodeId) -> Result<Option<i64>, CoreError> {
        let lp = self.graph.longest_from(&ExtVertex::Node(from))?;
        Ok(self
            .graph
            .index_of(&ExtVertex::Node(to))
            .and_then(|i| lp.weight(i)))
    }
}

/// Everything the prescribed-run engine needs to lay a run out.
#[derive(Debug)]
struct Prescription {
    /// Highest kept node index per process (0 = only the initial node).
    boundary: Vec<u32>,
    /// `T(σ')` for every kept non-initial node.
    times: BTreeMap<NodeId, Time>,
    /// `T(ω_p)` / `T(ψ_p)`: the earliest time fresh deliveries may land on
    /// each timeline.
    frontier: Vec<Time>,
    /// Definition 24 condition 2: deliveries pinned to the upper bound,
    /// keyed by `(sending process, sending time, destination)` — the triple
    /// uniquely identifies a message in the run under construction.
    chain_upper: BTreeMap<(ProcessId, Time, ProcessId), Time>,
    /// Record the constructed run up to this time.
    horizon: Time,
}

impl Prescription {
    fn kept(&self, node: NodeId) -> bool {
        node.index() <= self.boundary[node.proc().index()]
    }
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum PendingReceipt {
    External(String),
    Message(zigzag_bcm::MessageId),
}

/// One pending delivery of the layout engine's queue: min-ordered by
/// `(time, proc, seq)`, so draining equal `(time, proc)` heads
/// reproduces exactly the batch a `(time, proc)`-keyed map would have
/// accumulated (`seq` is the insertion number).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct QueueItem {
    time: Time,
    proc: ProcessId,
    seq: u32,
    receipt: PendingReceipt,
}

/// Reusable scratch for the run-construction delivery queue.
///
/// The layout engine runs once per constructed run — and the knowledge
/// engine constructs runs in batches (`refute` sweeps, fast-run
/// batteries), historically reallocating the whole queue each time. An
/// arena threaded through the construction
/// ([`crate::knowledge::KnowledgeEngine::fast_run_of`] holds one per
/// observer) recycles the queue storage across calls; the first call
/// sizes it, later calls allocate nothing for queue bookkeeping.
#[derive(Debug, Default)]
pub struct RunArena {
    /// Recycled backing storage of the delivery-queue heap.
    heap: Vec<Reverse<QueueItem>>,
}

impl RunArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        RunArena::default()
    }
}

/// Lays out a run according to a prescription, replaying the kept prefix of
/// `source` at the prescribed times and handling fresh deliveries per the
/// Definition 24 rules. Queue storage is recycled through `arena` (see
/// [`RunArena`]). Fails with [`CoreError::InvalidTiming`] if the
/// prescription is internally inconsistent (a delivery would fall outside
/// its channel window or inside a kept prefix).
fn prescribed_run(source: &Run, p: &Prescription, arena: &mut RunArena) -> Result<Run, CoreError> {
    let mut queue: BinaryHeap<Reverse<QueueItem>> =
        BinaryHeap::from(std::mem::take(&mut arena.heap));
    queue.clear();
    let result = prescribed_run_with_queue(source, p, &mut queue);
    // Hand the heap storage back on every path — error returns (routine
    // for refutation probing) must not cost the arena its capacity.
    queue.clear();
    arena.heap = queue.into_vec();
    result
}

fn prescribed_run_with_queue(
    source: &Run,
    p: &Prescription,
    queue: &mut BinaryHeap<Reverse<QueueItem>>,
) -> Result<Run, CoreError> {
    let ctx = source.context_arc();
    // A second Arc handle keeps the network/bounds borrowable while the
    // builder owns the first — no per-call deep copy of either table.
    let shared = ctx.clone();
    let (net, bounds) = (shared.network(), shared.bounds());
    let mut rb = RunBuilder::new(ctx, p.horizon);

    let mut seq = 0u32;
    let mut push = |queue: &mut BinaryHeap<Reverse<QueueItem>>,
                    time: Time,
                    proc: ProcessId,
                    receipt: PendingReceipt| {
        queue.push(Reverse(QueueItem {
            time,
            proc,
            seq,
            receipt,
        }));
        seq += 1;
    };

    // Externals of the source run received at kept nodes, retimed.
    for e in source.externals() {
        if !p.kept(e.node()) {
            continue;
        }
        let t = *p
            .times
            .get(&e.node())
            .ok_or_else(|| CoreError::InvalidTiming {
                detail: format!("kept node {} has no prescribed time", e.node()),
            })?;
        if t > p.horizon {
            continue;
        }
        push(
            queue,
            t,
            e.proc(),
            PendingReceipt::External(e.name().to_string()),
        );
    }

    while let Some(Reverse(head)) = queue.peek() {
        let (time, proc) = (head.time, head.proc);
        let node = rb
            .add_node(proc, time)
            .map_err(|e| CoreError::InvalidTiming {
                detail: format!("prescription breaks timeline monotonicity: {e}"),
            })?;
        if p.kept(node) {
            // The kept prefix must reproduce exactly.
            let expected = p.times.get(&node).copied();
            if expected != Some(time) {
                return Err(CoreError::InvalidTiming {
                    detail: format!(
                        "kept node {node} materialized at {time}, prescribed {expected:?}"
                    ),
                });
            }
        }
        // Drain the whole (time, proc) batch in insertion order.
        while queue
            .peek()
            .is_some_and(|Reverse(it)| it.time == time && it.proc == proc)
        {
            let Reverse(item) = queue.pop().expect("peeked");
            match item.receipt {
                PendingReceipt::External(name) => {
                    rb.add_external(node, name).map_err(CoreError::Bcm)?;
                }
                PendingReceipt::Message(m) => {
                    rb.deliver(m, node).map_err(CoreError::Bcm)?;
                }
            }
        }

        // FFIP flooding with prescribed delivery times.
        for &dst in net.out_neighbors(proc) {
            let cb = bounds
                .get(zigzag_bcm::Channel::new(proc, dst))
                .expect("network channels always have bounds");
            let deliver_at = delivery_time(source, p, node, time, dst, cb.lower());
            // Internal-consistency checks (Lemma 17 / Lemma 18 guarantees).
            if deliver_at < time + cb.lower() || deliver_at > time + cb.upper() {
                return Err(CoreError::InvalidTiming {
                    detail: format!(
                        "prescribed delivery of {node} → {dst} at {deliver_at} outside \
                         [{}, {}]",
                        time + cb.lower(),
                        time + cb.upper()
                    ),
                });
            }
            let m = rb.send(node, dst, deliver_at).map_err(CoreError::Bcm)?;
            if deliver_at <= p.horizon {
                push(queue, deliver_at, dst, PendingReceipt::Message(m));
            }
        }
    }

    Ok(rb.finish())
}

/// The Definition 24 delivery rule (generalized to also serve Lemma 8):
/// condition 1 (kept-to-kept replay), then condition 2 (pinned-to-upper
/// chain deliveries), then condition 3 (as early as the frontier allows).
fn delivery_time(
    source: &Run,
    p: &Prescription,
    src: NodeId,
    sent_at: Time,
    dst: ProcessId,
    lower: u64,
) -> Time {
    if p.kept(src) {
        if let Some(m) = source.message_from_to(src, dst) {
            if let Some(d) = source.message(m).delivery() {
                if p.kept(d.node) {
                    if let Some(&t) = p.times.get(&d.node) {
                        return t;
                    }
                }
            }
        }
    }
    if let Some(&t) = p.chain_upper.get(&(src.proc(), sent_at, dst)) {
        return t;
    }
    (sent_at + lower).max(p.frontier[dst.index()])
}

/// Derives per-process boundary indices from an explicit kept-node timing,
/// checking that the kept set is a per-timeline prefix.
fn boundaries_of(run: &Run, timing: &NodeTiming) -> Result<Vec<u32>, CoreError> {
    let n = run.context().network().len();
    let mut boundary = vec![0u32; n];
    for node in timing.keys() {
        if !run.appears(*node) {
            return Err(CoreError::NodeNotInRun {
                detail: format!("timed node {node} does not appear in the source run"),
            });
        }
        let b = &mut boundary[node.proc().index()];
        *b = (*b).max(node.index());
    }
    for (pi, &b) in boundary.iter().enumerate() {
        for k in 1..=b {
            let node = NodeId::new(ProcessId::new(pi as u32), k);
            if !timing.contains_key(&node) {
                return Err(CoreError::InvalidTiming {
                    detail: format!(
                        "kept set is not a per-timeline prefix: {node} missing \
                         below kept index {b}"
                    ),
                });
            }
        }
    }
    Ok(boundary)
}

/// Minimal feasible frontier times for an explicit timing: `ω_p` is at
/// least one past the kept boundary, closed under the `E'''` channel
/// constraints `ω_i <= ω_j + U_ji`, and must not violate any in-flight
/// upper bound `ω_j <= T(σ_i) + U_ij` (Lemma 8's legality condition at the
/// horizon).
fn frontier_for_timing(
    run: &Run,
    timing: &NodeTiming,
    boundary: &[u32],
) -> Result<Vec<Time>, CoreError> {
    let net = run.context().network();
    let bounds = run.context().bounds();
    let n = net.len();
    let mut omega: Vec<i64> = (0..n)
        .map(|pi| {
            let b = boundary[pi];
            if b == 0 {
                1
            } else {
                timing
                    .get(&NodeId::new(ProcessId::new(pi as u32), b))
                    .map(|t| t.ticks() as i64 + 1)
                    .unwrap_or(1)
            }
        })
        .collect();
    // Longest-path (lower-bound) propagation over ω_b >= ω_a − U_ba.
    for _ in 0..=n {
        let mut changed = false;
        for ch in net.channels() {
            let u = bounds.get(*ch).expect("covered").upper() as i64;
            // Constraint ω_{ch.to} <= ω_{ch.from} + U, i.e.
            // ω_{ch.from} >= ω_{ch.to} − U.
            let need = omega[ch.to.index()] - u;
            if omega[ch.from.index()] < need {
                omega[ch.from.index()] = need;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // In-flight upper bounds: messages from kept nodes whose delivery is
    // not kept must be deliverable at or after ω of their destination.
    for m in run.messages() {
        let src = m.src();
        if src.index() > boundary[src.proc().index()] {
            continue;
        }
        let kept_delivery = m
            .delivery()
            .map(|d| d.node.index() <= boundary[d.node.proc().index()])
            .unwrap_or(false);
        if kept_delivery {
            continue;
        }
        let t_src = timing
            .get(&src)
            .copied()
            .map(|t| t.ticks() as i64)
            .unwrap_or(0);
        let u = bounds.get(m.channel()).expect("covered").upper() as i64;
        if omega[m.channel().to.index()] > t_src + u {
            return Err(CoreError::InvalidTiming {
                detail: format!(
                    "timing infeasible at the frontier: message {} from {src} must be \
                     delivered by {} but {}'s unrecorded region starts at {}",
                    m.id(),
                    t_src + u,
                    m.channel().to,
                    omega[m.channel().to.index()]
                ),
            });
        }
    }
    Ok(omega
        .into_iter()
        .map(|t| Time::new(t.max(0) as u64))
        .collect())
}

/// Constructs the run `r[T]` of Lemma 8 from a valid timing function over a
/// p-closed, per-timeline-prefix set of nodes of `run`.
///
/// The constructed run contains exactly the timed nodes (at their
/// prescribed times, with the same receipts and node identities as in
/// `run`), the initial nodes, and whatever fresh over-the-frontier nodes
/// mandatory deliveries force into the recorded window.
///
/// # Errors
///
/// * [`CoreError::InvalidTiming`] if `timing` violates a `GB(r)` edge
///   constraint (Definition 10), the kept set is not a per-timeline prefix,
///   is not p-closed, or an in-flight message cannot be legally delayed
///   past the kept region;
/// * [`CoreError::NodeNotInRun`] if a timed node is not recorded.
pub fn run_by_timing(run: &Run, timing: &NodeTiming) -> Result<Run, CoreError> {
    let gb = BoundsGraph::of_run(run);
    crate::timing::check_valid_timing(&gb, timing)?;
    let boundary = boundaries_of(run, timing)?;
    // p-closedness: every receipt of a kept node comes from a kept node,
    // and every delivered message from a kept node lands on a kept node.
    for m in run.messages() {
        let Some(d) = m.delivery() else { continue };
        let src_kept = m.src().index() <= boundary[m.src().proc().index()];
        let dst_kept = d.node.index() <= boundary[d.node.proc().index()];
        if src_kept != dst_kept {
            return Err(CoreError::InvalidTiming {
                detail: format!(
                    "kept set is not p-closed: message {} crosses the kept boundary",
                    m.id()
                ),
            });
        }
    }
    let frontier = frontier_for_timing(run, timing, &boundary)?;
    let horizon = timing.values().copied().max().unwrap_or(Time::ZERO);
    let p = Prescription {
        boundary,
        times: timing.clone(),
        frontier,
        chain_upper: BTreeMap::new(),
        horizon,
    };
    prescribed_run(run, &p, &mut RunArena::new())
}

/// The slow run of a node (Theorem 2's tightness witness).
#[derive(Debug)]
pub struct SlowRun {
    /// The constructed run, with every node of the σ-precedence set delayed
    /// as much as the bounds allow relative to `σ`.
    pub run: Run,
    /// The anchor node `σ`.
    pub sigma: NodeId,
    /// The realized timing of every kept node.
    pub timing: NodeTiming,
    /// `d(σ')`: the frontier-graph longest-path weight from each kept node
    /// to `σ`. In the slow run, `time(σ) − time(σ') = d(σ')` exactly.
    pub d: BTreeMap<NodeId, i64>,
}

/// Constructs the slow run of `sigma` (Definition 13 + Lemma 8): a legal
/// run with the same structure as `run` over the σ-precedence set, in which
/// `time(σ) − time(σ')` equals the longest-path weight `d(σ')` for *every*
/// node `σ'` with a (frontier-graph) path to `σ`. Nodes without such a path
/// do not appear.
///
/// This realizes the proof of Theorem 2: the longest-path bound is tight,
/// so any supported precedence `σ' --x--> σ` forces `d(σ') >= x`, and by
/// Lemma 5 a zigzag of that weight exists (see
/// [`crate::extract::zigzag_from_gb_path`]).
///
/// # Errors
///
/// Fails if `sigma` does not appear in `run`, or on internal inconsistency
/// (reported as [`CoreError::InvalidTiming`] — indicates a model bug).
pub fn slow_run(run: &Run, sigma: NodeId) -> Result<SlowRun, CoreError> {
    if !run.appears(sigma) {
        return Err(CoreError::NodeNotInRun {
            detail: format!("{sigma} does not appear in the run"),
        });
    }
    let fg = FrontierGraph::of_run(run);
    let lp = fg.longest_to(sigma)?;
    let g = fg.graph();
    let n = run.context().network().len();
    let d_max = lp.max_weight().unwrap_or(0);

    let mut times = NodeTiming::new();
    let mut d = BTreeMap::new();
    let mut boundary = vec![0u32; n];
    let mut frontier: Vec<Option<Time>> = vec![None; n];
    let mut assigned_max = Time::ZERO;
    for vi in lp.connected() {
        let w = lp.weight(vi).expect("connected");
        let t = Time::new((d_max - w) as u64);
        assigned_max = assigned_max.max(t);
        match *g.vertex(vi) {
            ExtVertex::Node(node) => {
                d.insert(node, w);
                if !node.is_initial() {
                    times.insert(node, t);
                    let b = &mut boundary[node.proc().index()];
                    *b = (*b).max(node.index());
                } else {
                    // Initial nodes stay at time 0 (paper: V^{r,0}); their
                    // only outgoing constraint is the +1 successor edge,
                    // which time 0 always satisfies.
                    d.insert(node, w);
                }
            }
            ExtVertex::Aux(p) => frontier[p.index()] = Some(t),
        }
    }
    // Frontier vertices with no path to σ are unconstrained from below by
    // anything that appears; park them after everything assigned. (They can
    // never be the target of a fresh delivery: cascades only reach
    // connected frontiers — see DESIGN.md.)
    let park = assigned_max + 1;
    let frontier: Vec<Time> = frontier.into_iter().map(|t| t.unwrap_or(park)).collect();

    // The kept set must be a per-timeline prefix (successor edges guarantee
    // it); double-check cheaply.
    for (pi, &b) in boundary.iter().enumerate() {
        for k in 1..=b {
            let node = NodeId::new(ProcessId::new(pi as u32), k);
            if !times.contains_key(&node) {
                return Err(CoreError::InvalidTiming {
                    detail: format!("σ-precedence set is not prefix-closed at {node}"),
                });
            }
        }
    }

    let horizon = times.values().copied().max().unwrap_or(Time::ZERO);
    let p = Prescription {
        boundary,
        times: times.clone(),
        frontier,
        chain_upper: BTreeMap::new(),
        horizon,
    };
    let constructed = prescribed_run(run, &p, &mut RunArena::new())?;
    Ok(SlowRun {
        run: constructed,
        sigma,
        timing: times,
        d,
    })
}

/// Rewrites `θ = ⟨σ', p⟩` into the equivalent node whose chain never
/// re-enters `past`: hops whose deliveries the observer has seen are
/// folded into the base. In every run indistinguishable at the observer
/// the two forms resolve to the same basic node.
pub(crate) fn canonicalize_in_past(
    run: &Run,
    past: &Past,
    observer: NodeId,
    theta: &GeneralNode,
) -> Result<GeneralNode, CoreError> {
    if !past.contains(theta.base()) {
        return Err(CoreError::NotRecognized {
            observer,
            detail: format!("base {} of {theta} is outside past(r, σ)", theta.base()),
        });
    }
    let procs = theta.path().procs();
    let mut cur = theta.base();
    let mut k = 0usize;
    while k + 1 < procs.len() {
        if cur.is_initial() {
            return Err(CoreError::InitialNode {
                detail: format!("{theta}: chain leaves initial node {cur}, which never sends"),
            });
        }
        let dst = procs[k + 1];
        let m = run
            .message_from_to(cur, dst)
            .ok_or_else(|| CoreError::NodeNotInRun {
                detail: format!("{theta}: no channel {} → {dst}", cur.proc()),
            })?;
        match run.message(m).delivery() {
            Some(d) if past.contains(d.node) => {
                cur = d.node;
                k += 1;
            }
            _ => break,
        }
    }
    if k + 1 == procs.len() && cur.is_initial() {
        return Err(CoreError::InitialNode {
            detail: format!("{theta} denotes an initial node (time 0)"),
        });
    }
    GeneralNode::new(
        cur,
        zigzag_bcm::NetPath::new(procs[k..].to_vec()).map_err(CoreError::Bcm)?,
    )
}

/// The γ-fast run of a σ-recognized node (Definition 24).
#[derive(Debug)]
pub struct FastRun {
    /// The constructed run `fast_γ^σ(r, θ')`.
    pub run: Run,
    /// The observer `σ` whose past is preserved (`run ~σ r`).
    pub sigma: NodeId,
    /// The γ parameter.
    pub gamma: u64,
    /// The fast timing the run realizes on `past(r, σ)`.
    pub timing: FastTiming,
    /// `time(θ')` in the constructed run (the anchor's chain runs at upper
    /// bounds, Definition 24 condition 2).
    pub theta_time: Time,
}

/// Walks `theta`'s message chain, recording the Definition 24 condition-2
/// prescriptions (chain deliveries pinned to channel upper bounds once the
/// chain leaves the observer's past) and the resulting arrival time.
/// Condition-2 delivery pins keyed by `(sender, send time, destination)`.
type ChainPins = BTreeMap<(ProcessId, Time, ProcessId), Time>;

fn chain_prescriptions(
    run: &Run,
    past: &Past,
    ft: &FastTiming,
    theta: &GeneralNode,
    bounds: &Bounds,
) -> Result<(ChainPins, Time), CoreError> {
    let sigma_prime = theta.base();
    let mut t = ft
        .node_time(sigma_prime)
        .ok_or_else(|| CoreError::NotRecognized {
            observer: past.of(),
            detail: format!("{sigma_prime} is not in past(r, σ)"),
        })?;
    let mut map = BTreeMap::new();
    let mut inside: Option<NodeId> = Some(sigma_prime);
    for hop in theta.path().hops() {
        let u = bounds
            .get(hop)
            .ok_or(CoreError::Bcm(zigzag_bcm::BcmError::MissingChannel {
                from: hop.from,
                to: hop.to,
            }))?;
        let mut stayed = false;
        if let Some(node) = inside {
            let m = run
                .message_from_to(node, hop.to)
                .ok_or_else(|| CoreError::NodeNotInRun {
                    detail: format!(
                        "no message from {node} to {} (initial node or missing channel)",
                        hop.to
                    ),
                })?;
            if let Some(d) = run.message(m).delivery() {
                if past.contains(d.node) {
                    inside = Some(d.node);
                    t = ft.node_time(d.node).expect("past nodes are timed");
                    stayed = true;
                }
            }
        }
        if !stayed {
            let next = t + u.upper();
            map.insert((hop.from, t, hop.to), next);
            t = next;
            inside = None;
        }
    }
    Ok((map, t))
}

/// Constructs the γ-fast run `fast_γ^σ(r, θ')` of Definition 24.
///
/// The result is indistinguishable from `run` at `sigma` (its past is
/// reproduced exactly, at the fast-timing times), `theta`'s chain is pushed
/// as *late* as the bounds allow (upper-bound deliveries), and every other
/// beyond-the-past delivery lands as *early* as possible. With `gamma > 0`,
/// nodes of the past unreachable from `theta`'s base are additionally
/// pushed `gamma` ticks earlier still — this is how Theorem 4 refutes
/// knowledge claims about unreachable nodes.
///
/// `extra_horizon` extends the recording window past the last prescribed
/// time (callers resolving another node `θ2` in the result should allow at
/// least `U(p2)`).
///
/// # Errors
///
/// Fails if `sigma` does not appear, `theta`'s base is not σ-recognized or
/// `theta`'s chain cannot exist (initial base), or on internal
/// inconsistency ([`CoreError::InvalidTiming`] — a model bug).
pub fn fast_run(
    run: &Run,
    sigma: NodeId,
    theta: &GeneralNode,
    gamma: u64,
    extra_horizon: u64,
) -> Result<FastRun, CoreError> {
    if !run.appears(sigma) {
        return Err(CoreError::NodeNotInRun {
            detail: format!("observer {sigma} does not appear in the run"),
        });
    }
    let ge = ExtendedGraph::new(run, sigma);
    fast_run_with(run, &ge, theta, gamma, extra_horizon)
}

/// [`fast_run`] against an already-built `GE(r, σ)` — the shared-analysis
/// path. [`crate::knowledge::KnowledgeEngine::fast_run_of`] and
/// [`crate::knowledge::KnowledgeEngine::refute`] call through here (with
/// their memoized canonicalization and fast timings), so constructing the
/// extremal run no longer re-materializes the extended graph per call.
///
/// # Errors
///
/// Same conditions as [`fast_run`].
pub fn fast_run_with(
    run: &Run,
    ge: &ExtendedGraph,
    theta: &GeneralNode,
    gamma: u64,
    extra_horizon: u64,
) -> Result<FastRun, CoreError> {
    // Anchor the fast timing at the *canonical* base: the deepest point of
    // θ's chain the observer has seen. (With a non-canonical anchor,
    // condition-1 deliveries along the chain prefix would override the
    // condition-2 upper-bound pinning and the run would not realize the
    // Theorem 4 extremal gap.)
    let canonical = canonicalize_in_past(run, ge.past(), ge.observer(), theta)?;
    let ft = fast_timing(ge, canonical.base(), gamma)?;
    fast_run_from_timing(run, ge, &canonical, ft, extra_horizon, &mut RunArena::new())
}

/// Assembles the γ-fast run from pre-resolved parts: the canonical anchor
/// and its (possibly cached) fast timing. `canonical` must be the
/// [`canonicalize_in_past`] rewriting of the anchor and `ft` the fast
/// timing of its base over `ge` — the knowledge engine supplies both from
/// its per-query caches, along with its per-observer [`RunArena`] so
/// repeated constructions recycle the delivery-queue storage. Takes `ft`
/// by value so the free-function path moves its freshly built timing into
/// the result instead of cloning.
pub(crate) fn fast_run_from_timing(
    run: &Run,
    ge: &ExtendedGraph,
    canonical: &GeneralNode,
    ft: FastTiming,
    extra_horizon: u64,
    arena: &mut RunArena,
) -> Result<FastRun, CoreError> {
    let sigma = ge.observer();
    let gamma = ft.gamma;
    let past = ge.past();
    let bounds = run.context().bounds();
    let (chain_upper, theta_time) = chain_prescriptions(run, past, &ft, canonical, bounds)?;

    let n = run.context().network().len();
    let mut boundary = vec![0u32; n];
    let mut times = NodeTiming::new();
    for node in past.iter() {
        if node.is_initial() {
            continue;
        }
        let t = ft.node_time(node).expect("past nodes are timed");
        times.insert(node, t);
        let b = &mut boundary[node.proc().index()];
        *b = (*b).max(node.index());
    }
    let frontier: Vec<Time> = run
        .context()
        .network()
        .processes()
        .map(|p| ft.aux_time(p).expect("every process has an auxiliary node"))
        .collect();

    let horizon = ft.max_time().max(theta_time) + extra_horizon;
    let p = Prescription {
        boundary,
        times,
        frontier,
        chain_upper,
        horizon,
    };
    let constructed = prescribed_run(run, &p, arena)?;
    Ok(FastRun {
        run: constructed,
        sigma,
        gamma,
        timing: ft,
        theta_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing::check_valid_timing;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::RandomScheduler;
    use zigzag_bcm::validate::{validate_run, Strictness};
    use zigzag_bcm::{Network, SimConfig, Simulator};

    fn tri_run(seed: u64, horizon: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(horizon)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn frontier_graph_extends_gb() {
        let run = tri_run(0, 40);
        let fg = FrontierGraph::of_run(&run);
        let gb = BoundsGraph::of_run(&run);
        // Frontier graph has one extra vertex per process.
        assert_eq!(
            fg.graph().vertex_count(),
            gb.node_count() + run.context().network().len()
        );
        // Every GB tight bound is at most the frontier tight bound.
        let i1 = NodeId::new(ProcessId::new(0), 1);
        let j1 = NodeId::new(ProcessId::new(1), 1);
        let gb_w = gb.longest_path(i1, j1).unwrap().map(|(w, _)| w);
        let fg_w = fg.tight_bound(i1, j1).unwrap();
        match (gb_w, fg_w) {
            (Some(g), Some(f)) => assert!(f >= g),
            (Some(_), None) => panic!("frontier graph lost a GB path"),
            _ => {}
        }
    }

    #[test]
    fn slow_run_is_legal_and_tight() {
        for seed in 0..8 {
            let run = tri_run(seed, 40);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let sr = slow_run(&run, sigma).unwrap();
            validate_run(&sr.run, Strictness::Strict).unwrap();
            let t_sigma = sr.run.time(sigma).expect("σ appears in its slow run");
            // Tightness: time(σ) − time(σ') == d(σ') for every kept node.
            for (&node, &t) in &sr.timing {
                assert_eq!(sr.run.time(node), Some(t), "seed {seed}: {node} mis-timed");
                let gap = t_sigma.diff(t);
                assert_eq!(
                    gap, sr.d[&node],
                    "seed {seed}: slow run not tight at {node}"
                );
            }
            // The slow timing is valid for the *constructed* run's GB too.
            let gb2 = BoundsGraph::of_run(&sr.run);
            check_valid_timing(&gb2, &sr.timing).unwrap();
        }
    }

    #[test]
    fn slow_run_preserves_kept_structure() {
        let run = tri_run(3, 40);
        let sigma = NodeId::new(ProcessId::new(2), 1);
        if !run.appears(sigma) {
            return;
        }
        let sr = slow_run(&run, sigma).unwrap();
        // Kept nodes have the same receipts (same shape) as in the source.
        for &node in sr.timing.keys() {
            let src_receipts = run.node(node).unwrap().receipts().len();
            let dst_receipts = sr.run.node(node).unwrap().receipts().len();
            assert_eq!(src_receipts, dst_receipts, "receipt mismatch at {node}");
        }
    }

    #[test]
    fn run_by_timing_replays_actual_times() {
        // The run's own times over the full node set are a valid timing;
        // run_by_timing must reproduce a legal run with those times.
        let run = tri_run(1, 30);
        let timing: NodeTiming = run
            .nodes()
            .filter(|r| !r.id().is_initial())
            .map(|r| (r.id(), r.time()))
            .collect();
        let r2 = run_by_timing(&run, &timing).unwrap();
        validate_run(&r2, Strictness::Strict).unwrap();
        for (&node, &t) in &timing {
            assert_eq!(r2.time(node), Some(t));
        }
    }

    #[test]
    fn run_by_timing_rejects_invalid_timings() {
        let run = tri_run(1, 30);
        let mut timing: NodeTiming = run
            .nodes()
            .filter(|r| !r.id().is_initial())
            .map(|r| (r.id(), r.time()))
            .collect();
        // Violate a lower bound: receiver at the sender's time.
        let m = run
            .messages()
            .iter()
            .find(|m| m.is_delivered())
            .expect("some delivery");
        timing.insert(m.delivery().unwrap().node, m.sent_at());
        assert!(matches!(
            run_by_timing(&run, &timing),
            Err(CoreError::InvalidTiming { .. })
        ));
    }

    #[test]
    fn run_by_timing_rejects_non_prefix_sets() {
        let run = tri_run(2, 30);
        let j2 = NodeId::new(ProcessId::new(1), 2);
        if !run.appears(j2) {
            return;
        }
        let mut timing = NodeTiming::new();
        timing.insert(j2, run.time(j2).unwrap()); // j1 missing below it
        assert!(matches!(
            run_by_timing(&run, &timing),
            Err(CoreError::InvalidTiming { .. })
        ));
    }

    #[test]
    fn fast_run_is_legal_and_indistinguishable_at_sigma() {
        for seed in 0..8 {
            let run = tri_run(seed, 50);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let past = run.past(sigma);
            let anchor = past
                .iter()
                .find(|n| !n.is_initial() && *n != sigma)
                .unwrap_or(sigma);
            let theta = GeneralNode::basic(anchor);
            let fr = fast_run(&run, sigma, &theta, 0, 20).unwrap();
            validate_run(&fr.run, Strictness::Strict).unwrap();
            // σ's past is reproduced node-for-node: same receipts shape.
            for node in past.iter() {
                let a = run.node(node).unwrap();
                let b = fr.run.node(node).expect("past node missing in fast run");
                assert_eq!(a.receipts().len(), b.receipts().len());
                if !node.is_initial() {
                    assert_eq!(
                        fr.run.time(node),
                        fr.timing.node_time(node),
                        "seed {seed}: fast run mis-times {node}"
                    );
                }
            }
            assert_eq!(fr.theta_time, fr.run.time(anchor).unwrap());
            assert_eq!(fr.sigma, sigma);
            assert_eq!(fr.gamma, 0);
        }
    }

    #[test]
    fn fast_run_chain_runs_at_upper_bounds() {
        let run = tri_run(4, 60);
        let sigma = NodeId::new(ProcessId::new(1), 3);
        if !run.appears(sigma) {
            return;
        }
        let i = ProcessId::new(0);
        let k = ProcessId::new(2);
        let sigma_i = run.external_receipt_node(i, "kick").unwrap();
        if !run.past(sigma).contains(sigma_i) {
            return;
        }
        // θ = ⟨σ_i, [i, k]⟩: if the chain leaves the past, its delivery is
        // pinned to the upper bound U_ik = 7.
        let theta = GeneralNode::chain(sigma_i, &[k]).unwrap();
        let fr = fast_run(&run, sigma, &theta, 0, 30).unwrap();
        validate_run(&fr.run, Strictness::Strict).unwrap();
        let resolved_t = theta.time_in(&fr.run).unwrap();
        assert_eq!(resolved_t, fr.theta_time);
    }

    #[test]
    fn fast_run_gamma_pushes_unreachable_nodes_early() {
        // With γ > 0 every unreachable past node sits more than γ before
        // every reachable one — verified on the constructed run itself.
        for seed in 0..6 {
            let run = tri_run(seed, 50);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let anchor = sigma; // reachable from itself
            let theta = GeneralNode::basic(anchor);
            let fr = fast_run(&run, sigma, &theta, 9, 10).unwrap();
            validate_run(&fr.run, Strictness::Strict).unwrap();
            let past = run.past(sigma);
            for a in past.iter().filter(|n| !n.is_initial()) {
                for b in past.iter().filter(|n| !n.is_initial()) {
                    let (ra, rb) = (
                        fr.timing.is_reachable(ExtVertex::Node(a)),
                        fr.timing.is_reachable(ExtVertex::Node(b)),
                    );
                    if !ra && rb {
                        let (ta, tb) = (
                            fr.run.time(a).unwrap().ticks(),
                            fr.run.time(b).unwrap().ticks(),
                        );
                        assert!(ta + 9 < tb, "seed {seed}: γ separation violated");
                    }
                }
            }
        }
    }

    #[test]
    fn constructions_reject_missing_nodes() {
        let run = tri_run(0, 30);
        let ghost = NodeId::new(ProcessId::new(0), 99);
        assert!(slow_run(&run, ghost).is_err());
        assert!(fast_run(&run, ghost, &GeneralNode::basic(ghost), 0, 5).is_err());
        let sigma = NodeId::new(ProcessId::new(1), 1);
        if run.appears(sigma) {
            assert!(matches!(
                fast_run(&run, sigma, &GeneralNode::basic(ghost), 0, 5),
                Err(CoreError::NotRecognized { .. })
            ));
        }
    }
}
