//! The extended local bounds graph `GE(r, σ)` (paper Definition 16,
//! Figure 8).
//!
//! `GB(r, σ)` — the part of the bounds graph σ can see — misses timing
//! information that σ *does* have: a message sent inside `past(r, σ)` whose
//! delivery σ has not seen must be delivered **after** σ's boundary on the
//! receiving timeline, and within its upper bound. `GE(r, σ)` captures this
//! by adding one *auxiliary node* `ψ_i` per process — "the earliest
//! beyond-the-horizon delivery point on `i`'s timeline" — and three edge
//! families:
//!
//! * `E'`: `boundary_i --1--> ψ_i` (the unseen region starts strictly after
//!   the boundary);
//! * `E''`: `ψ_j --(−U_ij)--> σ_i` for every message sent at a past node
//!   `σ_i` to `j` and not received within the past;
//! * `E'''`: `ψ_i --(−U_ji)--> ψ_j` for every channel `(j, i)` — under
//!   FFIP, whatever is delivered beyond the horizon is immediately
//!   re-flooded.

use std::fmt;
use std::sync::Arc;

use zigzag_bcm::run::Past;
use zigzag_bcm::{NodeId, ProcessId, Run};

use crate::bounds_graph::{LABEL_RECV, LABEL_SEND, LABEL_SUCCESSOR};
use crate::error::CoreError;
use crate::graph::{LongestPaths, WeightedDigraph};

/// Edge label: `E'` boundary-to-auxiliary edge (weight 1).
pub const LABEL_BOUNDARY: u32 = 3;
/// Edge label: `E''` auxiliary-to-sender edge for an unseen delivery
/// (weight `−U_ij`).
pub const LABEL_UNSEEN: u32 = 4;
/// Edge label: `E'''` auxiliary-to-auxiliary channel edge (weight `−U_ji`).
pub const LABEL_AUX_CHAN: u32 = 5;

/// A vertex of `GE(r, σ)`: an original past node or an auxiliary node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExtVertex {
    /// An original basic node from `past(r, σ)`.
    Node(NodeId),
    /// The auxiliary node `ψ_i` of process `i`.
    Aux(ProcessId),
}

impl ExtVertex {
    /// The original node, if any.
    pub fn node(self) -> Option<NodeId> {
        match self {
            ExtVertex::Node(n) => Some(n),
            ExtVertex::Aux(_) => None,
        }
    }

    /// The auxiliary node's process, if any.
    pub fn aux(self) -> Option<ProcessId> {
        match self {
            ExtVertex::Aux(p) => Some(p),
            ExtVertex::Node(_) => None,
        }
    }

    /// The process whose timeline the vertex constrains.
    pub fn proc(self) -> ProcessId {
        match self {
            ExtVertex::Node(n) => n.proc(),
            ExtVertex::Aux(p) => p,
        }
    }
}

impl fmt::Display for ExtVertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtVertex::Node(n) => write!(f, "{n}"),
            ExtVertex::Aux(p) => write!(f, "ψ({p})"),
        }
    }
}

/// One recorded message, pre-resolved against the channel bounds: the
/// run-level half of `GE` construction that is identical for every
/// observer. Built once per run by [`MessageIndex::of_run`] and shared by
/// [`ExtendedGraph::with_index`] across all σ.
#[derive(Debug, Clone, Copy)]
pub struct MessageEdge {
    /// The sending node.
    pub src: NodeId,
    /// The delivery node, if the message was delivered within the horizon.
    pub dst: Option<NodeId>,
    /// The receiving process.
    pub to: ProcessId,
    /// Channel lower bound `L`, as an edge weight.
    pub lower: i64,
    /// Channel upper bound `U` (negated on reverse edges).
    pub upper: i64,
}

/// The per-run message table shared by every `GE(r, σ)` derivation: one
/// pass over `run.messages()` resolving delivery nodes and channel bounds,
/// instead of one pass (plus a bounds lookup per message) per observer.
#[derive(Debug, Clone, Default)]
pub struct MessageIndex {
    edges: Vec<MessageEdge>,
    /// Dense `(L, U)` per directed channel (`from * procs + to`), built
    /// on first use so the per-message append resolves bounds with a
    /// flat probe instead of an ordered-map lookup.
    channel_bounds: Vec<Option<(u64, u64)>>,
    procs: usize,
}

impl MessageIndex {
    /// Resolves every recorded message of `run` once.
    pub fn of_run(run: &Run) -> Self {
        let mut index = MessageIndex::default();
        index.append_from(run);
        index
    }

    /// Delta-resolves the messages `run` recorded since this index was
    /// last brought up to date — the append-only path of
    /// [`crate::incremental::IncrementalEngine`]: each event appends only
    /// its own sends (O(new), nothing already indexed is touched).
    ///
    /// A message indexed while in flight must be [`MessageIndex::settle`]d
    /// when its delivery is recorded; an index grown that way alongside a
    /// prefix is identical to `of_run(prefix)`.
    pub fn append_from(&mut self, run: &Run) {
        let n = run.context().network().len();
        if self.channel_bounds.len() != n * n {
            self.channel_bounds = run.context().bounds().dense_table(n);
            self.procs = n;
        }
        for m in &run.messages()[self.edges.len()..] {
            let c = m.channel();
            let (lower, upper) = self.channel_bounds[c.from.index() * self.procs + c.to.index()]
                .expect("validated runs have bounds for every channel");
            self.edges.push(MessageEdge {
                src: m.src(),
                dst: m.delivery().map(|d| d.node),
                to: c.to,
                lower: lower as i64,
                upper: upper as i64,
            });
        }
    }

    /// Records that indexed message `m` has been delivered: an O(1) field
    /// update, called by the incremental layer as delivery receipts
    /// arrive.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not indexed yet.
    pub fn settle(&mut self, m: zigzag_bcm::MessageId, dst: NodeId) {
        self.edges[m.index()].dst = Some(dst);
    }

    /// Number of resolved messages.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// The resolved messages, in recording order.
    pub fn edges(&self) -> &[MessageEdge] {
        &self.edges
    }
}

/// The extended local bounds graph `GE(r, σ)`.
#[derive(Debug, Clone)]
pub struct ExtendedGraph {
    observer: NodeId,
    past: Past,
    graph: WeightedDigraph<ExtVertex>,
}

impl ExtendedGraph {
    /// Builds `GE(r, σ)` for the observer node `sigma`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` does not appear in `run`.
    pub fn new(run: &Run, sigma: NodeId) -> Self {
        Self::with_index(run, sigma, &MessageIndex::of_run(run))
    }

    /// Builds `GE(r, σ)` reusing a per-run [`MessageIndex`], so deriving
    /// engines for many observers of the same run shares the message
    /// resolution work (see [`crate::analyzer::RunAnalyzer`]).
    ///
    /// # Panics
    ///
    /// Panics if `sigma` does not appear in `run`.
    pub fn with_index(run: &Run, sigma: NodeId, messages: &MessageIndex) -> Self {
        Self::with_index_excluding(run, sigma, messages, None)
    }

    /// [`ExtendedGraph::with_index`], optionally skipping every message
    /// sent at `exclude_src`. Passing `Some(σ)` builds the graph a
    /// strategy probed mid-simulation sees — the node exists but its own
    /// FFIP sends are not yet recorded, so their unseen-delivery `E''`
    /// edges are absent (the `ExcludeOwnSends` probe semantics of
    /// `zigzag_coord::stream`).
    ///
    /// Like the full graph, the excluded form is **append-stable**: the
    /// skipped messages are exactly those recorded by σ's own event, a
    /// set fixed at σ's creation, and by causality none of them can ever
    /// be delivered inside `past(r, σ)` — so the graph built here on any
    /// prefix containing σ equals the graph built on any extension.
    /// Serving layers may therefore build it once per `(run, σ)` and keep
    /// it warm (see `zigzag_core::incremental`'s exclude-mode cache)
    /// instead of paying this construction per decision.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` does not appear in `run`.
    pub fn with_index_excluding(
        run: &Run,
        sigma: NodeId,
        messages: &MessageIndex,
        exclude_src: Option<NodeId>,
    ) -> Self {
        let past = run.past(sigma);
        let net = run.context().network();
        let bounds = run.context().bounds();
        let mut graph: WeightedDigraph<ExtVertex> = WeightedDigraph::new();

        // Original vertices + auxiliary vertices for every process. Aux
        // indices are kept densely so every later aux reference is a flat
        // probe instead of an interning lookup.
        for n in past.iter() {
            graph.add_vertex(ExtVertex::Node(n));
        }
        let mut aux_idx = vec![0usize; net.len()];
        for p in net.processes() {
            aux_idx[p.index()] = graph.add_vertex(ExtVertex::Aux(p));
        }

        // Induced GB(r, σ) edges: successors within the past (the interned
        // index rolls down each timeline, one lookup per node)...
        for p in net.processes() {
            let Some(boundary) = past.boundary(p) else {
                continue;
            };
            let mut prev = graph.add_vertex(ExtVertex::Node(NodeId::new(p, 0)));
            for k in 1..=boundary.index() {
                let cur = graph.add_vertex(ExtVertex::Node(NodeId::new(p, k)));
                graph.add_edge_indexed(prev, cur, 1, LABEL_SUCCESSOR);
                prev = cur;
            }
            // ...and the E' edge from the boundary to ψ_p.
            graph.add_edge_indexed(prev, aux_idx[p.index()], 1, LABEL_BOUNDARY);
        }

        // Message edges: within-past pairs get GB edges; sends whose
        // delivery σ has not seen get E'' edges. One endpoint lookup
        // covers each ± pair.
        for m in messages.edges() {
            if !past.contains(m.src) || Some(m.src) == exclude_src {
                continue;
            }
            let seen_delivery = m.dst.map(|d| past.contains(d)).unwrap_or(false);
            let si = graph.add_vertex(ExtVertex::Node(m.src));
            if seen_delivery {
                let d = m.dst.expect("checked");
                let di = graph.add_vertex(ExtVertex::Node(d));
                graph.add_edge_indexed(si, di, m.lower, LABEL_SEND);
                graph.add_edge_indexed(di, si, -m.upper, LABEL_RECV);
            } else {
                graph.add_edge_indexed(aux_idx[m.to.index()], si, -m.upper, LABEL_UNSEEN);
            }
        }

        // E''' edges between auxiliary nodes: (ψ_i, ψ_j) for (j, i) ∈ Chans.
        for ch in net.channels() {
            graph.add_edge_indexed(
                aux_idx[ch.to.index()],
                aux_idx[ch.from.index()],
                -(bounds.get(*ch).expect("covered").upper() as i64),
                LABEL_AUX_CHAN,
            );
        }

        ExtendedGraph {
            observer: sigma,
            past,
            graph,
        }
    }

    /// The observer node `σ`.
    pub fn observer(&self) -> NodeId {
        self.observer
    }

    /// The causal past the graph was built from.
    pub fn past(&self) -> &Past {
        &self.past
    }

    /// The underlying weighted digraph.
    pub fn graph(&self) -> &WeightedDigraph<ExtVertex> {
        &self.graph
    }

    /// Longest-path weights from `v` to every vertex.
    ///
    /// # Errors
    ///
    /// Fails if `v` is not a vertex, or on a positive cycle.
    pub fn longest_from(&self, v: ExtVertex) -> Result<LongestPaths, CoreError> {
        self.graph.longest_from(&v)
    }

    /// Longest-path weights from every vertex to `v`.
    ///
    /// # Errors
    ///
    /// Fails if `v` is not a vertex, or on a positive cycle.
    pub fn longest_to(&self, v: ExtVertex) -> Result<LongestPaths, CoreError> {
        self.graph.longest_to(&v)
    }

    /// Memoized [`ExtendedGraph::longest_from`]: repeated queries against
    /// the (immutable) graph share one SPFA per source.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExtendedGraph::longest_from`].
    pub fn longest_from_cached(&self, v: ExtVertex) -> Result<Arc<LongestPaths>, CoreError> {
        self.graph.longest_from_cached(&v)
    }

    /// Memoized [`ExtendedGraph::longest_to`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExtendedGraph::longest_to`].
    pub fn longest_to_cached(&self, v: ExtVertex) -> Result<Arc<LongestPaths>, CoreError> {
        self.graph.longest_to_cached(&v)
    }

    /// Dense index of a vertex, if present.
    pub fn index_of(&self, v: ExtVertex) -> Option<usize> {
        self.graph.index_of(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::RandomScheduler;
    use zigzag_bcm::{Network, SimConfig, Simulator, Time};

    fn tri_run(seed: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(50)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn structure_matches_definition_16() {
        let run = tri_run(0);
        let j1 = NodeId::new(ProcessId::new(1), 1);
        let ge = ExtendedGraph::new(&run, j1);
        let past = ge.past();
        // Aux vertices exist for all 3 processes.
        for p in run.context().network().processes() {
            assert!(ge.index_of(ExtVertex::Aux(p)).is_some());
        }
        // E' edges: one per process with a boundary node.
        let mut e_prime = 0;
        let mut e_unseen = 0;
        let mut e_aux = 0;
        for vi in 0..ge.graph().vertex_count() {
            for e in ge.graph().edges_from(vi) {
                match e.label {
                    LABEL_BOUNDARY => {
                        e_prime += 1;
                        assert_eq!(e.weight, 1);
                        // from boundary node to its own aux.
                        let from = *ge.graph().vertex(e.from);
                        let to = *ge.graph().vertex(e.to);
                        assert_eq!(Some(past.boundary(to.proc()).unwrap()), from.node());
                    }
                    LABEL_UNSEEN => {
                        e_unseen += 1;
                        assert!(e.weight < 0);
                        assert!(ge.graph().vertex(e.from).aux().is_some());
                        assert!(ge.graph().vertex(e.to).node().is_some());
                    }
                    LABEL_AUX_CHAN => {
                        e_aux += 1;
                        assert!(ge.graph().vertex(e.from).aux().is_some());
                        assert!(ge.graph().vertex(e.to).aux().is_some());
                    }
                    _ => {}
                }
            }
        }
        assert_eq!(e_prime, past.boundaries().count());
        // i#1 flooded to j and k; j's receipt is in past, k's may not be.
        assert!(e_unseen >= 1);
        assert_eq!(e_aux, run.context().network().channels().len());
        assert_eq!(ge.observer(), j1);
    }

    #[test]
    fn section_5_1_unseen_delivery_constraint() {
        // §5.1 example: σ_i sends to j, delivery unseen by σ. Then
        // GE contains a path from ψ_j (hence from σ's boundary on j... )
        // giving σ_j --(1 − U_ij)--> σ_i knowledge. We verify the edge
        // composition: boundary_j --1--> ψ_j --(−U_ij)--> σ_i.
        let run = tri_run(1);
        // Observer: i's second node (after hearing back from someone).
        let i = ProcessId::new(0);
        let sigma = NodeId::new(i, 2);
        if !run.appears(sigma) {
            return; // schedule did not produce it; other seeds cover
        }
        let ge = ExtendedGraph::new(&run, sigma);
        // Find any E'' edge and check a path from the receiving process's
        // boundary to the sender exists with weight 1 − U.
        let g = ge.graph();
        let mut checked = false;
        for vi in 0..g.vertex_count() {
            for e in g.edges_from(vi) {
                if e.label != LABEL_UNSEEN {
                    continue;
                }
                let psi = *g.vertex(e.from);
                let sender = *g.vertex(e.to);
                let Some(boundary) = ge.past().boundary(psi.proc()) else {
                    continue;
                };
                let lp = ge.longest_from(ExtVertex::Node(boundary)).unwrap();
                let w = lp.weight(g.index_of(&sender).unwrap()).unwrap();
                // At least the two-edge path boundary -> ψ -> sender.
                assert!(w > e.weight);
                checked = true;
            }
        }
        let _ = checked;
    }

    #[test]
    fn every_past_node_reaches_observer() {
        // Needed by the fast timing: f(·) is defined for all past nodes.
        for seed in 0..5 {
            let run = tri_run(seed);
            let j1 = NodeId::new(ProcessId::new(1), 1);
            let ge = ExtendedGraph::new(&run, j1);
            let lp = ge.longest_to(ExtVertex::Node(j1)).unwrap();
            for n in ge.past().iter() {
                assert!(
                    lp.reaches(ge.index_of(ExtVertex::Node(n)).unwrap()),
                    "past node {n} has no path to observer"
                );
            }
        }
    }

    #[test]
    fn ext_vertex_accessors() {
        let n = ExtVertex::Node(NodeId::new(ProcessId::new(1), 2));
        let a = ExtVertex::Aux(ProcessId::new(0));
        assert_eq!(n.node(), Some(NodeId::new(ProcessId::new(1), 2)));
        assert_eq!(n.aux(), None);
        assert_eq!(a.aux(), Some(ProcessId::new(0)));
        assert_eq!(a.node(), None);
        assert_eq!(n.proc(), ProcessId::new(1));
        assert_eq!(a.proc(), ProcessId::new(0));
        assert_eq!(a.to_string(), "ψ(p0)");
        assert!(n.to_string().contains("p1#2"));
    }

    #[test]
    fn no_positive_cycles() {
        for seed in 0..5 {
            let run = tri_run(seed);
            let j1 = NodeId::new(ProcessId::new(1), 1);
            let ge = ExtendedGraph::new(&run, j1);
            assert!(ge.longest_from(ExtVertex::Node(j1)).is_ok());
        }
    }
}
