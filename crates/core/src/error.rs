//! Error types for the causality layer.

use std::fmt;

use zigzag_bcm::{BcmError, NodeId};

/// Errors produced by zigzag/knowledge analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// An underlying model error (invalid path, unknown node, …).
    Bcm(BcmError),
    /// A general node does not appear in the run under analysis
    /// (its base is missing or its message chain leaves the horizon).
    NodeNotInRun {
        /// Explanation of the failed resolution.
        detail: String,
    },
    /// A zigzag pattern violates Definition 6 (fork composition, process
    /// mismatch or ordering between adjacent forks).
    MalformedPattern {
        /// Explanation of the violation.
        detail: String,
    },
    /// A fork's legs do not start at the base node's process.
    MalformedFork {
        /// Explanation of the violation.
        detail: String,
    },
    /// The bounds graph contains a positive cycle — impossible for graphs
    /// derived from actual runs; indicates corrupted input.
    PositiveCycle,
    /// A graph outgrew the `u32` interior index space (more than 2³² − 1
    /// vertices or edges); the hot core stores all indices as `u32` and
    /// checks every narrowing conversion instead of truncating.
    IndexOverflow {
        /// Which quantity overflowed, and its value.
        detail: String,
    },
    /// A knowledge query was posed at a node that does not recognize the
    /// queried nodes (their bases are outside `past(r, σ)`).
    NotRecognized {
        /// The observer node `σ`.
        observer: NodeId,
        /// Explanation of which node is not σ-recognized.
        detail: String,
    },
    /// A knowledge query involved an initial node (`time_r(θ) = 0`), which
    /// Theorems 2 and 4 exclude.
    InitialNode {
        /// Explanation of the offending node.
        detail: String,
    },
    /// A timing function is not valid for the graph it was checked against.
    InvalidTiming {
        /// Explanation of the violated edge constraint.
        detail: String,
    },
    /// The run's horizon is too small for the requested construction (a
    /// needed message chain leaves the recorded prefix).
    HorizonTooSmall {
        /// Explanation of what fell off the prefix.
        detail: String,
    },
    /// An incremental engine refused to operate after a failed append
    /// left its grown run and derived analyses possibly out of sync; the
    /// engine must be discarded and rebuilt from a consistent feed.
    Poisoned {
        /// The failure that poisoned the engine.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Bcm(e) => write!(f, "{e}"),
            CoreError::NodeNotInRun { detail } => {
                write!(f, "node does not appear in the run: {detail}")
            }
            CoreError::MalformedPattern { detail } => {
                write!(f, "malformed zigzag pattern: {detail}")
            }
            CoreError::MalformedFork { detail } => write!(f, "malformed two-legged fork: {detail}"),
            CoreError::PositiveCycle => write!(f, "bounds graph contains a positive cycle"),
            CoreError::IndexOverflow { detail } => {
                write!(f, "graph exceeds the u32 index space: {detail}")
            }
            CoreError::NotRecognized { observer, detail } => {
                write!(f, "node not recognized at {observer}: {detail}")
            }
            CoreError::InitialNode { detail } => {
                write!(f, "initial nodes are excluded from this analysis: {detail}")
            }
            CoreError::InvalidTiming { detail } => write!(f, "invalid timing function: {detail}"),
            CoreError::HorizonTooSmall { detail } => write!(f, "horizon too small: {detail}"),
            CoreError::Poisoned { detail } => {
                write!(
                    f,
                    "incremental engine poisoned by a failed append: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Bcm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BcmError> for CoreError {
    fn from(e: BcmError) -> Self {
        CoreError::Bcm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::ProcessId;

    #[test]
    fn display_variants() {
        let errors: Vec<CoreError> = vec![
            BcmError::EmptyNetwork.into(),
            CoreError::PositiveCycle,
            CoreError::NodeNotInRun { detail: "x".into() },
            CoreError::MalformedPattern { detail: "x".into() },
            CoreError::MalformedFork { detail: "x".into() },
            CoreError::NotRecognized {
                observer: NodeId::new(ProcessId::new(0), 1),
                detail: "x".into(),
            },
            CoreError::InitialNode { detail: "x".into() },
            CoreError::IndexOverflow { detail: "x".into() },
            CoreError::InvalidTiming { detail: "x".into() },
            CoreError::HorizonTooSmall { detail: "x".into() },
            CoreError::Poisoned { detail: "x".into() },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn source_chains_for_bcm() {
        use std::error::Error as _;
        let e: CoreError = BcmError::EmptyNetwork.into();
        assert!(e.source().is_some());
        assert!(CoreError::PositiveCycle.source().is_none());
    }
}
