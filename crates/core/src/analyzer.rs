//! Run-level shared analysis: one [`RunAnalyzer`] per recorded run,
//! amortizing everything that does not depend on the observer.
//!
//! The Theorem 4 decision procedure is observer-scoped: a
//! [`KnowledgeEngine`] answers queries *at* one basic node `σ`. But a
//! protocol analysis, a sweep, or a serving layer asks about **many**
//! observers of the **same** run, and the seed behavior — rebuilding
//! `GE(r, σ)` and re-resolving every recorded message per observer, plus a
//! fresh SPFA per query — pays the full price every time. The analyzer
//! splits the work by scope:
//!
//! * **per run** (shared here): the message table resolved against the
//!   channel bounds ([`MessageIndex`]), and the global basic bounds graph
//!   `GB(r)` ([`BoundsGraph`]), each built once on first use;
//! * **per observer** (cached here): the derived [`KnowledgeEngine`],
//!   constructed once per `σ` and shared via [`Arc`];
//! * **per query** (cached inside the engine): canonical rewrites, fast
//!   timings, chain layouts, and memoized SPFA results.
//!
//! The analyzer is the *batch* facade: it wraps a complete, immutable
//! recorded run. When the run is still growing — events arriving one at
//! a time — use [`crate::incremental::IncrementalEngine`] instead, which
//! maintains the same shared state under appends (delta-updated message
//! index and `GB(r)`, append-stable observer engines) and answers
//! identically to this analyzer on every prefix.
//!
//! ```
//! # use zigzag_bcm::{Network, SimConfig, Simulator, Time, NodeId, ProcessId};
//! # use zigzag_bcm::protocols::Ffip;
//! # use zigzag_bcm::scheduler::EagerScheduler;
//! use zigzag_core::analyzer::RunAnalyzer;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = Network::builder();
//! # let i = b.add_process("i");
//! # let j = b.add_process("j");
//! # b.add_bidirectional(i, j, 2, 5)?;
//! # let ctx = b.build()?;
//! # let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
//! # sim.external(Time::new(1), i, "kick");
//! # let run = sim.run(&mut Ffip::new(), &mut EagerScheduler)?;
//! let analyzer = RunAnalyzer::new(&run);
//! // Engines for two observers share the run-level analysis...
//! let e1 = analyzer.engine(NodeId::new(i, 2))?;
//! let e2 = analyzer.engine(NodeId::new(j, 1))?;
//! // ...and asking for the same observer again returns the same engine.
//! assert!(std::sync::Arc::ptr_eq(&e1, &analyzer.engine(NodeId::new(i, 2))?));
//! # let _ = e2;
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use zigzag_bcm::{NodeId, Run};

use crate::bounds_graph::BoundsGraph;
use crate::error::CoreError;
use crate::extended_graph::{ExtendedGraph, MessageIndex};
use crate::knowledge::KnowledgeEngine;
use crate::node::GeneralNode;

/// Shared-analysis facade over one recorded run; see the [module
/// docs](self).
#[derive(Debug)]
pub struct RunAnalyzer<'r> {
    run: &'r Run,
    messages: OnceLock<MessageIndex>,
    gb: OnceLock<Arc<BoundsGraph>>,
    engines: Mutex<HashMap<NodeId, Arc<KnowledgeEngine<'r>>>>,
}

impl<'r> RunAnalyzer<'r> {
    /// Wraps `run`. All analysis state is built lazily on first use.
    pub fn new(run: &'r Run) -> Self {
        RunAnalyzer {
            run,
            messages: OnceLock::new(),
            gb: OnceLock::new(),
            engines: Mutex::new(HashMap::new()),
        }
    }

    /// The run under analysis.
    pub fn run(&self) -> &'r Run {
        self.run
    }

    /// The per-run message table, resolved once and shared by every
    /// derived `GE(r, σ)`.
    pub fn message_index(&self) -> &MessageIndex {
        self.messages.get_or_init(|| MessageIndex::of_run(self.run))
    }

    /// The global basic bounds graph `GB(r)`, built once per run. Its
    /// longest-path queries are memoized per source, so run-wide
    /// precedence analyses (tight bounds, `V_σ` sets) share traversals.
    pub fn bounds_graph(&self) -> Arc<BoundsGraph> {
        self.gb
            .get_or_init(|| Arc::new(BoundsGraph::of_run(self.run)))
            .clone()
    }

    /// The knowledge engine observing at `sigma`, built on first request
    /// and shared afterwards.
    ///
    /// # Errors
    ///
    /// Fails if `sigma` does not appear in the run.
    pub fn engine(&self, sigma: NodeId) -> Result<Arc<KnowledgeEngine<'r>>, CoreError> {
        if let Some(hit) = self.engines.lock().expect("engine cache lock").get(&sigma) {
            return Ok(hit.clone());
        }
        if !self.run.appears(sigma) {
            return Err(CoreError::NodeNotInRun {
                detail: format!("observer {sigma} does not appear in the run"),
            });
        }
        let ge = ExtendedGraph::with_index(self.run, sigma, self.message_index());
        let engine = Arc::new(KnowledgeEngine::with_graph(self.run, sigma, ge));
        // If a concurrent caller won the race, hand back *their* engine so
        // every caller shares one query cache (and one Arc identity).
        Ok(self
            .engines
            .lock()
            .expect("engine cache lock")
            .entry(sigma)
            .or_insert(engine)
            .clone())
    }

    /// Number of observer engines derived so far.
    pub fn engine_count(&self) -> usize {
        self.engines.lock().expect("engine cache lock").len()
    }

    /// Convenience: `K_σ(θ1 --x--> θ2)`'s exact threshold at observer
    /// `sigma`, through the shared engine.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnowledgeEngine::max_x`].
    pub fn max_x(
        &self,
        sigma: NodeId,
        theta1: &GeneralNode,
        theta2: &GeneralNode,
    ) -> Result<Option<i64>, CoreError> {
        self.engine(sigma)?.max_x(theta1, theta2)
    }

    /// Convenience: batched thresholds at one observer (see
    /// [`KnowledgeEngine::max_x_batch`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnowledgeEngine::max_x_batch`].
    pub fn max_x_batch(
        &self,
        sigma: NodeId,
        queries: &[(GeneralNode, GeneralNode)],
    ) -> Result<Vec<Option<i64>>, CoreError> {
        self.engine(sigma)?.max_x_batch(queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::RandomScheduler;
    use zigzag_bcm::{Network, ProcessId, SimConfig, Simulator, Time};

    fn tri_run(seed: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(50)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn derived_engines_agree_with_standalone() {
        for seed in 0..4 {
            let run = tri_run(seed);
            let analyzer = RunAnalyzer::new(&run);
            let observers: Vec<NodeId> = run
                .nodes()
                .map(|r| r.id())
                .filter(|n| !n.is_initial())
                .collect();
            for &sigma in observers.iter().take(4) {
                let shared = analyzer.engine(sigma).unwrap();
                let standalone = KnowledgeEngine::new(&run, sigma).unwrap();
                assert_eq!(
                    shared.max_x_basic_matrix().unwrap(),
                    standalone.max_x_basic_matrix().unwrap(),
                    "seed {seed}, observer {sigma}: shared-analysis path diverged"
                );
            }
        }
    }

    #[test]
    fn engines_are_shared_per_observer() {
        let run = tri_run(1);
        let analyzer = RunAnalyzer::new(&run);
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last()
            .unwrap();
        let a = analyzer.engine(sigma).unwrap();
        let b = analyzer.engine(sigma).unwrap();
        assert!(
            Arc::ptr_eq(&a, &b),
            "engine was rebuilt for the same observer"
        );
        assert_eq!(analyzer.engine_count(), 1);
        assert_eq!(analyzer.run().node_count(), run.node_count());
        // GB(r) is shared too.
        assert!(Arc::ptr_eq(
            &analyzer.bounds_graph(),
            &analyzer.bounds_graph()
        ));
    }

    #[test]
    fn batch_matches_pointwise() {
        let run = tri_run(2);
        let analyzer = RunAnalyzer::new(&run);
        let sigma = NodeId::new(ProcessId::new(1), 2);
        if !run.appears(sigma) {
            return;
        }
        let engine = analyzer.engine(sigma).unwrap();
        let nodes: Vec<NodeId> = run.past(sigma).iter().filter(|n| !n.is_initial()).collect();
        let queries: Vec<(GeneralNode, GeneralNode)> = nodes
            .iter()
            .flat_map(|&a| nodes.iter().map(move |&b| (a.into(), b.into())))
            .collect();
        let batched = analyzer.max_x_batch(sigma, &queries).unwrap();
        for ((ta, tb), got) in queries.iter().zip(&batched) {
            assert_eq!(*got, engine.max_x(ta, tb).unwrap());
            assert_eq!(*got, analyzer.max_x(sigma, ta, tb).unwrap());
        }
    }

    #[test]
    fn unknown_observers_error() {
        let run = tri_run(0);
        let analyzer = RunAnalyzer::new(&run);
        assert!(analyzer.engine(NodeId::new(ProcessId::new(0), 99)).is_err());
        assert_eq!(analyzer.engine_count(), 0);
    }
}
