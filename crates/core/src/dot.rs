//! Graphviz (DOT) exports for the analysis graphs.
//!
//! The bounds graphs are the paper's central technical device (Figures
//! 6–8 are drawings of them); these exporters reproduce those drawings
//! from live data:
//!
//! ```text
//! cargo run --example quickstart   # or any harness producing a Run
//! # then, in code:
//! println!("{}", zigzag_core::dot::bounds_graph_dot(&gb, &run));
//! # dot -Tsvg graph.dot > graph.svg
//! ```
//!
//! Edge styling follows the paper: solid `+L` send edges, dashed `−U`
//! reverse edges, dotted `+1` successor edges; auxiliary `ψ` vertices are
//! drawn as diamonds.

use std::fmt::Write as _;

use zigzag_bcm::{Network, Run};

use crate::bounds_graph::{BoundsGraph, LABEL_RECV, LABEL_SEND, LABEL_SUCCESSOR};
use crate::extended_graph::{
    ExtVertex, ExtendedGraph, LABEL_AUX_CHAN, LABEL_BOUNDARY, LABEL_UNSEEN,
};

fn style(label: u32) -> &'static str {
    match label {
        LABEL_SUCCESSOR => "style=dotted color=gray40",
        LABEL_SEND => "style=solid color=black",
        LABEL_RECV => "style=dashed color=firebrick",
        LABEL_BOUNDARY => "style=dotted color=blue",
        LABEL_UNSEEN => "style=dashed color=blue",
        LABEL_AUX_CHAN => "style=dashed color=blue4",
        _ => "",
    }
}

/// Renders the communication network with its `[L, U]` channel bounds.
pub fn network_dot(net: &Network, bounds: &zigzag_bcm::Bounds) -> String {
    let mut out = String::from("digraph net {\n  rankdir=LR;\n  node [shape=circle];\n");
    for p in net.processes() {
        let _ = writeln!(out, "  p{} [label=\"{}\"];", p.index(), net.name(p));
    }
    for ch in net.channels() {
        let cb = bounds.get(*ch).expect("covered channels");
        let _ = writeln!(
            out,
            "  p{} -> p{} [label=\"[{},{}]\"];",
            ch.from.index(),
            ch.to.index(),
            cb.lower(),
            cb.upper()
        );
    }
    out.push_str("}\n");
    out
}

/// Renders `GB(r)` in the style of the paper's Figure 6/7: one horizontal
/// rank per process timeline, time flowing left to right.
pub fn bounds_graph_dot(gb: &BoundsGraph, run: &Run) -> String {
    let mut out = String::from("digraph gb {\n  rankdir=LR;\n  node [shape=box fontsize=10];\n");
    let g = gb.graph();
    for p in run.context().network().processes() {
        let _ = writeln!(out, "  subgraph cluster_p{} {{", p.index());
        let _ = writeln!(
            out,
            "    label=\"{}\"; color=gray80;",
            run.context().network().name(p)
        );
        for rec in run.timeline(p) {
            if g.contains(&rec.id()) {
                let _ = writeln!(
                    out,
                    "    n{}_{} [label=\"{}\\n t={}\"];",
                    p.index(),
                    rec.id().index(),
                    rec.id(),
                    rec.time()
                );
            }
        }
        out.push_str("  }\n");
    }
    for vi in 0..g.vertex_count() {
        for e in g.edges_from(vi) {
            let from = g.vertex(e.from);
            let to = g.vertex(e.to);
            let _ = writeln!(
                out,
                "  n{}_{} -> n{}_{} [label=\"{}\" {}];",
                from.proc().index(),
                from.index(),
                to.proc().index(),
                to.index(),
                e.weight,
                style(e.label)
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders `GE(r, σ)` in the style of the paper's Figure 8, with the
/// auxiliary `ψ` vertices as diamonds on the right.
pub fn extended_graph_dot(ge: &ExtendedGraph, run: &Run) -> String {
    let mut out = String::from("digraph ge {\n  rankdir=LR;\n  node [shape=box fontsize=10];\n");
    let g = ge.graph();
    let name_of = |v: &ExtVertex| match v {
        ExtVertex::Node(n) => format!("n{}_{}", n.proc().index(), n.index()),
        ExtVertex::Aux(p) => format!("psi{}", p.index()),
    };
    for vi in 0..g.vertex_count() {
        let v = g.vertex(vi);
        match v {
            ExtVertex::Node(n) => {
                let marker = if *n == ge.observer() { " (σ)" } else { "" };
                let _ = writeln!(out, "  {} [label=\"{}{}\"];", name_of(v), n, marker);
            }
            ExtVertex::Aux(p) => {
                let _ = writeln!(
                    out,
                    "  {} [shape=diamond color=blue label=\"ψ({})\"];",
                    name_of(v),
                    run.context().network().name(*p)
                );
            }
        }
    }
    for vi in 0..g.vertex_count() {
        for e in g.edges_from(vi) {
            let _ = writeln!(
                out,
                "  {} -> {} [label=\"{}\" {}];",
                name_of(g.vertex(e.from)),
                name_of(g.vertex(e.to)),
                e.weight,
                style(e.label)
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::EagerScheduler;
    use zigzag_bcm::{NodeId, ProcessId, SimConfig, Simulator, Time};

    fn run() -> Run {
        let mut b = zigzag_bcm::Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(15)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap()
    }

    #[test]
    fn network_dot_lists_channels_with_bounds() {
        let r = run();
        let dot = network_dot(r.context().network(), r.context().bounds());
        assert!(dot.starts_with("digraph net {"));
        assert!(dot.contains("p0 -> p1 [label=\"[2,5]\"]"));
        assert!(dot.contains("p1 -> p0 [label=\"[2,5]\"]"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn gb_dot_has_all_three_edge_styles() {
        let r = run();
        let gb = BoundsGraph::of_run(&r);
        let dot = bounds_graph_dot(&gb, &r);
        assert!(dot.contains("style=dotted")); // successor
        assert!(dot.contains("style=solid")); // +L
        assert!(dot.contains("style=dashed")); // −U
        assert!(dot.contains("cluster_p0"));
        assert!(dot.matches(" -> ").count() >= gb.edge_count());
    }

    #[test]
    fn ge_dot_marks_observer_and_auxes() {
        let r = run();
        let sigma = NodeId::new(ProcessId::new(1), 1);
        let ge = ExtendedGraph::new(&r, sigma);
        let dot = extended_graph_dot(&ge, &r);
        assert!(dot.contains("(σ)"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("ψ(i)") && dot.contains("ψ(j)"));
    }
}
