//! A tiny multiply-mix hasher for the hot interior maps.
//!
//! The engine's inner loops intern small fixed-width keys — `NodeId`
//! pairs of `u32`s, dense `(source, direction)` memo keys — at a rate
//! where the default SipHash's per-write setup dominates the map
//! operation (the streaming append path hashes every edge endpoint of
//! every appended node). This is the classic Fx mix (one wrapping
//! multiply per word, as used by rustc's interners): not DoS-resistant,
//! which is fine for maps keyed by values the engine itself derives
//! from validated runs, never by attacker-chosen strings. Boundary maps
//! keyed on caller-supplied data keep the default hasher.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx mix (64-bit golden-ratio based).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The hasher: one wrapping multiply-xor per written word.
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]; plug into `HashMap<K, V, FxBuild>`.
pub type FxBuild = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distributes_and_round_trips() {
        let mut map: HashMap<(u32, u32), usize, FxBuild> = HashMap::default();
        for i in 0..1000u32 {
            map.insert((i, i.wrapping_mul(7)), i as usize);
        }
        assert_eq!(map.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(map.get(&(i, i.wrapping_mul(7))), Some(&(i as usize)));
        }
    }

    #[test]
    fn byte_writes_cover_tails() {
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        h.write(&[9]);
        let b = h.finish();
        // Same bytes, different chunking — values may differ, but both
        // must be stable and non-trivial.
        assert_ne!(a, 0);
        assert_ne!(b, 0);
    }
}
