//! Two-legged forks (paper Definition 5, Figure 3).
//!
//! A fork `F = ⟨θ0, θ0·p1, θ0·p2⟩` consists of a base node and two message
//! chains leaving it: the **head** leg `p1` and the **tail** leg `p2`. Its
//! weight `wt(F) = L(p1) − U(p2)` lower-bounds how much earlier the tail
//! occurs than the head: both chains start at the same instant, the head
//! takes at least `L(p1)`, the tail at most `U(p2)`.

use std::fmt;

use zigzag_bcm::{Bounds, NetPath, NodeId, Run};

use crate::error::CoreError;
use crate::node::GeneralNode;

/// A two-legged fork `F` with `base(F) = θ0`, `head(F) = θ0·p1`,
/// `tail(F) = θ0·p2`.
///
/// Degenerate legs (singleton paths) are allowed and common: a *trivial*
/// fork `⟨θ, θ, θ⟩` has weight 0 and is used when composing zigzag
/// patterns (see the proof of Lemma 5).
///
/// # Examples
///
/// ```
/// use zigzag_bcm::{NodeId, ProcessId, NetPath};
/// use zigzag_core::{GeneralNode, TwoLeggedFork};
/// // Figure 1: base at C, head leg C->B, tail leg C->A.
/// let c = ProcessId::new(0);
/// let a = ProcessId::new(1);
/// let b = ProcessId::new(2);
/// let base = GeneralNode::basic(NodeId::new(c, 1));
/// let fork = TwoLeggedFork::new(
///     base,
///     NetPath::new(vec![c, b])?, // head: to B
///     NetPath::new(vec![c, a])?, // tail: to A
/// )?;
/// assert_eq!(fork.head().proc(), b);
/// assert_eq!(fork.tail().proc(), a);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TwoLeggedFork {
    base: GeneralNode,
    head_path: NetPath,
    tail_path: NetPath,
}

impl TwoLeggedFork {
    /// Creates a fork from its base and two leg paths (both must start at
    /// the base's process).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedFork`] if a leg does not start at the
    /// base node's process.
    pub fn new(
        base: GeneralNode,
        head_path: NetPath,
        tail_path: NetPath,
    ) -> Result<Self, CoreError> {
        for (name, p) in [("head", &head_path), ("tail", &tail_path)] {
            if p.first() != base.proc() {
                return Err(CoreError::MalformedFork {
                    detail: format!(
                        "{name} leg {p} does not start at base process {}",
                        base.proc()
                    ),
                });
            }
        }
        Ok(TwoLeggedFork {
            base,
            head_path,
            tail_path,
        })
    }

    /// The trivial fork `⟨θ, θ, θ⟩` (both legs empty, weight 0).
    pub fn trivial(theta: GeneralNode) -> Self {
        let p = NetPath::singleton(theta.proc());
        TwoLeggedFork {
            base: theta,
            head_path: p.clone(),
            tail_path: p,
        }
    }

    /// `base(F) = θ0`.
    pub fn base(&self) -> &GeneralNode {
        &self.base
    }

    /// The head leg path `p1`.
    pub fn head_path(&self) -> &NetPath {
        &self.head_path
    }

    /// The tail leg path `p2`.
    pub fn tail_path(&self) -> &NetPath {
        &self.tail_path
    }

    /// `head(F) = θ0 · p1` as a general node.
    pub fn head(&self) -> GeneralNode {
        self.base
            .then(&self.head_path)
            .expect("leg validated at construction")
    }

    /// `tail(F) = θ0 · p2` as a general node.
    pub fn tail(&self) -> GeneralNode {
        self.base
            .then(&self.tail_path)
            .expect("leg validated at construction")
    }

    /// `wt(F) = L(p1) − U(p2)`.
    ///
    /// # Errors
    ///
    /// Fails if a leg uses a channel missing from `bounds`.
    pub fn weight(&self, bounds: &Bounds) -> Result<i64, CoreError> {
        let l = bounds.path_lower(&self.head_path).map_err(CoreError::Bcm)?;
        let u = bounds.path_upper(&self.tail_path).map_err(CoreError::Bcm)?;
        Ok(l as i64 - u as i64)
    }

    /// Resolves head and tail in `run`, returning `(tail, head)` basic
    /// nodes — the order matching the guarantee
    /// `tail --wt(F)--> head`.
    ///
    /// # Errors
    ///
    /// Fails if either chain does not appear in the run.
    pub fn resolve(&self, run: &Run) -> Result<(NodeId, NodeId), CoreError> {
        Ok((self.tail().resolve(run)?, self.head().resolve(run)?))
    }

    /// Checks the fork's guarantee in a specific run: that
    /// `time(head) − time(tail) >= wt(F)`. Returns the achieved gap.
    ///
    /// This is the single-fork case of Theorem 1.
    ///
    /// # Errors
    ///
    /// Fails if the fork does not appear in the run or its legs use
    /// missing channels.
    pub fn check_guarantee(&self, run: &Run) -> Result<i64, CoreError> {
        let (tail, head) = self.resolve(run)?;
        let gap = run
            .time(head)
            .expect("resolved node appears")
            .diff(run.time(tail).expect("resolved node appears"));
        let w = self.weight(run.context().bounds())?;
        debug_assert!(
            gap >= w,
            "fork guarantee violated: gap {gap} < weight {w} — model bug"
        );
        Ok(gap)
    }
}

impl fmt::Display for TwoLeggedFork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fork(base={}, head={}, tail={})",
            self.base, self.head_path, self.tail_path
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::{FractionScheduler, RandomScheduler};
    use zigzag_bcm::{Network, ProcessId, SimConfig, Simulator, Time};

    /// Figure 1 topology: C -> A with [2,5], C -> B with [9,12].
    fn fig1_run(seed: u64) -> Run {
        let mut b = Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        let bb = b.add_process("B");
        b.add_channel(c, a, 2, 5).unwrap();
        b.add_channel(c, bb, 9, 12).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(3), c, "go");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    fn fig1_fork() -> TwoLeggedFork {
        let c = ProcessId::new(0);
        let a = ProcessId::new(1);
        let bb = ProcessId::new(2);
        let base = GeneralNode::basic(NodeId::new(c, 1));
        TwoLeggedFork::new(
            base,
            NetPath::new(vec![c, bb]).unwrap(),
            NetPath::new(vec![c, a]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn weight_is_l_minus_u() {
        let run = fig1_run(0);
        let fork = fig1_fork();
        assert_eq!(fork.weight(run.context().bounds()).unwrap(), 9 - 5);
    }

    #[test]
    fn guarantee_holds_across_schedules() {
        let fork = fig1_fork();
        for seed in 0..30 {
            let run = fig1_run(seed);
            let gap = fork.check_guarantee(&run).unwrap();
            assert!(gap >= 4, "gap {gap} below fork weight");
        }
    }

    #[test]
    fn trivial_fork_weight_zero() {
        let run = fig1_run(1);
        let theta = GeneralNode::basic(NodeId::new(ProcessId::new(0), 1));
        let f = TwoLeggedFork::trivial(theta.clone());
        assert_eq!(f.weight(run.context().bounds()).unwrap(), 0);
        let (t, h) = f.resolve(&run).unwrap();
        assert_eq!(t, h);
        assert_eq!(f.base(), &theta);
        assert_eq!(f.check_guarantee(&run).unwrap(), 0);
    }

    #[test]
    fn rejects_mismatched_legs() {
        let c = ProcessId::new(0);
        let a = ProcessId::new(1);
        let base = GeneralNode::basic(NodeId::new(c, 1));
        let bad = NetPath::new(vec![a, c]).unwrap();
        assert!(TwoLeggedFork::new(base.clone(), bad.clone(), NetPath::singleton(c)).is_err());
        assert!(TwoLeggedFork::new(base, NetPath::singleton(c), bad).is_err());
    }

    #[test]
    fn head_tail_accessors() {
        let f = fig1_fork();
        assert_eq!(f.head().proc(), ProcessId::new(2));
        assert_eq!(f.tail().proc(), ProcessId::new(1));
        assert_eq!(f.head_path().len(), 2);
        assert_eq!(f.tail_path().len(), 2);
        assert!(f.to_string().contains("fork(base="));
    }

    #[test]
    fn fraction_scheduler_tightness() {
        // With A's message maximally slow (U) and B's maximally fast (L),
        // the gap equals the weight exactly — the bound is tight.
        let mut b = Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        let bb = b.add_process("B");
        b.add_channel(c, a, 2, 5).unwrap();
        b.add_channel(c, bb, 9, 12).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(3), c, "go");
        // Head (to B) at lower bound, tail (to A) at upper: fraction won't
        // express per-channel, so use a per-channel scheduler.
        let mut sched = zigzag_bcm::scheduler::PerChannelScheduler::new(0.0);
        sched.set_delay(zigzag_bcm::Channel::new(c, a), 5);
        sched.set_delay(zigzag_bcm::Channel::new(c, bb), 9);
        let run = sim.run(&mut Ffip::new(), &mut sched).unwrap();
        let fork = fig1_fork();
        assert_eq!(fork.check_guarantee(&run).unwrap(), 4);
        let _ = FractionScheduler::new(0.5);
    }
}
