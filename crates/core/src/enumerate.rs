//! Exhaustive zigzag enumeration on small runs.
//!
//! The longest-path machinery finds *one* maximal certificate. This module
//! finds them **all**: every two-legged fork (bounded leg length) and every
//! zigzag composition (bounded fork count) between two nodes. It exists to
//! cross-check Theorem 2 by brute force — the best enumerated zigzag can
//! never out-weigh the bounds-graph longest path, and matches it whenever
//! the optimal pattern fits within the enumeration bounds — and to power
//! ablation experiments comparing certificate families (single forks vs
//! full zigzags).
//!
//! Complexity is exponential in the bounds; keep `EnumLimits` small (the
//! defaults handle the paper's five-process figures in milliseconds).

use std::collections::HashMap;

use zigzag_bcm::{NetPath, NodeId, ProcessId, Run};

use crate::error::CoreError;
use crate::fork::TwoLeggedFork;
use crate::node::GeneralNode;
use crate::pattern::ZigzagPattern;

/// Search bounds for the exhaustive enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnumLimits {
    /// Maximum processes per fork leg (a leg of length `k` has `k − 1`
    /// hops; `1` means legs may be empty).
    pub max_leg_len: usize,
    /// Maximum forks per zigzag pattern.
    pub max_forks: usize,
}

impl Default for EnumLimits {
    fn default() -> Self {
        EnumLimits {
            max_leg_len: 3,
            max_forks: 3,
        }
    }
}

/// All simple paths from `from` in `net`, up to `max_len` processes,
/// including the singleton.
fn all_paths_from(run: &Run, from: ProcessId, max_len: usize) -> Vec<NetPath> {
    let net = run.context().network();
    let mut out = vec![NetPath::singleton(from)];
    let mut stack = vec![from];
    fn dfs(
        net: &zigzag_bcm::Network,
        max_len: usize,
        stack: &mut Vec<ProcessId>,
        out: &mut Vec<NetPath>,
    ) {
        if stack.len() >= max_len {
            return;
        }
        let cur = *stack.last().expect("non-empty");
        for &next in net.out_neighbors(cur) {
            if stack.contains(&next) {
                continue; // simple paths only
            }
            stack.push(next);
            out.push(NetPath::new(stack.clone()).expect("DFS paths valid"));
            dfs(net, max_len, stack, out);
            stack.pop();
        }
    }
    dfs(net, max_len, &mut stack, &mut out);
    out
}

/// A fork that exists in the run, pre-resolved for composition.
#[derive(Debug, Clone)]
struct ResolvedFork {
    fork: TwoLeggedFork,
    tail: NodeId,
    head: NodeId,
    weight: i64,
}

/// Enumerates every two-legged fork within `limits` that *appears* in
/// `run` (both legs resolve inside the horizon), based at any non-initial
/// node.
fn all_forks(run: &Run, limits: EnumLimits) -> Vec<ResolvedFork> {
    let bounds = run.context().bounds();
    let mut out = Vec::new();
    for rec in run.nodes() {
        if rec.id().is_initial() {
            continue;
        }
        let base = GeneralNode::basic(rec.id());
        let legs = all_paths_from(run, rec.id().proc(), limits.max_leg_len);
        for head_path in &legs {
            for tail_path in &legs {
                let Ok(fork) =
                    TwoLeggedFork::new(base.clone(), head_path.clone(), tail_path.clone())
                else {
                    continue;
                };
                let (Ok(tail), Ok(head)) = (fork.tail().resolve(run), fork.head().resolve(run))
                else {
                    continue;
                };
                let Ok(weight) = fork.weight(bounds) else {
                    continue;
                };
                out.push(ResolvedFork {
                    fork,
                    tail,
                    head,
                    weight,
                });
            }
        }
    }
    out
}

/// The best zigzag found between two nodes, with the full search count.
#[derive(Debug, Clone)]
pub struct BestZigzag {
    /// The maximum-weight pattern from `from` to `to`.
    pub pattern: ZigzagPattern,
    /// Its weight as realized in the run (fork weights + separations).
    pub weight: i64,
    /// Number of (partial) patterns explored.
    pub explored: u64,
}

/// Exhaustively searches for the maximum-weight zigzag pattern from `from`
/// to `to` in `run`, over all fork sequences within `limits`
/// (Definition 6: adjacent forks joined at a process with
/// `time(head) <= time(tail)`).
///
/// Returns `Ok(None)` if no pattern within the limits connects the pair.
///
/// # Errors
///
/// Propagates run-resolution failures other than out-of-horizon legs
/// (which merely prune the search).
pub fn best_zigzag(
    run: &Run,
    from: NodeId,
    to: NodeId,
    limits: EnumLimits,
) -> Result<Option<BestZigzag>, CoreError> {
    let forks = all_forks(run, limits);
    // Index forks by the process of their tail node for fast chaining:
    // fork k may follow fork j if head(j) and tail(k) are on the same
    // process with time(head(j)) <= time(tail(k)).
    let mut by_tail_proc: HashMap<ProcessId, Vec<usize>> = HashMap::new();
    for (k, f) in forks.iter().enumerate() {
        by_tail_proc.entry(f.tail.proc()).or_default().push(k);
    }

    let mut best: Option<(Vec<usize>, i64)> = None;
    let mut explored = 0u64;

    // DFS over fork sequences starting at forks whose tail is `from`.
    struct Search<'a> {
        run: &'a Run,
        forks: &'a [ResolvedFork],
        by_tail_proc: &'a HashMap<ProcessId, Vec<usize>>,
        to: NodeId,
        limits: EnumLimits,
    }
    fn dfs(
        s: &Search<'_>,
        chain: &mut Vec<usize>,
        weight: i64,
        explored: &mut u64,
        best: &mut Option<(Vec<usize>, i64)>,
    ) {
        *explored += 1;
        let last = &s.forks[*chain.last().expect("chain non-empty")];
        if last.head == s.to && best.as_ref().is_none_or(|(_, w)| weight > *w) {
            *best = Some((chain.clone(), weight));
        }
        if chain.len() >= s.limits.max_forks {
            return;
        }
        let Some(nexts) = s.by_tail_proc.get(&last.head.proc()) else {
            return;
        };
        let t_head = s.run.time(last.head).expect("resolved");
        for &k in nexts {
            let next = &s.forks[k];
            let t_tail = s.run.time(next.tail).expect("resolved");
            if t_tail < t_head {
                continue; // Definition 6 ordering violated
            }
            let sep = (next.tail != last.head) as i64;
            chain.push(k);
            dfs(s, chain, weight + sep + next.weight, explored, best);
            chain.pop();
        }
    }

    let search = Search {
        run,
        forks: &forks,
        by_tail_proc: &by_tail_proc,
        to,
        limits,
    };
    for (k, f) in forks.iter().enumerate() {
        if f.tail != from {
            continue;
        }
        let mut chain = vec![k];
        dfs(&search, &mut chain, f.weight, &mut explored, &mut best);
    }

    let Some((chain, weight)) = best else {
        return Ok(None);
    };
    let pattern = ZigzagPattern::new(chain.iter().map(|&k| forks[k].fork.clone()).collect())?;
    Ok(Some(BestZigzag {
        pattern,
        weight,
        explored,
    }))
}

/// The best *single-fork* certificate between two nodes — the Figure 1
/// family the paper generalizes. Used by ablations comparing certificate
/// families.
pub fn best_single_fork(
    run: &Run,
    from: NodeId,
    to: NodeId,
    limits: EnumLimits,
) -> Option<(TwoLeggedFork, i64)> {
    all_forks(run, limits)
        .into_iter()
        .filter(|f| f.tail == from && f.head == to)
        .max_by_key(|f| f.weight)
        .map(|f| (f.fork, f.weight))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds_graph::BoundsGraph;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::RandomScheduler;
    use zigzag_bcm::{Network, SimConfig, Simulator, Time};

    fn tri_run(seed: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(28)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn enumerated_patterns_validate_and_match_their_weight() {
        let run = tri_run(0);
        let nodes: Vec<NodeId> = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .take(5)
            .collect();
        let mut found = 0;
        for &a in &nodes {
            for &b in &nodes {
                let Some(best) = best_zigzag(&run, a, b, EnumLimits::default()).unwrap() else {
                    continue;
                };
                let report = best.pattern.validate(&run).unwrap();
                assert_eq!(report.weight, best.weight);
                assert_eq!((report.from, report.to), (a, b));
                assert!(best.explored > 0);
                found += 1;
            }
        }
        assert!(found > 0);
    }

    #[test]
    fn exhaustive_search_never_beats_longest_path() {
        // Theorem 2 cross-check: the GB longest path upper-bounds every
        // zigzag, and equals the best one when the optimum fits the limits.
        for seed in 0..4 {
            let run = tri_run(seed);
            let gb = BoundsGraph::of_run(&run);
            let nodes: Vec<NodeId> = run
                .nodes()
                .map(|r| r.id())
                .filter(|n| !n.is_initial())
                .take(5)
                .collect();
            let mut matched = 0;
            for &a in &nodes {
                for &b in &nodes {
                    let limit = gb.longest_path(a, b).unwrap().map(|(w, _)| w);
                    let best = best_zigzag(&run, a, b, EnumLimits::default()).unwrap();
                    if let Some(best) = best {
                        let lw = limit.expect("a zigzag implies a GB path… or a frontier one");
                        assert!(
                            best.weight <= lw,
                            "seed {seed}: enumerated {} beats longest path {lw} ({a}->{b})",
                            best.weight
                        );
                        if best.weight == lw {
                            matched += 1;
                        }
                    }
                }
            }
            assert!(matched > 0, "seed {seed}: optimum never within limits");
        }
    }

    #[test]
    fn forks_are_a_strictly_weaker_family() {
        // On the Figure 2 topology the best zigzag beats the best fork.
        let mut nb = Network::builder();
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        let c = nb.add_process("C");
        let d = nb.add_process("D");
        let e = nb.add_process("E");
        nb.add_channel(c, a, 1, 3).unwrap();
        nb.add_channel(c, d, 6, 8).unwrap();
        nb.add_channel(e, d, 1, 2).unwrap();
        nb.add_channel(e, b, 4, 7).unwrap();
        let ctx = nb.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(60)));
        sim.external(Time::new(2), c, "go_c");
        sim.external(Time::new(14), e, "go_e");
        let run = sim
            .run(&mut Ffip::new(), &mut RandomScheduler::seeded(1))
            .unwrap();
        let sigma_c = run.external_receipt_node(c, "go_c").unwrap();
        let sigma_e = run.external_receipt_node(e, "go_e").unwrap();
        let node_a = GeneralNode::chain(sigma_c, &[a])
            .unwrap()
            .resolve(&run)
            .unwrap();
        let node_b = GeneralNode::chain(sigma_e, &[b])
            .unwrap()
            .resolve(&run)
            .unwrap();
        let limits = EnumLimits::default();
        let best = best_zigzag(&run, node_a, node_b, limits)
            .unwrap()
            .expect("the Figure 2a zigzag exists");
        // No single fork connects A's node to B's node at all here (no
        // common ancestor chain pair within the leg limit reaches both).
        let fork = best_single_fork(&run, node_a, node_b, limits);
        match fork {
            None => {}
            Some((_, w)) => assert!(w < best.weight),
        }
        assert!(best.weight > -3 + 6 - 2 + 4);
        // The Figure 2a pattern has two forks; the search may do even
        // better by inserting trivial forks that harvest extra separation
        // ticks at strictly-ordered junctions.
        assert!(best.pattern.len() >= 2);
    }

    #[test]
    fn limits_prune_the_search() {
        let run = tri_run(2);
        let nodes: Vec<NodeId> = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .take(4)
            .collect();
        let tight = EnumLimits {
            max_leg_len: 1,
            max_forks: 1,
        };
        for &a in &nodes {
            for &b in &nodes {
                if let Some(best) = best_zigzag(&run, a, b, tight).unwrap() {
                    // Leg length 1 means both legs empty: tail == head ==
                    // base, so only the trivial self-pattern survives.
                    assert_eq!(a, b);
                    assert_eq!(best.weight, 0);
                }
            }
        }
    }
}
