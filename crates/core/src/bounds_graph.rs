//! The basic bounds graph `GB(r)` (paper Definition 8) and its local
//! restriction `GB(r, σ)` (Definition 14).
//!
//! Vertices are the basic nodes of the run. Edges encode the timing
//! constraints the context imposes:
//!
//! * `σ --1--> succ(σ)` — successive nodes of a process are ≥ 1 apart;
//! * `send --L_ij--> recv` — a message takes at least `L_ij`;
//! * `recv --(−U_ij)--> send` — equivalently, the send happened at most
//!   `U_ij` before the receive.
//!
//! Every path weight is a sound timed-precedence bound between its
//! endpoints (Lemma 1); the **longest** path is the tight one (proof of
//! Theorem 2); and every path induces a zigzag pattern of equal weight
//! (Lemma 5, implemented in [`crate::extract`]).

use zigzag_bcm::run::Past;
use zigzag_bcm::{MessageId, NodeId, Run};

use crate::error::CoreError;
use crate::graph::{Edge, LongestPaths, WeightedDigraph};

/// Edge label: a timeline-successor edge (weight 1).
pub const LABEL_SUCCESSOR: u32 = 0;
/// Edge label: sender-to-receiver edge (weight `+L`).
pub const LABEL_SEND: u32 = 1;
/// Edge label: receiver-back-to-sender edge (weight `−U`).
pub const LABEL_RECV: u32 = 2;

/// The basic bounds graph of a run (or of a node's causal past).
#[derive(Debug, Clone)]
pub struct BoundsGraph {
    graph: WeightedDigraph<NodeId>,
    /// Message behind each labelled send/recv edge, parallel to insertion
    /// order; looked up by the extraction layer via edge labels only, so we
    /// keep it simple: send/recv edges can be re-derived from endpoints.
    message_edges: usize,
    /// Dense `(L, U)` per directed channel, indexed `from * n + to`: the
    /// append path resolves bounds for every delivered message, and a flat
    /// probe beats the context's ordered map there.
    channel_bounds: Vec<Option<(i64, i64)>>,
    procs: usize,
    /// Dense index of each process's latest timeline node (`u32::MAX` if
    /// that timeline has no interned node — restricted local graphs).
    /// Nodes arrive in recording order, so this is always the successor
    /// edge's source — no interning lookup needed on append.
    last_idx: Vec<u32>,
}

/// Flattens the context's channel bounds into a dense `from * n + to`
/// table (`None` where no channel exists).
fn channel_table(run: &Run) -> (usize, Vec<Option<(i64, i64)>>) {
    let n = run.context().network().len();
    let table = run
        .context()
        .bounds()
        .dense_table(n)
        .into_iter()
        .map(|slot| slot.map(|(l, u)| (l as i64, u as i64)))
        .collect();
    (n, table)
}

impl BoundsGraph {
    /// Builds `GB(r)` over every recorded basic node.
    pub fn of_run(run: &Run) -> Self {
        Self::build_full(run)
    }

    /// Builds the local bounds graph `GB(r, σ)`: the subgraph induced by
    /// `past(r, σ)` (Definition 14). Only edges with **both** endpoints in
    /// the past are present.
    pub fn local(run: &Run, past: &Past) -> Self {
        Self::build(run, Some(past))
    }

    /// Full-run bulk build. Vertices are interned in [`Run::nodes`] order
    /// — timeline after timeline, each position `k` holding the node of
    /// index `k` — so the dense index of `(p, k)` is `offsets[p] + k` by
    /// construction and edge endpoints never go back through the
    /// interner. Storage is reserved up front from the known node count.
    fn build_full(run: &Run) -> Self {
        let (procs, channel_bounds) = channel_table(run);
        let mut offsets = Vec::with_capacity(procs);
        let mut total = 0usize;
        for p in run.context().network().processes() {
            offsets.push(total);
            total += run.timeline(p).len();
        }

        let mut graph = WeightedDigraph::new();
        graph.reserve_vertices(total);
        for (i, rec) in run.nodes().enumerate() {
            let vi = graph.add_vertex(rec.id());
            debug_assert_eq!(vi, i, "timelines must intern densely");
            debug_assert_eq!(
                offsets[rec.id().proc().index()] + rec.id().index() as usize,
                i,
                "timeline position must equal the node's index"
            );
        }
        let at = |n: NodeId| offsets[n.proc().index()] + n.index() as usize;

        // (a) successor edges: consecutive dense indices down each timeline.
        for p in run.context().network().processes() {
            let base = offsets[p.index()];
            for k in 1..run.timeline(p).len() {
                graph.add_edge_indexed(base + k - 1, base + k, 1, LABEL_SUCCESSOR);
            }
        }
        // (b) message edges, both directions, endpoints located arithmetically.
        let mut message_edges = 0usize;
        for m in run.messages() {
            let Some(d) = m.delivery() else { continue };
            let c = m.channel();
            let (lower, upper) = channel_bounds[c.from.index() * procs + c.to.index()]
                .expect("validated runs have bounds for every channel");
            let (si, di) = (at(m.src()), at(d.node));
            graph.add_edge_indexed(si, di, lower, LABEL_SEND);
            graph.add_edge_indexed(di, si, -upper, LABEL_RECV);
            message_edges += 2;
        }
        let last_idx = run
            .context()
            .network()
            .processes()
            .map(|p| {
                let len = run.timeline(p).len();
                if len == 0 {
                    u32::MAX
                } else {
                    (offsets[p.index()] + len - 1) as u32
                }
            })
            .collect();
        BoundsGraph {
            graph,
            message_edges,
            channel_bounds,
            procs,
            last_idx,
        }
    }

    fn build(run: &Run, past: Option<&Past>) -> Self {
        let keep = |n: NodeId| past.is_none_or(|p| p.contains(n));
        let mut graph = WeightedDigraph::new();
        let mut message_edges = 0usize;

        for rec in run.nodes() {
            if keep(rec.id()) {
                graph.add_vertex(rec.id());
            }
        }
        // (a) successor edges. Roll the interned index down each
        // timeline so consecutive edges share one lookup.
        for p in run.context().network().processes() {
            let tl = run.timeline(p);
            for k in 1..tl.len() {
                let prev = tl[k - 1].id();
                let cur = tl[k].id();
                if keep(prev) && keep(cur) {
                    let pi = graph.add_vertex(prev);
                    let ci = graph.add_vertex(cur);
                    graph.add_edge_indexed(pi, ci, 1, LABEL_SUCCESSOR);
                }
            }
        }
        // (b) message edges, both directions: one lookup per endpoint
        // covers the ± pair.
        let (procs, channel_bounds) = channel_table(run);
        for m in run.messages() {
            let Some(d) = m.delivery() else { continue };
            if !(keep(m.src()) && keep(d.node)) {
                continue;
            }
            let c = m.channel();
            let (lower, upper) = channel_bounds[c.from.index() * procs + c.to.index()]
                .expect("validated runs have bounds for every channel");
            let si = graph.add_vertex(m.src());
            let di = graph.add_vertex(d.node);
            graph.add_edge_indexed(si, di, lower, LABEL_SEND);
            graph.add_edge_indexed(di, si, -upper, LABEL_RECV);
            message_edges += 2;
        }
        let last_idx = run
            .context()
            .network()
            .processes()
            .map(|p| {
                run.timeline(p)
                    .iter()
                    .rev()
                    .find_map(|rec| graph.index_of(&rec.id()))
                    .map_or(u32::MAX, |i| i as u32)
            })
            .collect();
        BoundsGraph {
            graph,
            message_edges,
            channel_bounds,
            procs,
            last_idx,
        }
    }

    /// The empty-run graph `GB` of a freshly started stream: one vertex
    /// per initial node, no edges. Grown node-by-node with
    /// [`BoundsGraph::append_node`]; at every prefix the grown graph has
    /// the same vertices, edges and longest paths as
    /// [`BoundsGraph::of_run`] on that prefix.
    pub fn skeleton(run: &Run) -> Self {
        let mut graph = WeightedDigraph::new();
        let mut last_idx = Vec::new();
        for p in run.context().network().processes() {
            last_idx.push(graph.add_vertex(NodeId::initial(p)) as u32);
        }
        let (procs, channel_bounds) = channel_table(run);
        BoundsGraph {
            graph,
            message_edges: 0,
            channel_bounds,
            procs,
            last_idx,
        }
    }

    /// Appends one just-recorded node of `run` to the grown graph: its
    /// vertex, the successor edge from its timeline predecessor, and the
    /// `±` edge pair of every message delivered *at* the node. Because
    /// `GB(r)` only ever gains vertices and edges as a run extends, this
    /// is a monotone delta — the graph's memoized longest-path results
    /// survive and delta-relax (see [`crate::graph`]).
    ///
    /// Must be called once per non-initial node, in recording order, with
    /// the node (and its receipts) already present in `run`.
    pub fn append_node(&mut self, run: &Run, node: NodeId) {
        // Intern each endpoint once: `node` anchors every edge below, and
        // each delivered message contributes a ± pair sharing its source.
        let ni = self.graph.add_vertex(node);
        let pi = self.last_idx[node.proc().index()] as usize;
        debug_assert_eq!(
            self.graph.vertex(pi),
            &NodeId::new(node.proc(), node.index() - 1),
            "append_node out of recording order"
        );
        self.last_idx[node.proc().index()] = ni as u32;
        self.graph.add_edge_indexed(pi, ni, 1, LABEL_SUCCESSOR);
        let rec = run.node(node).expect("appended nodes are recorded");
        for receipt in rec.receipts() {
            let Some(m) = receipt.internal() else {
                continue;
            };
            let mr = run.message(m);
            let c = mr.channel();
            let (lower, upper) = self.channel_bounds[c.from.index() * self.procs + c.to.index()]
                .expect("validated runs have bounds for every channel");
            let si = self.graph.add_vertex(mr.src());
            self.graph.add_edge_indexed(si, ni, lower, LABEL_SEND);
            self.graph.add_edge_indexed(ni, si, -upper, LABEL_RECV);
            self.message_edges += 2;
        }
    }

    /// The underlying weighted digraph.
    pub fn graph(&self) -> &WeightedDigraph<NodeId> {
        &self.graph
    }

    /// Number of appended edges held in the underlying graph's catch-up
    /// log (see [`WeightedDigraph::append_log_len`]).
    pub fn append_log_len(&self) -> usize {
        self.graph.append_log_len()
    }

    /// Settles every memoized longest-path result and reclaims the
    /// catch-up log (see [`WeightedDigraph::compact`]); answers are
    /// unaffected. Returns the number of log entries reclaimed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::PositiveCycle`] if settling detects one
    /// (impossible for graphs of legal runs).
    pub fn compact(&self) -> Result<usize, CoreError> {
        self.graph.compact()
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of edges (successor + 2 per delivered message).
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Number of message-derived edges.
    pub fn message_edge_count(&self) -> usize {
        self.message_edges
    }

    /// Longest-path weights from every vertex **to** `sigma` — the map
    /// `d(·)` of Definition 13. The connected set is the σ-precedence set
    /// `V_σ` (Definition 12).
    ///
    /// # Errors
    ///
    /// Fails if `sigma` is not a vertex, or on a positive cycle
    /// (impossible for graphs of legal runs).
    pub fn longest_to(&self, sigma: NodeId) -> Result<LongestPaths, CoreError> {
        self.graph.longest_to(&sigma)
    }

    /// Longest-path weights from `sigma` to every vertex.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BoundsGraph::longest_to`].
    pub fn longest_from(&self, sigma: NodeId) -> Result<LongestPaths, CoreError> {
        self.graph.longest_from(&sigma)
    }

    /// Memoized [`BoundsGraph::longest_to`]: repeated queries share one
    /// traversal, and on a graph grown with [`BoundsGraph::append_node`]
    /// a stale result is delta-relaxed over just the appended edges
    /// instead of recomputed.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BoundsGraph::longest_to`].
    pub fn longest_to_cached(
        &self,
        sigma: NodeId,
    ) -> Result<std::sync::Arc<LongestPaths>, CoreError> {
        self.graph.longest_to_cached(&sigma)
    }

    /// Memoized [`BoundsGraph::longest_from`]; see
    /// [`BoundsGraph::longest_to_cached`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`BoundsGraph::longest_from`].
    pub fn longest_from_cached(
        &self,
        sigma: NodeId,
    ) -> Result<std::sync::Arc<LongestPaths>, CoreError> {
        self.graph.longest_from_cached(&sigma)
    }

    /// The longest path from `from` to `to`, as `(weight, edges)`;
    /// `Ok(None)` if no path exists.
    ///
    /// By Lemma 1, `from --weight--> to` holds in the run; by the proof of
    /// Theorem 2 this is the **tight** such bound over all runs with this
    /// bounds graph.
    ///
    /// # Errors
    ///
    /// Fails if either endpoint is not a vertex, or on a positive cycle.
    pub fn longest_path(
        &self,
        from: NodeId,
        to: NodeId,
    ) -> Result<Option<(i64, Vec<Edge>)>, CoreError> {
        if !self.graph.contains(&from) || !self.graph.contains(&to) {
            return Err(CoreError::NodeNotInRun {
                detail: format!("{from} or {to} not in bounds graph"),
            });
        }
        let lp = self.graph.longest_from(&from)?;
        let t = self.graph.index_of(&to).expect("checked above");
        match lp.weight(t) {
            Some(w) => Ok(Some((w, lp.path(t).expect("reachable")))),
            None => Ok(None),
        }
    }

    /// The σ-precedence set `V_σ` (Definition 12): all vertices with a path
    /// to `sigma`, as node ids.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BoundsGraph::longest_to`].
    pub fn v_sigma(&self, sigma: NodeId) -> Result<Vec<NodeId>, CoreError> {
        let lp = self.longest_to(sigma)?;
        Ok(lp.connected().map(|i| *self.graph.vertex(i)).collect())
    }

    /// Resolves the message behind a send/recv edge (by its endpoints).
    ///
    /// For a [`LABEL_SEND`] edge pass `(edge.from, edge.to)`; for a
    /// [`LABEL_RECV`] edge pass `(edge.to, edge.from)`.
    pub fn message_between(run: &Run, src: NodeId, dst: NodeId) -> Option<MessageId> {
        run.node(src)?
            .sent()
            .iter()
            .copied()
            .find(|&m| run.message(m).delivery().map(|d| d.node) == Some(dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::{EagerScheduler, RandomScheduler};
    use zigzag_bcm::{Network, ProcessId, SimConfig, Simulator, Time};

    fn two_proc_run(seed: u64, horizon: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(horizon)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn figure6_edge_semantics() {
        // A single delivered message i#1 -> j#1 creates the two edges of
        // Figure 6 plus successor edges.
        let run = two_proc_run(0, 8);
        let gb = BoundsGraph::of_run(&run);
        let i1 = NodeId::new(ProcessId::new(0), 1);
        let j1 = NodeId::new(ProcessId::new(1), 1);
        let gi = gb.graph();
        let e_fwd = gi
            .edges_from(gi.index_of(&i1).unwrap())
            .iter()
            .find(|e| *gi.vertex(e.to) == j1 && e.label == LABEL_SEND)
            .copied()
            .unwrap();
        assert_eq!(e_fwd.weight, 2);
        let e_bwd = gi
            .edges_from(gi.index_of(&j1).unwrap())
            .iter()
            .find(|e| *gi.vertex(e.to) == i1 && e.label == LABEL_RECV)
            .copied()
            .unwrap();
        assert_eq!(e_bwd.weight, -5);
        assert!(gb.message_edge_count() >= 2);
        assert_eq!(
            BoundsGraph::message_between(&run, i1, j1),
            Some(
                run.timeline(ProcessId::new(1))[1].receipts()[0]
                    .internal()
                    .unwrap()
            )
        );
    }

    #[test]
    fn lemma1_path_weights_are_sound() {
        // Every longest-path weight lower-bounds the actual time gap.
        for seed in 0..10 {
            let run = two_proc_run(seed, 40);
            let gb = BoundsGraph::of_run(&run);
            let nodes: Vec<NodeId> = run.nodes().map(|r| r.id()).collect();
            for &a in &nodes {
                let lp = gb.longest_from(a).unwrap();
                for &b in &nodes {
                    if let Some(w) = lp.weight(gb.graph().index_of(&b).unwrap()) {
                        let gap = run.time(b).unwrap().diff(run.time(a).unwrap());
                        assert!(
                            gap >= w,
                            "seed {seed}: path weight {w} exceeds gap {gap} ({a} -> {b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn local_graph_is_induced_by_past() {
        let run = two_proc_run(3, 40);
        let j2 = NodeId::new(ProcessId::new(1), 2);
        let past = run.past(j2);
        let local = BoundsGraph::local(&run, &past);
        let full = BoundsGraph::of_run(&run);
        assert!(local.node_count() < full.node_count());
        assert_eq!(local.node_count(), past.len());
        // All local vertices are past nodes.
        for v in local.graph().vertices() {
            assert!(past.contains(*v));
        }
    }

    #[test]
    fn v_sigma_contains_future_echoes() {
        // Under FFIP, V_σ contains nodes later than σ (paper §B remark):
        // receivers of σ's floods have backward edges to σ.
        let run = two_proc_run(1, 40);
        let gb = BoundsGraph::of_run(&run);
        let i1 = NodeId::new(ProcessId::new(0), 1);
        let vs = gb.v_sigma(i1).unwrap();
        let t1 = run.time(i1).unwrap();
        assert!(
            vs.iter().any(|n| run.time(*n).unwrap() > t1),
            "V_σ misses future nodes"
        );
        assert!(vs.contains(&i1));
    }

    #[test]
    fn longest_path_tightness_shape() {
        // i#1 -> j#1 -> i#2 with eager delivery: longest path from i#1 to
        // i#2 is L+L = 4; gap with eager scheduling is exactly 4.
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(20)));
        sim.external(Time::new(1), i, "kick");
        let run = sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap();
        let gb = BoundsGraph::of_run(&run);
        let i1 = NodeId::new(i, 1);
        let i2 = NodeId::new(i, 2);
        let (w, edges) = gb.longest_path(i1, i2).unwrap().unwrap();
        assert_eq!(w, 4);
        assert_eq!(edges.len(), 2);
        assert_eq!(run.time(i2).unwrap().diff(run.time(i1).unwrap()), 4);
        // Missing endpoints error.
        assert!(gb.longest_path(i1, NodeId::new(i, 99)).is_err());
    }

    #[test]
    fn grown_graph_matches_batch_rebuild_at_every_prefix() {
        use zigzag_bcm::{RunCursor, StreamingRun};
        for seed in 0..4 {
            let run = two_proc_run(seed, 30);
            let mut cursor = RunCursor::new(&run);
            let mut stream = StreamingRun::new(run.context_arc(), run.horizon());
            let mut grown = BoundsGraph::skeleton(stream.run());
            // Keep warm cached queries alive across appends so every
            // append exercises the delta-relaxation path.
            let i1 = NodeId::new(ProcessId::new(0), 1);
            while let Some(ev) = cursor.next_event() {
                let node = stream.append(&ev).unwrap();
                grown.append_node(stream.run(), node);
                let batch = BoundsGraph::of_run(stream.run());
                assert_eq!(grown.node_count(), batch.node_count());
                assert_eq!(grown.edge_count(), batch.edge_count());
                assert_eq!(grown.message_edge_count(), batch.message_edge_count());
                if !stream.run().appears(i1) {
                    continue;
                }
                let warm = grown.longest_to_cached(i1).unwrap();
                let cold = batch.longest_to(i1).unwrap();
                for rec in stream.run().nodes() {
                    let (gi, bi) = (
                        grown.graph().index_of(&rec.id()).unwrap(),
                        batch.graph().index_of(&rec.id()).unwrap(),
                    );
                    assert_eq!(
                        warm.weight(gi),
                        cold.weight(bi),
                        "seed {seed}: grown GB diverged at {} after {node}",
                        rec.id()
                    );
                }
            }
        }
    }

    #[test]
    fn no_positive_cycles_in_legal_runs() {
        for seed in 0..10 {
            let run = two_proc_run(seed, 60);
            let gb = BoundsGraph::of_run(&run);
            let i1 = NodeId::new(ProcessId::new(0), 1);
            assert!(gb.longest_to(i1).is_ok());
            assert!(gb.longest_from(i1).is_ok());
        }
    }
}
