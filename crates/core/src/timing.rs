//! Timing functions over bounds graphs (paper Definitions 9–13 and 23).
//!
//! A *valid timing function* assigns a time to each vertex so that every
//! edge constraint `T(v1) + w(v1, v2) <= T(v2)` holds; such assignments are
//! exactly the node timings of legal runs (Lemma 8). Two canonical timings
//! drive the necessity proofs:
//!
//! * the **slow timing** of a node `σ` (Definition 13): every node of the
//!   σ-precedence set is delayed as much as possible relative to `σ`,
//!   making longest-path bounds tight (Theorem 2);
//! * the **fast timing** of a σ-recognized node `θ'` over `GE(r, σ)`
//!   (Definition 23): everything reachable from `θ'`'s base is squeezed as
//!   early as possible (and everything unreachable pushed `γ` earlier
//!   still), realizing the minimal knowledge-consistent gap (Theorem 4).

use std::collections::BTreeMap;

use zigzag_bcm::{NodeId, Time};

use crate::bounds_graph::BoundsGraph;
use crate::error::CoreError;
use crate::extended_graph::{ExtVertex, ExtendedGraph};

/// A timing assignment for a subset of the basic nodes of a run.
pub type NodeTiming = BTreeMap<NodeId, Time>;

/// Checks Definition 10: for every edge of `gb` with both endpoints in the
/// domain of `t`, `T(v1) + w <= T(v2)`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidTiming`] naming the first violated edge.
pub fn check_valid_timing(gb: &BoundsGraph, t: &NodeTiming) -> Result<(), CoreError> {
    let g = gb.graph();
    for vi in 0..g.vertex_count() {
        let from = *g.vertex(vi);
        let Some(&tf) = t.get(&from) else { continue };
        for e in g.edges_from(vi) {
            let to = *g.vertex(e.to);
            let Some(&tt) = t.get(&to) else { continue };
            if tf.ticks() as i64 + e.weight > tt.ticks() as i64 {
                return Err(CoreError::InvalidTiming {
                    detail: format!(
                        "edge {from} --{}--> {to} violated: T({from})={tf}, T({to})={tt}",
                        e.weight
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Checks Definition 11: `set` is precedence-closed w.r.t. `gb` — for every
/// edge `(v1, v2)` with `v2 ∈ set`, also `v1 ∈ set`.
pub fn is_p_closed(gb: &BoundsGraph, set: &std::collections::BTreeSet<NodeId>) -> bool {
    let g = gb.graph();
    for vi in 0..g.vertex_count() {
        let to = *g.vertex(vi);
        if !set.contains(&to) {
            continue;
        }
        for e in g.edges_to(vi) {
            if !set.contains(g.vertex(e.from)) {
                return false;
            }
        }
    }
    true
}

/// The slow timing of `sigma` (Definition 13), together with its domain —
/// the σ-precedence set `V_σ`.
#[derive(Debug, Clone)]
pub struct SlowTiming {
    /// The node everything is delayed relative to.
    pub sigma: NodeId,
    /// `D`: the weight of the longest path in `GB(r)` ending at `sigma`.
    pub d_max: i64,
    /// `T(σ') = D − d(σ')` for every `σ' ∈ V_σ`.
    pub timing: NodeTiming,
}

/// Computes the slow timing function `T^θ_r` of Definition 13 over the
/// σ-precedence set of `sigma`.
///
/// # Errors
///
/// Fails if `sigma` is not a vertex of `gb` or on a positive cycle.
pub fn slow_timing(gb: &BoundsGraph, sigma: NodeId) -> Result<SlowTiming, CoreError> {
    let lp = gb.longest_to(sigma)?;
    let d_max = lp.max_weight().unwrap_or(0);
    let mut timing = NodeTiming::new();
    for vi in lp.connected() {
        let node = *gb.graph().vertex(vi);
        let d = lp.weight(vi).expect("connected");
        let t = d_max - d;
        debug_assert!(t >= 0, "slow timing below zero");
        timing.insert(node, Time::new(t as u64));
    }
    Ok(SlowTiming {
        sigma,
        d_max,
        timing,
    })
}

/// The fast timing `T_γ[r, σ, θ']` of Definition 23 over `GE(r, σ)`.
#[derive(Debug, Clone)]
pub struct FastTiming {
    /// The γ parameter (how much earlier unreachable nodes are pushed).
    pub gamma: u64,
    /// Timing of every vertex of `GE(r, σ)`.
    values: BTreeMap<ExtVertex, Time>,
    /// Whether the vertex is reachable from `θ'`'s base in `GE(r, σ)`
    /// (the sets `V_σ^r(σ')` / `A_σ^r(σ')`).
    reachable: BTreeMap<ExtVertex, bool>,
}

impl FastTiming {
    /// The assigned time of a vertex.
    pub fn time(&self, v: ExtVertex) -> Option<Time> {
        self.values.get(&v).copied()
    }

    /// The assigned time of an original past node.
    pub fn node_time(&self, n: NodeId) -> Option<Time> {
        self.time(ExtVertex::Node(n))
    }

    /// The assigned time of the auxiliary node `ψ_p`.
    pub fn aux_time(&self, p: zigzag_bcm::ProcessId) -> Option<Time> {
        self.time(ExtVertex::Aux(p))
    }

    /// Whether `v` lies in the reachable region `V_σ^r(σ')` / `A_σ^r(σ')`.
    pub fn is_reachable(&self, v: ExtVertex) -> bool {
        self.reachable.get(&v).copied().unwrap_or(false)
    }

    /// The largest assigned time (useful for choosing horizons).
    pub fn max_time(&self) -> Time {
        self.values.values().copied().max().unwrap_or(Time::ZERO)
    }

    /// Iterator over `(vertex, time)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ExtVertex, Time)> + '_ {
        self.values.iter().map(|(v, t)| (*v, *t))
    }
}

/// Computes the γ-fast timing of `sigma_prime` (the base of `θ'`) in
/// `GE(r, σ)` per Definition 23:
///
/// * reachable vertices get `1 + F1 − F2 + γ − D + d(v)`, where `d` is the
///   longest-path weight from `σ'`;
/// * unreachable original vertices get `F1 − f(v)`, where `f` is the
///   longest-path weight to the observer `σ`;
/// * unreachable auxiliary vertices get `0`.
///
/// The result satisfies every `GE` edge constraint (Lemma 17); this is
/// checked and any internal inconsistency reported as an error.
///
/// # Errors
///
/// Fails if `sigma_prime` is not a past node of the graph's observer, or on
/// a positive cycle.
pub fn fast_timing(
    ge: &ExtendedGraph,
    sigma_prime: NodeId,
    gamma: u64,
) -> Result<FastTiming, CoreError> {
    let g = ge.graph();
    let start = ExtVertex::Node(sigma_prime);
    if g.index_of(&start).is_none() {
        return Err(CoreError::NotRecognized {
            observer: ge.observer(),
            detail: format!("{sigma_prime} is not in past(r, σ)"),
        });
    }
    let lp_from = ge.longest_from_cached(start)?;
    let lp_to_sigma = ge.longest_to_cached(ExtVertex::Node(ge.observer()))?;

    // Pass 1: collect d over the reachable region and f over unreachable
    // originals.
    let mut f1 = i64::MIN;
    let mut f2 = i64::MAX;
    let mut d_min = i64::MAX;
    let mut any_unreachable = false;
    for vi in 0..g.vertex_count() {
        match lp_from.weight(vi) {
            Some(d) => d_min = d_min.min(d),
            None => {
                if let ExtVertex::Node(_) = g.vertex(vi) {
                    let f = lp_to_sigma
                        .weight(vi)
                        .ok_or_else(|| CoreError::InvalidTiming {
                            detail: "past node with no path to the observer (corrupt graph)".into(),
                        })?;
                    any_unreachable = true;
                    f1 = f1.max(f);
                    f2 = f2.min(f);
                }
            }
        }
    }
    if !any_unreachable {
        f1 = 0;
        f2 = 0;
    }
    debug_assert!(d_min <= 0, "d(σ') = 0 so the minimum is at most 0");

    // Pass 2: assign times.
    let reach_base = 1 + f1 - f2 + gamma as i64 - d_min;
    let mut values = BTreeMap::new();
    let mut reachable = BTreeMap::new();
    for vi in 0..g.vertex_count() {
        let v = *g.vertex(vi);
        match lp_from.weight(vi) {
            Some(d) => {
                let t = reach_base + d;
                debug_assert!(t >= 0);
                values.insert(v, Time::new(t as u64));
                reachable.insert(v, true);
            }
            None => {
                let t = match v {
                    ExtVertex::Node(_) => {
                        let f = lp_to_sigma.weight(vi).expect("checked in pass 1");
                        f1 - f
                    }
                    ExtVertex::Aux(_) => 0,
                };
                debug_assert!(t >= 0);
                values.insert(v, Time::new(t as u64));
                reachable.insert(v, false);
            }
        }
    }
    let ft = FastTiming {
        gamma,
        values,
        reachable,
    };

    // Lemma 17 check: every GE edge constraint holds.
    for vi in 0..g.vertex_count() {
        let from = *g.vertex(vi);
        let tf = ft.time(from).expect("assigned").ticks() as i64;
        for e in g.edges_from(vi) {
            let to = *g.vertex(e.to);
            let tt = ft.time(to).expect("assigned").ticks() as i64;
            if tf + e.weight > tt {
                return Err(CoreError::InvalidTiming {
                    detail: format!(
                        "fast timing violates {from} --{}--> {to} (T={tf} vs T={tt})",
                        e.weight
                    ),
                });
            }
        }
    }
    Ok(ft)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::RandomScheduler;
    use zigzag_bcm::{Network, ProcessId, Run, SimConfig, Simulator};

    fn tri_run(seed: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(50)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn actual_times_are_a_valid_timing() {
        // The run's own times satisfy every GB constraint (Lemma 1's dual).
        for seed in 0..5 {
            let run = tri_run(seed);
            let gb = BoundsGraph::of_run(&run);
            let t: NodeTiming = run.nodes().map(|r| (r.id(), r.time())).collect();
            check_valid_timing(&gb, &t).unwrap();
        }
    }

    #[test]
    fn perturbed_times_are_invalid() {
        let run = tri_run(0);
        let gb = BoundsGraph::of_run(&run);
        let mut t: NodeTiming = run.nodes().map(|r| (r.id(), r.time())).collect();
        // Move one delivered receiver before its sender's lower bound.
        let m = run
            .messages()
            .iter()
            .find(|m| m.is_delivered())
            .expect("some delivery");
        let d = m.delivery().unwrap();
        t.insert(d.node, m.sent_at());
        assert!(check_valid_timing(&gb, &t).is_err());
    }

    #[test]
    fn v_sigma_is_p_closed() {
        let run = tri_run(1);
        let gb = BoundsGraph::of_run(&run);
        let sigma = NodeId::new(ProcessId::new(1), 1);
        let vs: BTreeSet<NodeId> = gb.v_sigma(sigma).unwrap().into_iter().collect();
        assert!(is_p_closed(&gb, &vs));
        // Removing an interior node breaks p-closedness whenever some
        // member still has an edge to it.
        let mut broken = vs.clone();
        broken.remove(&sigma);
        let g = gb.graph();
        let has_member_pointing_at_sigma = (0..g.vertex_count()).any(|vi| {
            g.edges_from(vi)
                .iter()
                .any(|e| *g.vertex(e.to) == sigma && broken.contains(g.vertex(e.from)))
        });
        if has_member_pointing_at_sigma {
            assert!(!is_p_closed(&gb, &broken));
        }
    }

    #[test]
    fn slow_timing_is_valid_and_maximal_at_sigma() {
        for seed in 0..5 {
            let run = tri_run(seed);
            let gb = BoundsGraph::of_run(&run);
            let sigma = NodeId::new(ProcessId::new(2), 1);
            if !run.appears(sigma) {
                continue;
            }
            let st = slow_timing(&gb, sigma).unwrap();
            check_valid_timing(&gb, &st.timing).unwrap();
            assert_eq!(
                st.timing.get(&sigma).copied(),
                Some(Time::new(st.d_max as u64))
            );
            // The defining property: T(σ) − T(σ') equals the longest-path
            // weight d(σ').
            let lp = gb.longest_to(sigma).unwrap();
            for (&n, &t) in &st.timing {
                let d = lp.weight(gb.graph().index_of(&n).unwrap()).unwrap();
                assert_eq!(st.d_max - d, t.ticks() as i64);
            }
        }
    }

    #[test]
    fn fast_timing_satisfies_lemma_17() {
        for seed in 0..5 {
            let run = tri_run(seed);
            let sigma = NodeId::new(ProcessId::new(1), 1);
            if !run.appears(sigma) {
                continue;
            }
            let ge = ExtendedGraph::new(&run, sigma);
            let sp = run
                .external_receipt_node(ProcessId::new(0), "kick")
                .unwrap();
            if !ge.past().contains(sp) {
                continue;
            }
            for gamma in [0u64, 3, 10] {
                let ft = fast_timing(&ge, sp, gamma).unwrap();
                assert!(ft.is_reachable(ExtVertex::Node(sp)));
                assert!(ft.node_time(sp).is_some());
                assert!(ft.max_time() >= ft.node_time(sp).unwrap());
                assert_eq!(ft.gamma, gamma);
                // Claim 4 of Lemma 17: every unreachable original is more
                // than γ before every reachable original.
                for (v, t) in ft.iter() {
                    if matches!(v, ExtVertex::Node(_)) && !ft.is_reachable(v) {
                        for (v2, t2) in ft.iter() {
                            if matches!(v2, ExtVertex::Node(_)) && ft.is_reachable(v2) {
                                assert!(
                                    t.ticks() + gamma < t2.ticks(),
                                    "unreachable {v} at {t} not {gamma}-before {v2} at {t2}"
                                );
                            }
                        }
                    }
                }
                // Aux times are queryable.
                let _ = ft.aux_time(ProcessId::new(0));
            }
        }
    }

    #[test]
    fn fast_timing_rejects_foreign_nodes() {
        let run = tri_run(0);
        let sigma = NodeId::new(ProcessId::new(1), 1);
        let ge = ExtendedGraph::new(&run, sigma);
        let foreign = NodeId::new(ProcessId::new(0), 40);
        assert!(matches!(
            fast_timing(&ge, foreign, 0),
            Err(CoreError::NotRecognized { .. })
        ));
    }
}
