//! Zigzag patterns (paper Definition 6) and their weights, with the
//! Theorem 1 guarantee as a checkable API.

use std::fmt;

use zigzag_bcm::{Bounds, NodeId, Run};

use crate::error::CoreError;
use crate::fork::TwoLeggedFork;
use crate::node::GeneralNode;

/// A zigzag pattern `Z = (F_1, …, F_c)`: a sequence of two-legged forks
/// where, for each adjacent pair, `head(F_k)` and `tail(F_{k+1})` lie on
/// the same process timeline with
/// `time_r(head(F_k)) <= time_r(tail(F_{k+1}))`.
///
/// The pattern runs *from* `tail(F_1)` *to* `head(F_c)` and guarantees
/// `tail(F_1) --wt(Z)--> head(F_c)` (Theorem 1), where
/// `wt(Z) = Σ wt(F_k) + S(Z)` and `S(Z)` counts adjacent pairs that are
/// **not** joined at the same basic node (each such pair contributes at
/// least one extra tick, since distinct nodes on a timeline are ≥ 1 apart).
///
/// Whether adjacent forks are joined depends on the run, so the weight is
/// computed by [`ZigzagPattern::validate`], which returns a [`ZigzagReport`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ZigzagPattern {
    forks: Vec<TwoLeggedFork>,
}

/// The result of validating a zigzag pattern in a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZigzagReport {
    /// `basic(tail(F_1), r)` — the *from* endpoint.
    pub from: NodeId,
    /// `basic(head(F_c), r)` — the *to* endpoint.
    pub to: NodeId,
    /// `wt(Z)` as realized in the run (fork weights plus separation count).
    pub weight: i64,
    /// `S(Z)`: how many adjacent fork pairs are not joined.
    pub separations: u32,
    /// The actual time gap `time_r(to) − time_r(from)` (always `>= weight`
    /// by Theorem 1).
    pub gap: i64,
}

impl ZigzagPattern {
    /// Creates a pattern from a non-empty fork sequence.
    ///
    /// Structural conditions that do not depend on a run are checked here:
    /// `head(F_k)` and `tail(F_{k+1})` must lie on the same process.
    /// Run-dependent conditions (ordering of the junction nodes) are
    /// checked by [`ZigzagPattern::validate`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedPattern`] on an empty sequence or a
    /// junction process mismatch.
    pub fn new(forks: Vec<TwoLeggedFork>) -> Result<Self, CoreError> {
        if forks.is_empty() {
            return Err(CoreError::MalformedPattern {
                detail: "empty fork sequence".into(),
            });
        }
        for (k, pair) in forks.windows(2).enumerate() {
            let head = pair[0].head();
            let tail = pair[1].tail();
            if head.proc() != tail.proc() {
                return Err(CoreError::MalformedPattern {
                    detail: format!(
                        "junction {k}: head on {} but next tail on {}",
                        head.proc(),
                        tail.proc()
                    ),
                });
            }
        }
        Ok(ZigzagPattern { forks })
    }

    /// The single-fork pattern.
    pub fn single(fork: TwoLeggedFork) -> Self {
        ZigzagPattern { forks: vec![fork] }
    }

    /// The forks `F_1, …, F_c`.
    pub fn forks(&self) -> &[TwoLeggedFork] {
        &self.forks
    }

    /// Number of forks `c`.
    pub fn len(&self) -> usize {
        self.forks.len()
    }

    /// Patterns are never empty; always `false`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The *from* endpoint `tail(F_1)` as a general node.
    pub fn from_node(&self) -> GeneralNode {
        self.forks[0].tail()
    }

    /// The *to* endpoint `head(F_c)` as a general node.
    pub fn to_node(&self) -> GeneralNode {
        self.forks[self.forks.len() - 1].head()
    }

    /// Sum of fork weights (run-independent part of `wt(Z)`).
    ///
    /// # Errors
    ///
    /// Fails if a leg uses a channel missing from `bounds`.
    pub fn fork_weight_sum(&self, bounds: &Bounds) -> Result<i64, CoreError> {
        self.forks.iter().map(|f| f.weight(bounds)).sum()
    }

    /// Validates the pattern in `run` per Definition 6 and computes
    /// `wt(Z)`; also reports the achieved time gap (Theorem 1 asserts
    /// `gap >= weight` — this method checks it and treats a violation as a
    /// model bug via `debug_assert`, while still reporting honestly).
    ///
    /// # Errors
    ///
    /// Fails if any fork endpoint does not appear in the run, or if a
    /// junction violates `time(head(F_k)) <= time(tail(F_{k+1}))`.
    pub fn validate(&self, run: &Run) -> Result<ZigzagReport, CoreError> {
        let bounds = run.context().bounds();
        let mut weight = 0i64;
        let mut separations = 0u32;

        let mut resolved: Vec<(NodeId, NodeId)> = Vec::with_capacity(self.forks.len());
        for f in &self.forks {
            weight += f.weight(bounds)?;
            resolved.push(f.resolve(run)?);
        }
        for (k, pair) in resolved.windows(2).enumerate() {
            let (_, head_k) = pair[0];
            let (tail_next, _) = pair[1];
            debug_assert_eq!(head_k.proc(), tail_next.proc());
            let t_head = run.time(head_k).expect("resolved");
            let t_tail = run.time(tail_next).expect("resolved");
            if t_head > t_tail {
                return Err(CoreError::MalformedPattern {
                    detail: format!(
                        "junction {k}: head(F_{}) at {t_head} after tail(F_{}) at {t_tail}",
                        k + 1,
                        k + 2
                    ),
                });
            }
            if head_k != tail_next {
                separations += 1;
            }
        }
        weight += separations as i64;

        let from = resolved[0].0;
        let to = resolved[resolved.len() - 1].1;
        let gap = run
            .time(to)
            .expect("resolved")
            .diff(run.time(from).expect("resolved"));
        debug_assert!(gap >= weight, "Theorem 1 violated: gap {gap} < wt {weight}");
        Ok(ZigzagReport {
            from,
            to,
            weight,
            separations,
            gap,
        })
    }

    /// Concatenates two patterns whose junction satisfies the structural
    /// condition (`head` of `self`'s last fork and `tail` of `other`'s
    /// first fork on the same process).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MalformedPattern`] on a junction mismatch.
    pub fn concat(&self, other: &ZigzagPattern) -> Result<ZigzagPattern, CoreError> {
        let mut forks = self.forks.clone();
        forks.extend(other.forks.iter().cloned());
        ZigzagPattern::new(forks)
    }
}

impl fmt::Display for ZigzagPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "zigzag[{} fork(s): ", self.forks.len())?;
        for (k, fork) in self.forks.iter().enumerate() {
            if k > 0 {
                write!(f, " ; ")?;
            }
            write!(f, "{fork}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::{PerChannelScheduler, RandomScheduler};
    use zigzag_bcm::{Channel, NetPath, Network, ProcessId, SimConfig, Simulator, Time};

    /// Figure 2a topology: processes A, B, C, D, E.
    /// C -> A, C -> D, E -> D, E -> B.
    /// Bounds chosen so Equation (1) gives −U_CA + L_CD − U_ED + L_EB = x.
    struct Fig2 {
        a: ProcessId,
        b: ProcessId,
        c: ProcessId,
        d: ProcessId,
        e: ProcessId,
        ctx: zigzag_bcm::Context,
    }

    fn fig2() -> Fig2 {
        let mut nb = Network::builder();
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        let c = nb.add_process("C");
        let d = nb.add_process("D");
        let e = nb.add_process("E");
        nb.add_channel(c, a, 1, 3).unwrap(); // U_CA = 3
        nb.add_channel(c, d, 6, 8).unwrap(); // L_CD = 6
        nb.add_channel(e, d, 1, 2).unwrap(); // U_ED = 2
        nb.add_channel(e, b, 4, 7).unwrap(); // L_EB = 4
        let ctx = nb.build().unwrap();
        Fig2 { a, b, c, d, e, ctx }
    }

    /// Eq (1): −3 + 6 − 2 + 4 = 5, so a --5--> b whenever E's message to D
    /// arrives after C's.
    fn fig2_pattern(f: &Fig2, run: &Run) -> ZigzagPattern {
        let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
        let sigma_e = run.external_receipt_node(f.e, "go_e").unwrap();
        let lower = TwoLeggedFork::new(
            GeneralNode::basic(sigma_c),
            NetPath::new(vec![f.c, f.d]).unwrap(),
            NetPath::new(vec![f.c, f.a]).unwrap(),
        )
        .unwrap();
        let upper = TwoLeggedFork::new(
            GeneralNode::basic(sigma_e),
            NetPath::new(vec![f.e, f.b]).unwrap(),
            NetPath::new(vec![f.e, f.d]).unwrap(),
        )
        .unwrap();
        ZigzagPattern::new(vec![lower, upper]).unwrap()
    }

    fn fig2_run(f: &Fig2, tc: u64, te: u64, seed: u64) -> Run {
        let mut sim = Simulator::new(f.ctx.clone(), SimConfig::with_horizon(Time::new(60)));
        sim.external(Time::new(tc), f.c, "go_c");
        sim.external(Time::new(te), f.e, "go_e");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn fig2_weight_matches_equation_1() {
        let f = fig2();
        // Choose send times so that D surely hears C before E:
        // C's message to D arrives by tc+8; E's to D no earlier than te+1.
        let run = fig2_run(&f, 1, 20, 7);
        let z = fig2_pattern(&f, &run);
        let report = z.validate(&run).unwrap();
        // Both forks contribute −U + L; junction at D is (almost surely)
        // not joined, adding S(Z) = 1. wt = (6-3) + (4-2) + 1 = 6? No:
        // lower fork: head = C->D leg (L=6), tail = C->A leg (U=3): +3.
        // upper fork: head = E->B leg (L=4), tail = E->D leg (U=2): +2.
        // separations: 1 -> total 6. Eq (1) gives 5 + S.
        assert_eq!(report.separations, 1);
        assert_eq!(report.weight, 6);
        assert!(report.gap >= report.weight);
        assert_eq!(report.from.proc(), f.a);
        assert_eq!(report.to.proc(), f.b);
    }

    #[test]
    fn fig2_guarantee_across_seeds() {
        let f = fig2();
        for seed in 0..25 {
            let run = fig2_run(&f, 2, 15, seed);
            let z = fig2_pattern(&f, &run);
            let report = z.validate(&run).unwrap();
            assert!(
                report.gap >= report.weight,
                "Theorem 1 violated at seed {seed}: {report:?}"
            );
        }
    }

    #[test]
    fn junction_order_violation_detected() {
        let f = fig2();
        // Send E's message early and force C's to D to arrive *after* E's:
        // then head(F_1) (C's arrival at D) > tail(F_2) (E's arrival at D),
        // and the pattern is not a zigzag in this run.
        let mut sim = Simulator::new(f.ctx.clone(), SimConfig::with_horizon(Time::new(60)));
        sim.external(Time::new(10), f.c, "go_c");
        sim.external(Time::new(1), f.e, "go_e");
        let mut sched = PerChannelScheduler::new(0.5);
        sched.set_delay(Channel::new(f.c, f.d), 8);
        sched.set_delay(Channel::new(f.e, f.d), 1);
        let run = sim.run(&mut Ffip::new(), &mut sched).unwrap();
        let z = fig2_pattern(&f, &run);
        assert!(matches!(
            z.validate(&run),
            Err(CoreError::MalformedPattern { .. })
        ));
    }

    #[test]
    fn structural_checks_at_construction() {
        assert!(ZigzagPattern::new(vec![]).is_err());
        let f = fig2();
        let run = fig2_run(&f, 1, 20, 0);
        let sigma_c = run.external_receipt_node(f.c, "go_c").unwrap();
        let sigma_e = run.external_receipt_node(f.e, "go_e").unwrap();
        // Junction mismatch: lower head ends at D, upper tail at B.
        let lower = TwoLeggedFork::new(
            GeneralNode::basic(sigma_c),
            NetPath::new(vec![f.c, f.d]).unwrap(),
            NetPath::new(vec![f.c, f.a]).unwrap(),
        )
        .unwrap();
        let upper_bad = TwoLeggedFork::new(
            GeneralNode::basic(sigma_e),
            NetPath::new(vec![f.e, f.d]).unwrap(),
            NetPath::new(vec![f.e, f.b]).unwrap(),
        )
        .unwrap();
        assert!(ZigzagPattern::new(vec![lower, upper_bad]).is_err());
    }

    #[test]
    fn single_and_concat() {
        let f = fig2();
        let run = fig2_run(&f, 1, 20, 3);
        let z = fig2_pattern(&f, &run);
        let first = ZigzagPattern::single(z.forks()[0].clone());
        let second = ZigzagPattern::single(z.forks()[1].clone());
        let joined = first.concat(&second).unwrap();
        assert_eq!(joined.len(), 2);
        assert!(!joined.is_empty());
        assert_eq!(joined.validate(&run).unwrap(), z.validate(&run).unwrap());
        assert!(joined.to_string().contains("zigzag[2 fork(s)"));
        // from/to accessors
        assert_eq!(joined.from_node().proc(), f.a);
        assert_eq!(joined.to_node().proc(), f.b);
        // Mismatched concat fails.
        assert!(second.concat(&second).is_err());
    }
}
