//! The timed-precedence relation `θ --x--> θ'` (paper §3, after Moses–Bloom \[30\]):
//! "`θ` occurs at least `x` time units before `θ'`".
//!
//! `x` may be negative: `θ --(-y)--> θ'` states that `θ'` occurs at most
//! `y` units *before* `θ` — i.e. an upper bound on how much later `θ` is.

use zigzag_bcm::Run;

use crate::error::CoreError;
use crate::node::GeneralNode;

/// A timed-precedence statement `from --x--> to`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Precedence {
    /// The earlier node `θ`.
    pub from: GeneralNode,
    /// The later node `θ'`.
    pub to: GeneralNode,
    /// The required separation `x` (possibly negative).
    pub x: i64,
}

impl Precedence {
    /// Creates the statement `from --x--> to`.
    pub fn new(from: GeneralNode, to: GeneralNode, x: i64) -> Self {
        Precedence { from, to, x }
    }

    /// Whether the statement holds in `run`; see [`satisfies`].
    ///
    /// # Errors
    ///
    /// Fails if a node's chain leaves the recorded horizon.
    pub fn holds_in(&self, run: &Run) -> Result<bool, CoreError> {
        satisfies(run, &self.from, &self.to, self.x)
    }
}

impl std::fmt::Display for Precedence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} --{}--> {}", self.from, self.x, self.to)
    }
}

/// Decides `(R, r) |= θ1 --x--> θ2`: both nodes appear in `r` and
/// `time_r(θ1) + x <= time_r(θ2)`.
///
/// Returns `Ok(false)` when a node's base is missing from the run (the
/// statement simply does not hold), and an error only when resolution is
/// cut off by the horizon (the truth value is genuinely unknown).
///
/// # Errors
///
/// Returns [`CoreError::HorizonTooSmall`] if a chain leaves the prefix.
pub fn satisfies(
    run: &Run,
    theta1: &GeneralNode,
    theta2: &GeneralNode,
    x: i64,
) -> Result<bool, CoreError> {
    let t1 = match theta1.time_in(run) {
        Ok(t) => t,
        Err(CoreError::HorizonTooSmall { detail }) => {
            return Err(CoreError::HorizonTooSmall { detail })
        }
        Err(_) => return Ok(false),
    };
    let t2 = match theta2.time_in(run) {
        Ok(t) => t,
        Err(CoreError::HorizonTooSmall { detail }) => {
            return Err(CoreError::HorizonTooSmall { detail })
        }
        Err(_) => return Ok(false),
    };
    Ok(t1.ticks() as i64 + x <= t2.ticks() as i64)
}

/// The exact separation `time_r(θ2) − time_r(θ1)`, i.e. the largest `x`
/// for which `θ1 --x--> θ2` holds in this particular run.
///
/// # Errors
///
/// Fails if either node does not appear in the run.
pub fn gap(run: &Run, theta1: &GeneralNode, theta2: &GeneralNode) -> Result<i64, CoreError> {
    let t1 = theta1.time_in(run)?;
    let t2 = theta2.time_in(run)?;
    Ok(t2.diff(t1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::EagerScheduler;
    use zigzag_bcm::{Network, NodeId, ProcessId, SimConfig, Simulator, Time};

    fn run() -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        b.add_bidirectional(i, j, 3, 6).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(30)));
        sim.external(Time::new(2), i, "kick");
        sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap()
    }

    #[test]
    fn gap_and_satisfies_agree() {
        let r = run();
        let i1: GeneralNode = NodeId::new(ProcessId::new(0), 1).into(); // t=2
        let j1: GeneralNode = NodeId::new(ProcessId::new(1), 1).into(); // t=5
        assert_eq!(gap(&r, &i1, &j1).unwrap(), 3);
        assert!(satisfies(&r, &i1, &j1, 3).unwrap());
        assert!(!satisfies(&r, &i1, &j1, 4).unwrap());
        // Negative x: j1 occurs at most 3 after i1... i.e. j1 --(-3)--> i1.
        assert!(satisfies(&r, &j1, &i1, -3).unwrap());
        assert!(!satisfies(&r, &j1, &i1, -2).unwrap());
    }

    #[test]
    fn missing_node_means_not_satisfied() {
        let r = run();
        let ghost: GeneralNode = NodeId::new(ProcessId::new(0), 99).into();
        let i1: GeneralNode = NodeId::new(ProcessId::new(0), 1).into();
        assert!(!satisfies(&r, &ghost, &i1, 0).unwrap());
        assert!(!satisfies(&r, &i1, &ghost, 0).unwrap());
        assert!(gap(&r, &ghost, &i1).is_err());
    }

    #[test]
    fn horizon_cutoff_is_an_error() {
        let r = run();
        // Chain that pings far beyond the horizon.
        let mut theta: GeneralNode = NodeId::new(ProcessId::new(0), 1).into();
        for _ in 0..20 {
            theta = theta.hop(ProcessId::new(1)).unwrap();
            theta = theta.hop(ProcessId::new(0)).unwrap();
        }
        let i1: GeneralNode = NodeId::new(ProcessId::new(0), 1).into();
        assert!(matches!(
            satisfies(&r, &theta, &i1, 0),
            Err(CoreError::HorizonTooSmall { .. })
        ));
    }

    #[test]
    fn precedence_struct() {
        let r = run();
        let i1: GeneralNode = NodeId::new(ProcessId::new(0), 1).into();
        let j1: GeneralNode = NodeId::new(ProcessId::new(1), 1).into();
        let p = Precedence::new(i1.clone(), j1.clone(), 2);
        assert!(p.holds_in(&r).unwrap());
        assert!(p.to_string().contains("--2-->"));
    }
}
