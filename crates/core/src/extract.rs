//! Witness extraction: bounds-graph paths ⇒ zigzag patterns.
//!
//! The necessity theorems assert that zigzag patterns *exist*; this module
//! makes them concrete. [`zigzag_from_gb_path`] implements Lemma 5 (every
//! path in `GB(r)` induces a zigzag of equal weight) and
//! [`zigzag_from_ge_path`] its `GE(r, σ)` generalization underlying
//! Lemmas 10–16 (paths through auxiliary nodes induce *σ-visible* zigzags
//! of equal weight). The extracted patterns are independent objects that
//! can be re-validated against the run — the theorem test-suites do exactly
//! that, closing the loop between graph reasoning and communication
//! patterns.

use zigzag_bcm::{NetPath, NodeId, ProcessId, Run};

use crate::bounds_graph::{BoundsGraph, LABEL_RECV, LABEL_SEND, LABEL_SUCCESSOR};
use crate::error::CoreError;
use crate::extended_graph::{ExtendedGraph, LABEL_AUX_CHAN, LABEL_BOUNDARY, LABEL_UNSEEN};
use crate::fork::TwoLeggedFork;
use crate::graph::Edge;
use crate::node::GeneralNode;
use crate::pattern::ZigzagPattern;

/// One resolved step of a bounds-graph path, in walk order.
#[derive(Debug, Clone)]
enum PathStep {
    /// A `+1` timeline-successor edge between consecutive nodes.
    Succ { from: NodeId },
    /// A `+L` edge: a message from `from` delivered at `to`.
    Send { from: NodeId, to_proc: ProcessId },
    /// A `−U` edge: `from` received a message sent at `to` (walking from
    /// receiver back to sender).
    Recv { from: NodeId },
    /// An auxiliary interlude `σ_b → ψ_{l1} → … → ψ_{lk} → σ_s`
    /// (`E' · E'''* · E''`): the boundary node `σ_b` precedes the unseen
    /// delivery of `σ_s`'s message chain along `q = [s, lk, …, l1]`.
    Interlude {
        boundary: NodeId,
        sender: NodeId,
        q: NetPath,
    },
}

fn vertex_node<V: std::hash::Hash + Eq + Clone + Copy>(
    g: &crate::graph::WeightedDigraph<V>,
    i: usize,
) -> V {
    *g.vertex(i)
}

/// Builds the zigzag by the backward induction of Lemma 5 (extended with
/// interlude forks per Lemma 11). Maintains the invariant that the front
/// fork's tail resolves to the current walk position.
fn zigzag_from_steps(end: NodeId, steps: &[PathStep]) -> Result<ZigzagPattern, CoreError> {
    let mut forks: Vec<TwoLeggedFork> = vec![TwoLeggedFork::trivial(GeneralNode::basic(end))];
    for step in steps.iter().rev() {
        match step {
            PathStep::Succ { from } => {
                forks.insert(0, TwoLeggedFork::trivial(GeneralNode::basic(*from)));
            }
            PathStep::Send { from, to_proc } => {
                let head = NetPath::new(vec![from.proc(), *to_proc]).map_err(CoreError::Bcm)?;
                forks.insert(
                    0,
                    TwoLeggedFork::new(
                        GeneralNode::basic(*from),
                        head,
                        NetPath::singleton(from.proc()),
                    )?,
                );
            }
            PathStep::Recv { from } => {
                // Extend the front fork's tail by one hop: the tail
                // currently resolves to the sender; the message lands at
                // `from`.
                let front = forks.remove(0);
                let tail = front
                    .tail_path()
                    .extended(from.proc())
                    .map_err(CoreError::Bcm)?;
                forks.insert(
                    0,
                    TwoLeggedFork::new(front.base().clone(), front.head_path().clone(), tail)?,
                );
                forks.insert(0, TwoLeggedFork::trivial(GeneralNode::basic(*from)));
            }
            PathStep::Interlude {
                boundary,
                sender,
                q,
            } => {
                forks.insert(
                    0,
                    TwoLeggedFork::new(
                        GeneralNode::basic(*sender),
                        NetPath::singleton(sender.proc()),
                        q.clone(),
                    )?,
                );
                // Restore the invariant: the walk position is the boundary
                // node on `q`'s last process. The trivial fork makes the
                // (necessarily non-joined, +1) junction explicit — this +1
                // is exactly the `E'` edge's weight.
                forks.insert(0, TwoLeggedFork::trivial(GeneralNode::basic(*boundary)));
            }
        }
    }
    ZigzagPattern::new(forks)
}

/// Converts a `GB(r)` edge path (as returned by
/// [`BoundsGraph::longest_path`]) into steps.
fn gb_steps(gb: &BoundsGraph, edges: &[Edge]) -> Result<Vec<PathStep>, CoreError> {
    let g = gb.graph();
    edges
        .iter()
        .map(|e| {
            let from = vertex_node(g, e.from);
            let to = vertex_node(g, e.to);
            match e.label {
                LABEL_SUCCESSOR => Ok(PathStep::Succ { from }),
                LABEL_SEND => Ok(PathStep::Send {
                    from,
                    to_proc: to.proc(),
                }),
                LABEL_RECV => Ok(PathStep::Recv { from }),
                other => Err(CoreError::MalformedPattern {
                    detail: format!("unexpected GB edge label {other}"),
                }),
            }
        })
        .collect()
}

/// Lemma 5: converts a path in the basic bounds graph into a zigzag
/// pattern of **equal weight** between the same endpoints.
///
/// `edges` must be a contiguous walk starting at `from` (as produced by
/// [`BoundsGraph::longest_path`]); an empty walk yields the trivial
/// single-fork pattern at `from`.
///
/// # Errors
///
/// Returns [`CoreError::MalformedPattern`] if the edges do not form a GB
/// walk.
pub fn zigzag_from_gb_path(
    gb: &BoundsGraph,
    from: NodeId,
    edges: &[Edge],
) -> Result<ZigzagPattern, CoreError> {
    let end = edges
        .last()
        .map(|e| vertex_node(gb.graph(), e.to))
        .unwrap_or(from);
    let steps = gb_steps(gb, edges)?;
    zigzag_from_steps(end, &steps)
}

/// The tight precedence between two nodes together with its zigzag
/// witness: computes the longest `from → to` path in `GB(r)` and extracts
/// the Lemma 5 pattern. Returns `Ok(None)` if no path constrains the pair.
///
/// By Theorem 2, whenever the system supports `from --x--> to` the
/// returned weight is at least `x`.
///
/// # Errors
///
/// Fails if either node is missing from the graph or on a positive cycle.
pub fn zigzag_for_pair(
    run: &Run,
    from: NodeId,
    to: NodeId,
) -> Result<Option<(i64, ZigzagPattern)>, CoreError> {
    let gb = BoundsGraph::of_run(run);
    match gb.longest_path(from, to)? {
        Some((w, edges)) => {
            let z = zigzag_from_gb_path(&gb, from, &edges)?;
            Ok(Some((w, z)))
        }
        None => Ok(None),
    }
}

/// Converts a `GE(r, σ)` edge path into steps, grouping auxiliary
/// interludes (`E' · E'''* · E''`) into single [`PathStep::Interlude`]s.
///
/// Both endpoints must be original (basic) vertices.
fn ge_steps(ge: &ExtendedGraph, edges: &[Edge]) -> Result<Vec<PathStep>, CoreError> {
    let g = ge.graph();
    let mut steps = Vec::new();
    let mut i = 0;
    while i < edges.len() {
        let e = edges[i];
        let from = vertex_node(g, e.from);
        let to = vertex_node(g, e.to);
        match e.label {
            LABEL_SUCCESSOR => {
                steps.push(PathStep::Succ {
                    from: from.node().expect("successor edges join basic nodes"),
                });
                i += 1;
            }
            LABEL_SEND => {
                steps.push(PathStep::Send {
                    from: from.node().expect("send edges join basic nodes"),
                    to_proc: to.proc(),
                });
                i += 1;
            }
            LABEL_RECV => {
                steps.push(PathStep::Recv {
                    from: from.node().expect("recv edges join basic nodes"),
                });
                i += 1;
            }
            LABEL_BOUNDARY => {
                // E' into aux-land; walk E'''* until the E'' exit.
                let boundary = from.node().expect("E' edges leave basic nodes");
                let mut procs_rev = vec![to.proc()]; // l1
                let mut j = i + 1;
                loop {
                    let Some(e2) = edges.get(j) else {
                        return Err(CoreError::MalformedPattern {
                            detail: "GE path ends inside an auxiliary interlude".into(),
                        });
                    };
                    match e2.label {
                        LABEL_AUX_CHAN => {
                            procs_rev.push(vertex_node(g, e2.to).proc());
                            j += 1;
                        }
                        LABEL_UNSEEN => {
                            let sender = vertex_node(g, e2.to)
                                .node()
                                .expect("E'' edges end at basic nodes");
                            // q = [s, lk, …, l1].
                            let mut procs = vec![sender.proc()];
                            procs.extend(procs_rev.iter().rev().copied());
                            let q = NetPath::new(procs).map_err(CoreError::Bcm)?;
                            steps.push(PathStep::Interlude {
                                boundary,
                                sender,
                                q,
                            });
                            i = j + 1;
                            break;
                        }
                        other => {
                            return Err(CoreError::MalformedPattern {
                                detail: format!("unexpected label {other} inside interlude"),
                            })
                        }
                    }
                }
            }
            other => {
                return Err(CoreError::MalformedPattern {
                    detail: format!("unexpected GE edge label {other} outside interlude"),
                })
            }
        }
    }
    Ok(steps)
}

/// Lemmas 10–16 (basic-endpoint case): converts a path in `GE(r, σ)`
/// between two past nodes into a **σ-visible** zigzag pattern of equal
/// weight.
///
/// Segments through auxiliary nodes become boundary forks whose tails are
/// beyond-the-past message chains; by construction every fork head below
/// the top lies in `past(r, σ)`, so the result satisfies Definition 7 (see
/// [`crate::visible::VisibleZigzag`]).
///
/// # Errors
///
/// Returns [`CoreError::MalformedPattern`] if the edges are not a GE walk
/// between original vertices.
pub fn zigzag_from_ge_path(
    ge: &ExtendedGraph,
    from: NodeId,
    edges: &[Edge],
) -> Result<ZigzagPattern, CoreError> {
    let end = match edges.last() {
        Some(e) => {
            vertex_node(ge.graph(), e.to)
                .node()
                .ok_or_else(|| CoreError::MalformedPattern {
                    detail: "GE path for zigzag extraction must end at a basic node".into(),
                })?
        }
        None => from,
    };
    let steps = ge_steps(ge, edges)?;
    zigzag_from_steps(end, &steps)
}

/// Lemma 16: extends the head of a pattern's top fork along `ext`,
/// producing a pattern to `to_node() · ext` whose weight grows by
/// `L(ext)`.
///
/// # Errors
///
/// Fails if `ext` does not start at the current head's process.
pub fn extend_head(pattern: &ZigzagPattern, ext: &NetPath) -> Result<ZigzagPattern, CoreError> {
    if ext.is_singleton() {
        return Ok(pattern.clone());
    }
    let mut forks = pattern.forks().to_vec();
    let top = forks.pop().expect("patterns are non-empty");
    let head = top.head_path().compose(ext).map_err(CoreError::Bcm)?;
    forks.push(TwoLeggedFork::new(
        top.base().clone(),
        head,
        top.tail_path().clone(),
    )?);
    ZigzagPattern::new(forks)
}

/// Prepends the Lemma 10 "type 1" fork anchoring a pattern at a general
/// node `θ1 = ⟨σ1, p1⟩` whose chain weight is `−U(p1)`: a fork with base
/// and head at `σ1` and tail `θ1`. If `p1` is a singleton this is the
/// identity.
///
/// # Errors
///
/// Fails if the pattern's first fork does not sit at `σ1`'s process.
pub fn anchor_tail(
    pattern: &ZigzagPattern,
    theta1: &GeneralNode,
) -> Result<ZigzagPattern, CoreError> {
    if theta1.is_basic() {
        return Ok(pattern.clone());
    }
    let fork = TwoLeggedFork::new(
        GeneralNode::basic(theta1.base()),
        NetPath::singleton(theta1.base().proc()),
        theta1.path().clone(),
    )?;
    ZigzagPattern::single(fork).concat(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::slow_run;
    use crate::extended_graph::ExtVertex;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::RandomScheduler;
    use zigzag_bcm::{Network, SimConfig, Simulator, Time};

    fn tri_run(seed: u64, horizon: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(horizon)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn lemma5_weight_equality_across_pairs() {
        // Every GB longest path converts to a zigzag that validates with
        // exactly the path's weight.
        for seed in 0..6 {
            let run = tri_run(seed, 35);
            let gb = BoundsGraph::of_run(&run);
            let nodes: Vec<NodeId> = run
                .nodes()
                .map(|r| r.id())
                .filter(|n| !n.is_initial())
                .collect();
            let mut checked = 0;
            for &a in &nodes {
                for &b in &nodes {
                    let Some((w, edges)) = gb.longest_path(a, b).unwrap() else {
                        continue;
                    };
                    let z = zigzag_from_gb_path(&gb, a, &edges).unwrap();
                    let report = match z.validate(&run) {
                        Ok(rep) => rep,
                        // Chains may leave the recorded horizon.
                        Err(CoreError::HorizonTooSmall { .. }) => continue,
                        Err(e) => panic!("seed {seed} {a}->{b}: {e}"),
                    };
                    assert_eq!(report.weight, w, "seed {seed}: weight mismatch {a}->{b}");
                    assert_eq!(report.from, a);
                    assert_eq!(report.to, b);
                    checked += 1;
                }
            }
            assert!(checked > 0, "seed {seed}: nothing checked");
        }
    }

    #[test]
    fn empty_path_is_trivial_pattern() {
        let run = tri_run(0, 30);
        let gb = BoundsGraph::of_run(&run);
        let i1 = NodeId::new(ProcessId::new(0), 1);
        let z = zigzag_from_gb_path(&gb, i1, &[]).unwrap();
        let report = z.validate(&run).unwrap();
        assert_eq!(report.from, i1);
        assert_eq!(report.to, i1);
        assert_eq!(report.weight, 0);
    }

    #[test]
    fn zigzag_for_pair_agrees_with_slow_run_gap() {
        // Theorem 2 round trip: the extracted zigzag weight equals the GB
        // longest path, and the slow run realizes at least that gap
        // exactly when the frontier does not bind (interior pairs).
        for seed in 0..5 {
            let run = tri_run(seed, 40);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let sr = slow_run(&run, sigma).unwrap();
            for (&node, &dd) in &sr.d {
                if node.is_initial() || node == sigma {
                    continue;
                }
                if let Some((w, _z)) = zigzag_for_pair(&run, node, sigma).unwrap() {
                    // GB path weight is a sound lower bound on the
                    // frontier-tight gap realized by the slow run.
                    assert!(w <= dd, "seed {seed}: GB weight {w} exceeds tight {dd}");
                }
            }
        }
    }

    #[test]
    fn ge_paths_extract_visible_zigzags() {
        use crate::visible::VisibleZigzag;
        for seed in 0..6 {
            let run = tri_run(seed, 60);
            let sigma = NodeId::new(ProcessId::new(1), 2);
            if !run.appears(sigma) {
                continue;
            }
            let ge = ExtendedGraph::new(&run, sigma);
            let past = run.past(sigma);
            let sources: Vec<NodeId> = past.iter().filter(|n| !n.is_initial()).collect();
            let mut checked = 0;
            for &a in &sources {
                let lp = ge.longest_from(ExtVertex::Node(a)).unwrap();
                for &b in &sources {
                    let bi = ge.index_of(ExtVertex::Node(b)).unwrap();
                    let Some(w) = lp.weight(bi) else { continue };
                    let edges = lp.path(bi).unwrap();
                    let z = zigzag_from_ge_path(&ge, a, &edges).unwrap();
                    let vz = VisibleZigzag::new(z, sigma);
                    let report = match vz.validate(&run) {
                        Ok(rep) => rep,
                        Err(CoreError::HorizonTooSmall { .. }) => continue,
                        Err(e) => panic!("seed {seed} {a}->{b}: {e}"),
                    };
                    assert_eq!(report.weight, w, "seed {seed}: {a}->{b} weight mismatch");
                    assert_eq!((report.from, report.to), (a, b));
                    checked += 1;
                }
            }
            assert!(checked > 0, "seed {seed}: no GE extractions checked");
        }
    }

    #[test]
    fn anchor_and_extend() {
        let run = tri_run(2, 50);
        let gb = BoundsGraph::of_run(&run);
        let i = ProcessId::new(0);
        let j = ProcessId::new(1);
        let i1 = NodeId::new(i, 1);
        let j1 = NodeId::new(j, 1);
        let Some((w, edges)) = gb.longest_path(i1, j1).unwrap() else {
            return;
        };
        let z = zigzag_from_gb_path(&gb, i1, &edges).unwrap();
        // Anchor the tail at θ1 = ⟨i1, [i, j]⟩ (weight −U_ij = −5)…
        let theta1 = GeneralNode::chain(i1, &[j]).unwrap();
        let anchored = anchor_tail(&z, &theta1).unwrap();
        // …and extend the head by one hop j → k (weight +L_jk = +1).
        let ext = NetPath::new(vec![j, ProcessId::new(2)]).unwrap();
        let extended = extend_head(&anchored, &ext).unwrap();
        match extended.validate(&run) {
            Ok(rep) => {
                assert_eq!(rep.weight, w - 5 + 1);
                assert_eq!(rep.from.proc(), j); // tail is θ1, a j-node
                assert_eq!(rep.to.proc(), ProcessId::new(2));
            }
            Err(CoreError::HorizonTooSmall { .. }) => {}
            Err(e) => panic!("{e}"),
        }
        // Basic anchors and singleton extensions are identities.
        assert_eq!(&anchor_tail(&z, &GeneralNode::basic(i1)).unwrap(), &z);
        assert_eq!(&extend_head(&z, &NetPath::singleton(j)).unwrap(), &z);
    }
}
