//! # zigzag-core — zigzag causality and knowledge of timed precedence
//!
//! This crate implements the contribution of Dan, Manohar and Moses,
//! *On Using Time Without Clocks via Zigzag Causality* (PODC 2017), on top
//! of the [`zigzag_bcm`] substrate:
//!
//! * [`node`] — basic and general nodes `⟨σ, p⟩` and their resolution
//!   `basic(θ, r)` (Definitions 3–4);
//! * [`fork`] / [`pattern`] — two-legged forks and zigzag patterns with
//!   their weights (Definitions 5–6);
//! * [`precedence`] — the timed-precedence relation `θ --x--> θ'`;
//! * [`graph`] — a weighted digraph with longest-path computation
//!   (queue-based Bellman–Ford over a frozen CSR form; bounds graphs have
//!   no positive cycles) and per-source memoization of results;
//! * [`bounds_graph`] — the basic bounds graph `GB(r)` and its local
//!   restriction `GB(r, σ)` (Definitions 8, 14);
//! * [`extended_graph`] — the extended local bounds graph `GE(r, σ)` with
//!   per-process auxiliary nodes (Definition 16);
//! * [`timing`] — valid timing functions, p-closed node sets, the
//!   σ-precedence set `V_σ`, slow timing (Definition 13) and fast timing
//!   (Definition 23);
//! * [`construct`] — run constructions: `r[T]` from a valid timing
//!   (Lemma 8) and the fast run `fast_γ^σ(r, θ')` (Definition 24);
//! * [`visible`] — σ-visible zigzag patterns (Definition 7) and their
//!   validation;
//! * [`extract`] — witnesses: converting bounds-graph paths into zigzag
//!   patterns (Lemma 5) and `GE` constraint-paths into σ-visible zigzags
//!   (Lemmas 10–16);
//! * [`knowledge`] — the decision procedure for `K_σ(θ1 --x--> θ2)`
//!   realizing Theorem 4, with exact max-`x` queries (single and batched)
//!   and checkable witnesses, memoizing shared traversals across queries;
//! * [`analyzer`] — run-level shared analysis: build the per-run state
//!   (message table, `GB(r)`) once and derive per-observer
//!   [`knowledge::KnowledgeEngine`]s from it;
//! * [`incremental`] — the append-only streaming form: grow a run
//!   event-by-event, delta-update the message index, `GB(r)` and the
//!   memoized longest paths, and keep every queried observer's analysis
//!   warm across appends (byte-identical to the batch engine at every
//!   prefix);
//! * [`enumerate`] — exhaustive fork/zigzag enumeration on small runs,
//!   cross-checking the longest-path certificates by brute force;
//! * [`dot`] — Graphviz exports reproducing the paper's Figure 6–8
//!   drawings from live runs.
//!
//! The crate's theorems-as-APIs:
//!
//! | Paper | API |
//! |-------|-----|
//! | Theorem 1 (sufficiency) | [`pattern::ZigzagPattern::validate`] + [`precedence::satisfies`] |
//! | Theorem 2 (necessity) | [`bounds_graph::BoundsGraph::longest_path`] + [`extract::zigzag_from_gb_path`] + [`construct::slow_run`] |
//! | Theorem 4 (visible zigzag) | [`knowledge::KnowledgeEngine`] |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod bounds_graph;
pub mod construct;
pub mod dot;
pub mod enumerate;
pub mod error;
pub mod extended_graph;
pub mod extract;
pub mod fork;
pub mod fx;
pub mod graph;
pub mod incremental;
pub mod knowledge;
pub mod node;
pub mod pattern;
pub mod precedence;
pub mod timing;
pub mod visible;

pub use analyzer::RunAnalyzer;
pub use error::CoreError;
pub use fork::TwoLeggedFork;
pub use incremental::IncrementalEngine;
pub use knowledge::{KnowledgeEngine, MaxXMatrix, ObserverCache, ObserverMode, ObserverState};
pub use node::GeneralNode;
pub use pattern::ZigzagPattern;
pub use visible::VisibleZigzag;
