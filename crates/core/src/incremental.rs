//! The incremental streaming knowledge engine: append events, delta-update
//! the causal analyses, answer queries online.
//!
//! The paper's central claim is that processes extract timing knowledge
//! *as a run unfolds* — zigzag causality lets a node know facts about
//! remote events long before any full-run transcript exists. The batch
//! pipeline ([`crate::analyzer::RunAnalyzer`] over a complete
//! [`Run`]) inverts that: any change to the run means rebuilding the
//! message index, the bounds graphs and every derived engine from
//! scratch. [`IncrementalEngine`] is the append-only form: a run is grown
//! one [`RunEvent`] at a time ([`IncrementalEngine::append_event`] /
//! [`IncrementalEngine::append_batch`]) and every analysis layer is
//! **delta-updated** — after each append, `max_x` / `knows` /
//! `max_x_basic_matrix` / `fast_run_of` answer exactly as a freshly built
//! batch engine on the same prefix would (the prefix-differential oracle
//! in `tests/oracle.rs` pins this byte-for-byte).
//!
//! # The delta-relaxation invariant
//!
//! Two structural facts make per-append cost proportional to the change
//! rather than to the run, and both are load-bearing for correctness:
//!
//! 1. **Monotone growth of the global graphs.** Appending an event only
//!    *adds* — a vertex and successor edge to `GB(r)`, a `±` edge pair
//!    per delivery, a row to the [`MessageIndex`]. Nothing is removed or
//!    re-weighted, so every memoized longest-path result remains a valid
//!    lower bound and any strictly better path must use a new edge. The
//!    graph layer therefore keeps its memoized SPFA results across
//!    appends and *delta-relaxes* a stale result forward from exactly the
//!    new edges' endpoints (the frontier) on its next query — an
//!    incremental SPFA over the frozen-CSR generation plus the appended
//!    overlay (see [`crate::graph`]), instead of invalidate-and-rebuild.
//!
//! 2. **Observer stability.** `past(r, σ)` is determined the moment σ's
//!    receipts are delivered, and a message sent inside that past whose
//!    delivery σ has not seen can only be delivered at a node *outside*
//!    the past — so the "seen delivery" classification behind the
//!    `E''`-edges of `GE(r, σ)` (Definition 16) never changes as the run
//!    extends. `GE(r, σ)`, its SPFA memos, canonical rewrites, fast
//!    timings and chain layouts are all fixed at σ's creation: the engine
//!    builds each observer's state **once**, keeps it warm in a cache,
//!    and serves every later query from it with zero invalidation.
//!
//!    The invariant extends verbatim to the **own-sends-excluded** states
//!    behind `ExcludeOwnSends` coordination probes
//!    ([`IncrementalEngine::engine_excluding_own_sends`]): the excluded
//!    edge set — the `E''` edges of messages whose source *is* σ — is
//!    fixed the moment σ's event (which records its sends) is appended,
//!    and by causality none of those messages can be delivered inside
//!    `past(r, σ)` on any extension, so no excluded edge ever needs to
//!    reappear in another family. The exclude-mode graph is therefore as
//!    append-stable as the full one, and the engine keeps **both** modes
//!    of a queried observer warm in the same LRU cache (keyed by
//!    [`ObserverMode`]) — eliminating the per-decision-node
//!    `ExtendedGraph` rebuild the batch coordination helpers pay.
//!
//! Together: appends touch O(event) state, queries at known observers hit
//! warm caches, and the only per-observer cost is the one-time state
//! build on first query — orders of magnitude below the per-event
//! rebuild the batch pipeline would pay (measured in `benches/online.rs`,
//! recorded in `BENCH_pr3.json`).
//!
//! # Example
//!
//! ```
//! # use zigzag_bcm::{Network, SimConfig, Simulator, Time, NodeId, RunCursor};
//! # use zigzag_bcm::protocols::Ffip;
//! # use zigzag_bcm::scheduler::EagerScheduler;
//! use zigzag_core::incremental::IncrementalEngine;
//! use zigzag_core::knowledge::KnowledgeEngine;
//! use zigzag_core::GeneralNode;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let mut b = Network::builder();
//! # let c = b.add_process("C");
//! # let a = b.add_process("A");
//! # let bb = b.add_process("B");
//! # b.add_channel(c, a, 1, 3)?;
//! # b.add_channel(c, bb, 7, 9)?;
//! # let ctx = b.build()?;
//! # let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
//! # sim.external(Time::new(2), c, "go");
//! # let run = sim.run(&mut Ffip::new(), &mut EagerScheduler)?;
//! // Feed a recorded schedule event-by-event; answers stay current.
//! let mut cursor = RunCursor::new(&run);
//! let mut engine = IncrementalEngine::new(run.context_arc(), run.horizon());
//! while let Some(ev) = cursor.next_event() {
//!     let node = engine.append_event(&ev)?;
//!     // Query at the node that just arose — same answer a fresh batch
//!     // engine on this prefix would give.
//!     let here = GeneralNode::basic(node);
//!     let _ = engine.engine(node)?.max_x(&here, &here)?;
//! }
//! // Figure 1's knowledge threshold, online:
//! let sigma_c = engine.run().external_receipt_node(c, "go").unwrap();
//! let theta_a = GeneralNode::chain(sigma_c, &[a])?;
//! let theta_b = GeneralNode::chain(sigma_c, &[bb])?;
//! let sigma = theta_b.resolve(engine.run())?;
//! assert_eq!(engine.max_x(sigma, &theta_a, &theta_b)?, Some(4));
//! let batch = KnowledgeEngine::new(engine.run(), sigma)?;
//! assert_eq!(batch.max_x(&theta_a, &theta_b)?, Some(4));
//! # Ok(())
//! # }
//! ```

use std::sync::{Arc, Mutex};

use zigzag_bcm::stream::{ReceiptEvent, RunEvent};
use zigzag_bcm::{Context, NodeId, Run, RunCursor, StreamingRun, Time};

use crate::bounds_graph::BoundsGraph;
use crate::construct::FastRun;
use crate::error::CoreError;
use crate::extended_graph::MessageIndex;
use crate::knowledge::{KnowledgeEngine, MaxXMatrix, ObserverCache, ObserverMode, ObserverState};
use crate::node::GeneralNode;

/// The append-only streaming form of the knowledge pipeline; see the
/// [module docs](self).
#[derive(Debug)]
pub struct IncrementalEngine {
    stream: StreamingRun,
    /// Delta-appended per-run message table (shared by every derived
    /// observer state).
    messages: MessageIndex,
    /// The global basic bounds graph `GB(r)`, grown monotonically; its
    /// memoized longest paths delta-relax across appends.
    gb: BoundsGraph,
    /// One lazily built, append-stable analysis state per queried
    /// observer, optionally LRU-bounded (see
    /// [`IncrementalEngine::set_observer_cap`]).
    observers: Mutex<ObserverCache>,
    /// Set when an append failed partway: the grown run may hold a
    /// partially applied node the derived analyses never saw, so every
    /// further operation is refused with [`CoreError::Poisoned`].
    poison: Option<String>,
}

impl IncrementalEngine {
    /// Starts an empty stream over `context` (initial nodes only),
    /// recording up to `horizon`.
    pub fn new(context: impl Into<Arc<Context>>, horizon: Time) -> Self {
        let stream = StreamingRun::new(context, horizon);
        let gb = BoundsGraph::skeleton(stream.run());
        IncrementalEngine {
            stream,
            messages: MessageIndex::default(),
            gb,
            observers: Mutex::new(ObserverCache::new(None)),
            poison: None,
        }
    }

    /// Resumes streaming on top of an already-recorded run prefix — the
    /// snapshot-restore path of a durable session store. The message
    /// index and `GB(r)` are batch-built over the prefix in one pass each
    /// (O(prefix) total, no per-event engine maintenance and no knowledge
    /// queries), and both batch builders are continuation-compatible with
    /// the append path: subsequent [`IncrementalEngine::append_event`]
    /// calls grow them exactly as if the prefix had been streamed in
    /// event by event (pinned by the recovery oracle tier).
    pub fn from_prefix(run: Run) -> Self {
        let messages = MessageIndex::of_run(&run);
        let gb = BoundsGraph::of_run(&run);
        IncrementalEngine {
            stream: StreamingRun::adopt(run),
            messages,
            gb,
            observers: Mutex::new(ObserverCache::new(None)),
            poison: None,
        }
    }

    /// The `(observer, mode)` keys of every currently cached analysis
    /// state, in no particular order — the warm-set manifest a session
    /// snapshot records so recovery can pre-build the same states.
    pub fn observer_keys(&self) -> Vec<(NodeId, ObserverMode)> {
        self.observers
            .lock()
            .expect("observer cache lock")
            .keys()
            .collect()
    }

    /// Bounds the observer-state cache to at most `cap` states, evicting
    /// least-recently-used states on overflow (`None` = unbounded, the
    /// default). Eviction is sound: a re-queried observer's state is
    /// rebuilt warm and answers byte-identically (observer stability —
    /// see [`ObserverCache`]).
    pub fn set_observer_cap(&mut self, cap: Option<usize>) {
        self.observers
            .lock()
            .expect("observer cache lock")
            .set_cap(cap);
    }

    /// Total observer states evicted so far under the LRU bound.
    pub fn observer_evictions(&self) -> u64 {
        self.observers
            .lock()
            .expect("observer cache lock")
            .evictions()
    }

    /// Observer-cache counters `(hits, misses, evictions)` — the
    /// serving-observability triple surfaced by `zigzag-api`'s `Stats`
    /// query (see [`ObserverCache::hits`] / [`ObserverCache::misses`] /
    /// [`ObserverCache::evictions`]).
    pub fn observer_cache_counters(&self) -> (u64, u64, u64) {
        let cache = self.observers.lock().expect("observer cache lock");
        (cache.hits(), cache.misses(), cache.evictions())
    }

    /// Mid-stream maintenance: settles `GB(r)`'s memoized longest-path
    /// results and reclaims the graph layer's append log (which otherwise
    /// carries O(edges) memory — roughly one extra copy of the adjacency
    /// — for as long as warm caches exist on a long stream). Answers are
    /// unaffected. Returns the number of log entries reclaimed.
    ///
    /// # Errors
    ///
    /// Fails on a poisoned engine, or on a positive cycle (impossible for
    /// legal feeds).
    pub fn compact(&self) -> Result<usize, CoreError> {
        self.check_poison()?;
        self.gb.compact()
    }

    /// Number of appended edges currently held in `GB(r)`'s catch-up log.
    pub fn append_log_len(&self) -> usize {
        self.gb.append_log_len()
    }

    /// Whether a failed append has poisoned the engine (see
    /// [`IncrementalEngine::append_event`]).
    pub fn is_poisoned(&self) -> bool {
        self.poison.is_some()
    }

    fn check_poison(&self) -> Result<(), CoreError> {
        match &self.poison {
            Some(detail) => Err(CoreError::Poisoned {
                detail: detail.clone(),
            }),
            None => Ok(()),
        }
    }

    /// Convenience: streams an already-recorded run through a fresh
    /// engine (the replay path — equivalent to appending every event of
    /// [`RunCursor::new`]`(run)` in order).
    ///
    /// # Errors
    ///
    /// Fails if the recorded run is internally inconsistent.
    pub fn ingest(run: &Run) -> Result<Self, CoreError> {
        let mut engine = Self::new(run.context_arc(), run.horizon());
        let mut cursor = RunCursor::new(run);
        while let Some(ev) = cursor.next_event() {
            engine.append_event(&ev)?;
        }
        Ok(engine)
    }

    /// Appends one event: grows the run by its node, settles the
    /// deliveries it observes, indexes the messages it sends, and extends
    /// `GB(r)` — all O(event). Derived observer states are *not*
    /// invalidated (they cannot go stale; see the [module docs](self)).
    /// Returns the created node.
    ///
    /// # Errors
    ///
    /// Fails if the event is inconsistent with the grown prefix
    /// (non-increasing time, unknown process/channel, delivery of an
    /// unknown or already-delivered message). A failed append may leave a
    /// partially applied node in the grown run, so it **poisons** the
    /// engine: every later append or query returns
    /// [`CoreError::Poisoned`], and the engine must be rebuilt from a
    /// consistent feed.
    pub fn append_event(&mut self, ev: &RunEvent) -> Result<NodeId, CoreError> {
        self.check_poison()?;
        let node = match self.stream.append(ev) {
            Ok(node) => node,
            Err(e) => {
                self.poison = Some(e.to_string());
                return Err(CoreError::Bcm(e));
            }
        };
        for r in &ev.receipts {
            if let ReceiptEvent::Message(m) = r {
                self.messages.settle(*m, node);
            }
        }
        self.messages.append_from(self.stream.run());
        self.gb.append_node(self.stream.run(), node);
        Ok(node)
    }

    /// Appends a batch of events in order, returning the created nodes.
    ///
    /// # Errors
    ///
    /// Fails on the first inconsistent event; like
    /// [`IncrementalEngine::append_event`], that failure poisons the
    /// engine (the events before it stay applied, but no further
    /// operation is served).
    pub fn append_batch<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a RunEvent>,
    ) -> Result<Vec<NodeId>, CoreError> {
        events.into_iter().map(|ev| self.append_event(ev)).collect()
    }

    /// The run as grown so far — a genuine [`Run`] prefix, usable by any
    /// batch analysis without cloning. (On a poisoned engine this is the
    /// raw, possibly partially-applied run; queries are refused but the
    /// data stays inspectable for diagnostics.)
    pub fn run(&self) -> &Run {
        self.stream.run()
    }

    /// Number of events appended.
    pub fn event_count(&self) -> usize {
        self.stream.event_count()
    }

    /// The delta-appended per-run message table.
    pub fn message_index(&self) -> &MessageIndex {
        &self.messages
    }

    /// The global basic bounds graph `GB(r)` of the grown prefix. Its
    /// `longest_*_cached` queries delta-relax across appends instead of
    /// recomputing.
    pub fn bounds_graph(&self) -> &BoundsGraph {
        &self.gb
    }

    /// The tight bound on `time(to) − time(from)` supported by the grown
    /// prefix's `GB(r)` — the streaming form of
    /// [`BoundsGraph::longest_path`], served from the delta-relaxed
    /// per-source memo.
    ///
    /// # Errors
    ///
    /// Fails if `from` is not a recorded node, on a positive cycle
    /// (impossible for legal feeds), or on a poisoned engine.
    pub fn tight_bound(&self, from: NodeId, to: NodeId) -> Result<Option<i64>, CoreError> {
        self.check_poison()?;
        let lp = self.gb.longest_from_cached(from)?;
        Ok(self.gb.graph().index_of(&to).and_then(|i| lp.weight(i)))
    }

    /// Number of observer states built so far.
    pub fn observer_count(&self) -> usize {
        self.observers.lock().expect("observer cache lock").len()
    }

    /// The knowledge engine observing at `sigma`, wrapped around the
    /// current prefix. The observer-scoped analysis (graph, SPFA memos,
    /// rewrite/timing/chain caches, construction arena) is built on first
    /// request and reused verbatim after every later append (until
    /// LRU-evicted, if a cap is set — a rebuilt state answers
    /// identically).
    ///
    /// # Errors
    ///
    /// Fails if `sigma` has not (yet) appeared in the stream, or on a
    /// poisoned engine.
    pub fn engine(&self, sigma: NodeId) -> Result<KnowledgeEngine<'_>, CoreError> {
        self.engine_mode(sigma, ObserverMode::Full)
    }

    /// [`IncrementalEngine::engine`] under an explicit [`ObserverMode`]:
    /// the one cached acquisition path for both the full `GE(r, σ)` and
    /// the own-sends-excluded probe view. States of either mode are built
    /// on first request, kept warm across appends (sound for both modes —
    /// see the [module docs](self)), and share the LRU bound.
    ///
    /// # Errors
    ///
    /// Fails if `sigma` has not (yet) appeared in the stream, or on a
    /// poisoned engine.
    pub fn engine_mode(
        &self,
        sigma: NodeId,
        mode: ObserverMode,
    ) -> Result<KnowledgeEngine<'_>, CoreError> {
        self.check_poison()?;
        let state = self
            .observers
            .lock()
            .expect("observer cache lock")
            .get_or_build_mode(sigma, mode, || {
                ObserverState::build_mode(self.stream.run(), sigma, &self.messages, mode)
            })?;
        Ok(KnowledgeEngine::with_state(self.stream.run(), state))
    }

    /// The **warm exclude-mode decision engine** at `sigma`: the
    /// knowledge engine over `GE(r, σ)` minus σ's own sends — what an
    /// in-simulation probe at σ sees — built once per `(stream, σ)` and
    /// served from the same warm cache as the full-mode states
    /// (shorthand for [`IncrementalEngine::engine_mode`] at
    /// [`ObserverMode::ExcludeOwnSends`]). This is the serving path of
    /// `ExcludeOwnSends` coordination decisions; the prefix-differential
    /// oracle pins it byte-identical to a fresh
    /// `ObserverState::build_excluding_own_sends` after every append.
    ///
    /// # Errors
    ///
    /// Fails if `sigma` has not (yet) appeared in the stream, or on a
    /// poisoned engine.
    pub fn engine_excluding_own_sends(
        &self,
        sigma: NodeId,
    ) -> Result<KnowledgeEngine<'_>, CoreError> {
        self.engine_mode(sigma, ObserverMode::ExcludeOwnSends)
    }

    /// Convenience: the exact knowledge threshold `max_x` at observer
    /// `sigma` on the current prefix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnowledgeEngine::max_x`] plus an unknown
    /// observer.
    pub fn max_x(
        &self,
        sigma: NodeId,
        theta1: &GeneralNode,
        theta2: &GeneralNode,
    ) -> Result<Option<i64>, CoreError> {
        self.engine(sigma)?.max_x(theta1, theta2)
    }

    /// Convenience: decides `K_σ(θ1 --x--> θ2)` on the current prefix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`IncrementalEngine::max_x`].
    pub fn knows(
        &self,
        sigma: NodeId,
        theta1: &GeneralNode,
        theta2: &GeneralNode,
        x: i64,
    ) -> Result<bool, CoreError> {
        self.engine(sigma)?.knows(theta1, theta2, x)
    }

    /// Convenience: the dense all-pairs threshold matrix at `sigma` on
    /// the current prefix.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnowledgeEngine::max_x_basic_matrix`] plus an
    /// unknown observer.
    pub fn max_x_basic_matrix(&self, sigma: NodeId) -> Result<MaxXMatrix, CoreError> {
        self.engine(sigma)?.max_x_basic_matrix()
    }

    /// Convenience: constructs the γ-fast run of `theta` at observer
    /// `sigma` against the current prefix, reusing the observer's warm
    /// canonicalization, timing and arena state.
    ///
    /// # Errors
    ///
    /// Same conditions as [`KnowledgeEngine::fast_run_of`] plus an
    /// unknown observer.
    pub fn fast_run_of(
        &self,
        sigma: NodeId,
        theta: &GeneralNode,
        gamma: u64,
        extra_horizon: u64,
    ) -> Result<FastRun, CoreError> {
        self.engine(sigma)?.fast_run_of(theta, gamma, extra_horizon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::RandomScheduler;
    use zigzag_bcm::{Network, ProcessId, SimConfig, Simulator};

    fn tri_run(seed: u64, horizon: u64) -> Run {
        let mut b = Network::builder();
        let i = b.add_process("i");
        let j = b.add_process("j");
        let k = b.add_process("k");
        b.add_bidirectional(i, j, 2, 5).unwrap();
        b.add_bidirectional(j, k, 1, 4).unwrap();
        b.add_bidirectional(i, k, 3, 7).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(horizon)));
        sim.external(Time::new(1), i, "kick");
        sim.run(&mut Ffip::new(), &mut RandomScheduler::seeded(seed))
            .unwrap()
    }

    #[test]
    fn every_prefix_answers_like_a_fresh_batch_engine() {
        for seed in 0..4 {
            let run = tri_run(seed, 28);
            let mut cursor = RunCursor::new(&run);
            let mut inc = IncrementalEngine::new(run.context_arc(), run.horizon());
            while let Some(ev) = cursor.next_event() {
                let node = inc.append_event(&ev).unwrap();
                // The appended node is always a legal observer, and its
                // matrix matches the batch engine on the same prefix.
                let online = inc.max_x_basic_matrix(node).unwrap();
                let batch = KnowledgeEngine::new(inc.run(), node)
                    .unwrap()
                    .max_x_basic_matrix()
                    .unwrap();
                assert_eq!(online, batch, "seed {seed}: diverged at {node}");
            }
            assert_eq!(inc.run(), &run, "seed {seed}: grown run diverged");
            assert_eq!(inc.event_count(), run.node_count() - 3);
        }
    }

    #[test]
    fn observer_states_survive_appends_and_stay_exact() {
        let run = tri_run(1, 40);
        let events = RunCursor::new(&run).collect_events();
        let mut inc = IncrementalEngine::new(run.context_arc(), run.horizon());
        let split = events.len() / 2;
        let mut early_nodes = Vec::new();
        for ev in &events[..split] {
            early_nodes.push(inc.append_event(ev).unwrap());
        }
        // Build (and warm) an early observer's state, answering once.
        let sigma = *early_nodes.last().unwrap();
        let before = inc.max_x_basic_matrix(sigma).unwrap();
        assert_eq!(inc.observer_count(), 1);
        // Grow the run; the state is reused, not rebuilt, and the answers
        // still match a scratch batch engine on the longer prefix.
        for ev in &events[split..] {
            inc.append_event(ev).unwrap();
        }
        assert_eq!(inc.observer_count(), 1);
        let after = inc.max_x_basic_matrix(sigma).unwrap();
        assert_eq!(before, after, "append changed a fixed observer's answers");
        let batch = KnowledgeEngine::new(inc.run(), sigma)
            .unwrap()
            .max_x_basic_matrix()
            .unwrap();
        assert_eq!(after, batch);
        // Fast runs through the warm state equal the free construction.
        let theta = GeneralNode::basic(sigma);
        let online = inc.fast_run_of(sigma, &theta, 0, 15).unwrap();
        let free = crate::construct::fast_run(inc.run(), sigma, &theta, 0, 15).unwrap();
        assert_eq!(online.theta_time, free.theta_time);
        assert_eq!(online.run.node_count(), free.run.node_count());
        for rec in free.run.nodes() {
            assert_eq!(online.run.time(rec.id()), Some(rec.time()));
        }
    }

    #[test]
    fn tight_bounds_delta_relax_across_appends() {
        let run = tri_run(2, 35);
        let events = RunCursor::new(&run).collect_events();
        let mut inc = IncrementalEngine::new(run.context_arc(), run.horizon());
        let i1 = NodeId::new(ProcessId::new(0), 1);
        for ev in &events {
            let node = inc.append_event(ev).unwrap();
            if !inc.run().appears(i1) {
                continue;
            }
            // Keep the cached source warm so each append delta-relaxes.
            let got = inc.tight_bound(i1, node).unwrap();
            let batch = BoundsGraph::of_run(inc.run());
            let want = batch.longest_path(i1, node).unwrap().map(|(w, _)| w);
            assert_eq!(got, want, "delta GB bound diverged at {node}");
        }
    }

    #[test]
    fn lru_bound_caps_states_and_rebuilds_identically() {
        let run = tri_run(3, 40);
        let events = RunCursor::new(&run).collect_events();
        let mut inc = IncrementalEngine::new(run.context_arc(), run.horizon());
        inc.set_observer_cap(Some(2));
        let mut nodes = Vec::new();
        for ev in &events {
            nodes.push(inc.append_event(ev).unwrap());
        }
        // Query many observers; the cache never holds more than 2 states.
        let mut first_answers = Vec::new();
        for &sigma in &nodes {
            first_answers.push(inc.max_x_basic_matrix(sigma).unwrap());
            assert!(inc.observer_count() <= 2, "cap violated at {sigma}");
        }
        assert!(inc.observer_evictions() > 0, "nothing was ever evicted");
        // Re-querying an evicted observer rebuilds a state that answers
        // byte-identically to the evicted one and to a scratch engine.
        for (&sigma, before) in nodes.iter().zip(&first_answers) {
            let again = inc.max_x_basic_matrix(sigma).unwrap();
            assert_eq!(&again, before, "rebuilt state diverged at {sigma}");
            let batch = KnowledgeEngine::new(inc.run(), sigma)
                .unwrap()
                .max_x_basic_matrix()
                .unwrap();
            assert_eq!(again, batch);
            assert!(inc.observer_count() <= 2);
        }
        // cap 0 disables retention entirely; answers are unaffected.
        inc.set_observer_cap(Some(0));
        assert_eq!(inc.observer_count(), 0);
        let sigma = *nodes.last().unwrap();
        assert_eq!(
            inc.max_x_basic_matrix(sigma).unwrap(),
            first_answers[nodes.len() - 1]
        );
        assert_eq!(inc.observer_count(), 0);
    }

    #[test]
    fn compaction_reclaims_the_append_log_without_changing_answers() {
        let run = tri_run(0, 40);
        let events = RunCursor::new(&run).collect_events();
        let mut inc = IncrementalEngine::new(run.context_arc(), run.horizon());
        let i1 = NodeId::new(ProcessId::new(0), 1);
        let mut compacted = 0usize;
        for (k, ev) in events.iter().enumerate() {
            let node = inc.append_event(ev).unwrap();
            if !inc.run().appears(i1) {
                continue;
            }
            // Keep the memoized source warm so the log actually grows...
            let got = inc.tight_bound(i1, node).unwrap();
            let want = BoundsGraph::of_run(inc.run())
                .longest_path(i1, node)
                .unwrap()
                .map(|(w, _)| w);
            assert_eq!(got, want);
            // ...and compact mid-stream every third append.
            if k % 3 == 2 {
                compacted += inc.compact().unwrap();
                assert_eq!(inc.append_log_len(), 0);
            }
        }
        assert!(compacted > 0, "compaction never reclaimed anything");
        // Post-compaction, every answer still equals a scratch rebuild.
        let scratch = BoundsGraph::of_run(inc.run());
        for rec in run.nodes() {
            let want = scratch.longest_path(i1, rec.id()).unwrap().map(|(w, _)| w);
            assert_eq!(inc.tight_bound(i1, rec.id()).unwrap(), want);
        }
    }

    #[test]
    fn unknown_observers_and_bad_events_error() {
        let run = tri_run(0, 25);
        let mut inc = IncrementalEngine::new(run.context_arc(), run.horizon());
        assert!(inc.engine(NodeId::new(ProcessId::new(0), 1)).is_err());
        assert_eq!(inc.observer_count(), 0);
        // An event delivering a message nobody sent is rejected — and the
        // failure poisons the engine (the run may hold a half-applied
        // node the analyses never saw), so everything after it is refused
        // rather than silently desynchronized.
        let bad = RunEvent {
            proc: ProcessId::new(0),
            time: Time::new(3),
            receipts: vec![ReceiptEvent::Message(zigzag_bcm::MessageId::new(4))],
            sends: Vec::new(),
            actions: Vec::new(),
        };
        assert!(!inc.is_poisoned());
        assert!(matches!(inc.append_event(&bad), Err(CoreError::Bcm(_))));
        assert!(inc.is_poisoned());
        let good = RunEvent {
            proc: ProcessId::new(0),
            time: Time::new(9),
            receipts: Vec::new(),
            sends: Vec::new(),
            actions: Vec::new(),
        };
        assert!(matches!(
            inc.append_event(&good),
            Err(CoreError::Poisoned { .. })
        ));
        let half_applied = zigzag_bcm::NodeId::new(ProcessId::new(0), 1);
        assert!(matches!(
            inc.engine(half_applied),
            Err(CoreError::Poisoned { .. })
        ));
        assert!(matches!(
            inc.tight_bound(half_applied, half_applied),
            Err(CoreError::Poisoned { .. })
        ));
        // Ingest replays a whole run in one call.
        let inc = IncrementalEngine::ingest(&run).unwrap();
        assert_eq!(inc.run(), &run);
        assert!(inc.message_index().len() == run.messages().len());
        assert!(!inc.message_index().is_empty());
        assert_eq!(inc.bounds_graph().node_count(), run.node_count());
    }
}
