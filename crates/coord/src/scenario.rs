//! Scenario harness: wires a [`TimedCoordination`] spec into the simulator.
//!
//! A scenario fixes the context, the spontaneous trigger, and the protocol
//! roles of Definition 1: `C` relays the trigger (the FFIP flood *is* the
//! "go" message), `A` acts unconditionally on `C`'s direct message, and `B`
//! consults a pluggable [`BStrategy`] — the optimal visible-zigzag protocol
//! or one of the baselines — at every node.

use zigzag_bcm::process::{Action, Protocol};
use zigzag_bcm::scheduler::Scheduler;
use zigzag_bcm::{Context, Run, SimConfig, Simulator, Time, View};

use crate::error::CoordError;
use crate::spec::{verify, TimedCoordination, Verdict};

/// `B`'s decision rule: whether to perform `b` at the current node.
///
/// Implementations may consult only the [`View`] (the local state) and the
/// common-knowledge bounds; this is enforced socially rather than by the
/// type system (see [`View::run_for_analysis`]), and the knowledge-based
/// strategy provably respects it.
pub trait BStrategy {
    /// Decide whether to act at `view.node()`. Called once per node of
    /// `B`; the harness guarantees `b` fires at most once per run.
    fn should_act(&mut self, spec: &TimedCoordination, view: &View<'_>) -> bool;

    /// Short display name for reports.
    fn name(&self) -> &'static str;
}

/// A Definition 1 scenario: context, spec, trigger time, horizon, plus
/// any additional spontaneous externals the workload calls for (e.g. the
/// kick that sets Figure 2's process `E` in motion).
#[derive(Debug, Clone)]
pub struct Scenario {
    spec: TimedCoordination,
    context: std::sync::Arc<Context>,
    go_time: Time,
    horizon: Time,
    extra_externals: Vec<(Time, zigzag_bcm::ProcessId, String)>,
}

impl Scenario {
    /// Creates a scenario, validating that the required channel `C → A`
    /// exists (unless `C = A`) and all roles name processes of the
    /// network.
    ///
    /// The context may be owned or shared (`Arc<Context>`); sweeps
    /// instantiate one scenario per grid point against a single shared
    /// context.
    ///
    /// # Errors
    ///
    /// Returns [`CoordError::BadScenario`] on a malformed setup.
    pub fn new(
        spec: TimedCoordination,
        context: impl Into<std::sync::Arc<Context>>,
        go_time: Time,
        horizon: Time,
    ) -> Result<Self, CoordError> {
        let context = context.into();
        let net = context.network();
        for (role, p) in [("A", spec.a), ("B", spec.b), ("C", spec.c)] {
            if !net.contains(p) {
                return Err(CoordError::BadScenario {
                    detail: format!("role {role} names unknown process {p}"),
                });
            }
        }
        if spec.a != spec.c && !net.has_channel(spec.c, spec.a) {
            return Err(CoordError::BadScenario {
                detail: format!("no channel {} → {} for the go message", spec.c, spec.a),
            });
        }
        if go_time.is_zero() {
            return Err(CoordError::BadScenario {
                detail: "the trigger cannot arrive at time 0".into(),
            });
        }
        Ok(Scenario {
            spec,
            context,
            go_time,
            horizon,
            extra_externals: Vec::new(),
        })
    }

    /// Schedules an additional spontaneous external input.
    pub fn with_external(
        mut self,
        time: Time,
        proc: zigzag_bcm::ProcessId,
        name: impl Into<String>,
    ) -> Self {
        self.extra_externals.push((time, proc, name.into()));
        self
    }

    /// The specification under test.
    pub fn spec(&self) -> &TimedCoordination {
        &self.spec
    }

    /// The bounded context.
    pub fn context(&self) -> &Context {
        &self.context
    }

    /// Runs the scenario once under the given strategy and scheduler.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (misbehaving scheduler, …).
    pub fn run(
        &self,
        strategy: &mut dyn BStrategy,
        scheduler: &mut dyn Scheduler,
    ) -> Result<Run, CoordError> {
        let mut sim = Simulator::new(
            std::sync::Arc::clone(&self.context),
            SimConfig::with_horizon(self.horizon),
        );
        sim.external(self.go_time, self.spec.c, self.spec.go_name.clone());
        for (t, p, name) in &self.extra_externals {
            sim.external(*t, *p, name.clone());
        }
        let mut protocol = CoordProtocol {
            spec: &self.spec,
            strategy,
        };
        Ok(sim.run(&mut protocol, scheduler)?)
    }

    /// Runs the scenario and verifies the outcome in one step.
    ///
    /// # Errors
    ///
    /// Propagates simulator and verification errors.
    pub fn run_verified(
        &self,
        strategy: &mut dyn BStrategy,
        scheduler: &mut dyn Scheduler,
    ) -> Result<(Run, Verdict), CoordError> {
        let run = self.run(strategy, scheduler)?;
        let verdict = verify(&self.spec, &run)?;
        Ok((run, verdict))
    }
}

/// The Definition 1 protocol: `C` relays, `A` acts on receipt, `B` defers
/// to its strategy.
struct CoordProtocol<'s> {
    spec: &'s TimedCoordination,
    strategy: &'s mut dyn BStrategy,
}

impl CoordProtocol<'_> {
    /// Whether the current node observes `C`'s *direct* go message (or the
    /// trigger itself when `C = A`).
    fn receives_go_message(&self, view: &View<'_>) -> bool {
        let Some(sigma_c) = view.external_node(self.spec.c, &self.spec.go_name) else {
            return false;
        };
        if self.spec.a == self.spec.c {
            return view.node() == sigma_c;
        }
        view.current_receipts()
            .iter()
            .filter_map(|r| r.internal())
            .any(|m| view.sender(m) == Some(sigma_c))
    }
}

impl Protocol for CoordProtocol<'_> {
    fn on_event(&mut self, view: &View<'_>) -> Vec<Action> {
        let me = view.proc();
        let mut out = Vec::new();
        if me == self.spec.c
            && view
                .current_receipts()
                .iter()
                .filter_map(|r| r.external())
                .any(|e| view.external_name(e) == Some(self.spec.go_name.as_str()))
        {
            out.push(Action::new("send_go"));
        }
        if me == self.spec.a
            && !view.already_acted(&self.spec.a_action)
            && self.receives_go_message(view)
        {
            out.push(Action::new(self.spec.a_action.clone()));
        }
        if me == self.spec.b
            && !view.already_acted(&self.spec.b_action)
            && self.strategy.should_act(self.spec, view)
        {
            out.push(Action::new(self.spec.b_action.clone()));
        }
        out
    }
}

/// Support for harnesses that drive the Definition 1 protocol through a
/// hand-built [`Simulator`] (extra externals, custom recording) instead of
/// [`Scenario::run`].
#[doc(hidden)]
pub mod testing {
    use super::*;

    /// Builds the Definition 1 protocol directly.
    pub fn protocol<'s>(
        spec: &'s TimedCoordination,
        strategy: &'s mut dyn BStrategy,
    ) -> impl Protocol + 's {
        CoordProtocol { spec, strategy }
    }
}

/// A strategy that never acts — the trivially correct (and useless)
/// control; abstention always satisfies Definition 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverStrategy;

impl BStrategy for NeverStrategy {
    fn should_act(&mut self, _spec: &TimedCoordination, _view: &View<'_>) -> bool {
        false
    }

    fn name(&self) -> &'static str {
        "never"
    }
}

/// A strategy that acts at `B`'s first non-initial node regardless of any
/// evidence — the unsound control used to check that the verifier and the
/// adversarial schedulers actually catch violations.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecklessStrategy;

impl BStrategy for RecklessStrategy {
    fn should_act(&mut self, _spec: &TimedCoordination, _view: &View<'_>) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "reckless"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::CoordKind;
    use zigzag_bcm::scheduler::{EagerScheduler, RandomScheduler};
    use zigzag_bcm::{Network, ProcessId};

    fn fig1_scenario(x: i64) -> Scenario {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
        Scenario::new(spec, ctx, Time::new(3), Time::new(60)).unwrap()
    }

    #[test]
    fn a_acts_exactly_at_go_receipt() {
        let sc = fig1_scenario(4);
        let (run, verdict) = sc
            .run_verified(&mut NeverStrategy, &mut EagerScheduler)
            .unwrap();
        assert!(verdict.ok);
        let a = ProcessId::new(1);
        let a_node = run.action_node(a, "a").unwrap();
        assert_eq!(run.time(a_node), Some(Time::new(3 + 2)));
        assert_eq!(verdict.b_node, None);
        // C marked its relay.
        assert!(run.action_node(ProcessId::new(0), "send_go").is_some());
    }

    #[test]
    fn reckless_b_gets_caught() {
        // Reckless B acts on its first event; with x = 10 the fig-1 gap
        // (L_CB − U_CA = 4) cannot support it under adversarial schedules.
        let sc = fig1_scenario(10);
        let mut violations = 0;
        for seed in 0..20 {
            let (_, verdict) = sc
                .run_verified(&mut RecklessStrategy, &mut RandomScheduler::seeded(seed))
                .unwrap();
            if !verdict.ok {
                violations += 1;
            }
        }
        assert!(
            violations > 0,
            "verifier never caught the reckless strategy"
        );
    }

    #[test]
    fn scenario_validation() {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, b, 1, 2).unwrap();
        let ctx = nb.build().unwrap();
        // Missing C → A channel.
        let spec = TimedCoordination::new(CoordKind::Late { x: 0 }, a, b, c);
        assert!(Scenario::new(spec.clone(), ctx.clone(), Time::new(1), Time::new(10)).is_err());
        // Unknown process.
        let mut bad = spec.clone();
        bad.a = ProcessId::new(9);
        assert!(Scenario::new(bad, ctx.clone(), Time::new(1), Time::new(10)).is_err());
        // Trigger at time 0.
        let mut ok_spec = spec;
        ok_spec.a = c; // C = A avoids the missing channel
        assert!(Scenario::new(ok_spec.clone(), ctx.clone(), Time::ZERO, Time::new(10)).is_err());
        let sc = Scenario::new(ok_spec, ctx, Time::new(1), Time::new(10)).unwrap();
        assert_eq!(sc.spec().c, ProcessId::new(0));
        let _ = sc.context();
    }

    #[test]
    fn c_equals_a_acts_at_trigger() {
        let mut nb = Network::builder();
        let c = nb.add_process("CA");
        let b = nb.add_process("B");
        nb.add_channel(c, b, 3, 6).unwrap();
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Late { x: 1 }, c, b, c);
        let sc = Scenario::new(spec, ctx, Time::new(2), Time::new(30)).unwrap();
        let (run, verdict) = sc
            .run_verified(&mut NeverStrategy, &mut EagerScheduler)
            .unwrap();
        assert!(verdict.ok);
        assert_eq!(run.time(verdict.a_node.unwrap()), Some(Time::new(2)));
        let never = &mut NeverStrategy;
        assert_eq!(BStrategy::name(never), "never");
        assert_eq!(RecklessStrategy.name(), "reckless");
    }
}
