//! # zigzag-coord — timed coordination without clocks
//!
//! The application layer of the reproduction of Dan, Manohar and Moses,
//! *On Using Time Without Clocks via Zigzag Causality* (PODC 2017): the
//! two timed-coordination problems of Definition 1 and the protocols that
//! solve them.
//!
//! * [`spec`] — `Early⟨b --x--> a⟩` / `Late⟨a --x--> b⟩` specifications
//!   and run verification;
//! * [`scenario`] — the Definition 1 harness (`C` relays a spontaneous
//!   trigger, `A` acts on receipt, `B` consults a pluggable strategy);
//! * [`optimal`] — **Protocol 2**: act exactly when a σ-visible zigzag of
//!   sufficient weight is known to exist (via
//!   [`zigzag_core::knowledge::KnowledgeEngine`]);
//! * [`baseline`] — the asynchronous message-chain strategy (Lamport) and
//!   the simple-fork strategy (Figure 1), which zigzag causality strictly
//!   generalizes;
//! * [`compare`] — quantitative comparisons across strategies and
//!   schedules (how much earlier can `B` act?);
//! * [`family`] — scenario-family batch execution: whole experiment
//!   families ([`Battery`] grids, [`ThresholdJob`] sweeps, heterogeneous
//!   [`CompareJob`] strategy tables) fused into one parallel grid with
//!   folds bit-identical to the serial sequence;
//! * [`stream`] — the online form: replay a schedule as an event feed
//!   through the incremental knowledge engine and report, after every
//!   event, whether `B` already knows enough to act.
//!
//! ## Example
//!
//! ```
//! use zigzag_bcm::{Network, Time};
//! use zigzag_bcm::scheduler::EagerScheduler;
//! use zigzag_coord::{CoordKind, OptimalStrategy, Scenario, TimedCoordination};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Figure 1: C → A [2,5], C → B [9,12]; B may act 4 ticks "after" A
//! // without ever exchanging a message with it.
//! let mut nb = Network::builder();
//! let c = nb.add_process("C");
//! let a = nb.add_process("A");
//! let b = nb.add_process("B");
//! nb.add_channel(c, a, 2, 5)?;
//! nb.add_channel(c, b, 9, 12)?;
//! let ctx = nb.build()?;
//!
//! let spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);
//! let scenario = Scenario::new(spec, ctx, Time::new(3), Time::new(60))?;
//! let (run, verdict) = scenario.run_verified(&mut OptimalStrategy::new(), &mut EagerScheduler)?;
//! assert!(verdict.ok);
//! assert!(verdict.b_node.is_some()); // B acted, with the guarantee intact
//! # let _ = run;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod compare;
pub mod error;
pub mod family;
pub mod optimal;
pub mod scenario;
pub mod spec;
pub mod stream;
pub mod sweep;

pub use baseline::{AsyncChainStrategy, SimpleForkStrategy};
pub use compare::{compare_strategies, StrategySummary};
pub use error::CoordError;
pub use family::{
    compare_grid, compare_grid_with, run_batteries, thresholds, Battery, BatteryOutcome,
    CompareJob, StrategyFactory, ThresholdJob,
};
pub use optimal::{knows_required, OptimalStrategy, PatternStrategy};
pub use scenario::{BStrategy, NeverStrategy, RecklessStrategy, Scenario};
pub use spec::{verify, CoordKind, TimedCoordination, Verdict};
pub use stream::{
    decide_at, decide_at_cached, decide_at_indexed, first_knowledge, first_knowledge_cached,
    first_knowledge_indexed, ProbeSemantics, StepReport, StreamDriver,
};
pub use sweep::{threshold, SweepFamily, Threshold};
