//! Timed-coordination specifications (paper Definition 1) and their
//! verification against recorded runs.

use zigzag_bcm::{NodeId, ProcessId, Run, Time};
use zigzag_core::{CoreError, GeneralNode};

use crate::error::CoordError;

/// Which of the two Definition 1 problems is being solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoordKind {
    /// `Early⟨b --x--> a⟩`: `B` performs `b` at least `x` time units
    /// *before* `a`.
    Early {
        /// The required separation (possibly negative).
        x: i64,
    },
    /// `Late⟨a --x--> b⟩`: `B` performs `b` at least `x` time units
    /// *after* `a`.
    Late {
        /// The required separation (possibly negative).
        x: i64,
    },
    /// `Window⟨a, b⟩`: `b` at least `after` **and** at most `within` time
    /// units after `a` — the two-sided constraint (an extension in the
    /// paper's spirit: both a lower and an upper bound on `t_b − t_a`,
    /// requiring knowledge in *both* directions).
    Window {
        /// Minimum separation `t_b − t_a >= after`.
        after: i64,
        /// Maximum separation `t_b − t_a <= within`.
        within: i64,
    },
}

impl CoordKind {
    /// The (primary) separation parameter `x` (`after` for windows).
    pub fn x(self) -> i64 {
        match self {
            CoordKind::Early { x } | CoordKind::Late { x } => x,
            CoordKind::Window { after, .. } => after,
        }
    }
}

impl std::fmt::Display for CoordKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoordKind::Early { x } => write!(f, "Early⟨b --{x}--> a⟩"),
            CoordKind::Late { x } => write!(f, "Late⟨a --{x}--> b⟩"),
            CoordKind::Window { after, within } => {
                write!(f, "Window⟨a --[{after},{within}]--> b⟩")
            }
        }
    }
}

/// A Definition 1 instance: `A` performs `a` upon receiving a "go" message
/// that `C` sends when the spontaneous external input `go_name` arrives;
/// `B` should perform `b` only if `a` is performed, and only at a time
/// consistent with [`CoordKind`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedCoordination {
    /// The problem variant and separation.
    pub kind: CoordKind,
    /// The process performing `a`.
    pub a: ProcessId,
    /// The process performing `b`.
    pub b: ProcessId,
    /// The process receiving the spontaneous trigger (may equal `a`, in
    /// which case `a` is performed directly at the trigger node — the
    /// paper's "asynchronous instance" of Figure 1).
    pub c: ProcessId,
    /// Name of the external input `µ_go`.
    pub go_name: String,
    /// Name of action `a`.
    pub a_action: String,
    /// Name of action `b`.
    pub b_action: String,
}

impl TimedCoordination {
    /// Creates a spec with the conventional action names `"go"`, `"a"`,
    /// `"b"`.
    pub fn new(kind: CoordKind, a: ProcessId, b: ProcessId, c: ProcessId) -> Self {
        TimedCoordination {
            kind,
            a,
            b,
            c,
            go_name: "go".into(),
            a_action: "a".into(),
            b_action: "b".into(),
        }
    }

    /// The general node at which `a` is performed, given the trigger node
    /// `σ_C`: `σ_C · A` (or `σ_C` itself when `C = A`).
    ///
    /// # Errors
    ///
    /// Fails if the hop `C → A` is a self-loop for distinct names (cannot
    /// happen for valid specs).
    pub fn theta_a(&self, sigma_c: NodeId) -> Result<GeneralNode, CoreError> {
        if self.a == self.c {
            Ok(GeneralNode::basic(sigma_c))
        } else {
            GeneralNode::chain(sigma_c, &[self.a])
        }
    }
}

impl std::fmt::Display for TimedCoordination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} with A={}, B={}, C={} (trigger '{}')",
            self.kind, self.a, self.b, self.c, self.go_name
        )
    }
}

/// The outcome of verifying one run against a [`TimedCoordination`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// The node at which `C` received the trigger, if it did.
    pub sigma_c: Option<NodeId>,
    /// The node at which `a` was performed, if it was.
    pub a_node: Option<NodeId>,
    /// `time(a)`, if performed.
    pub a_time: Option<Time>,
    /// The node at which `b` was performed, if it was.
    pub b_node: Option<NodeId>,
    /// `time(b)`, if performed.
    pub b_time: Option<Time>,
    /// Whether the run satisfies the specification.
    pub ok: bool,
    /// Human-readable reason when `ok` is false.
    pub violation: Option<String>,
    /// Slack over the requirement when both actions happened:
    /// `t_b − t_a − x` for `Late`, `t_a − t_b − x` for `Early`.
    pub margin: Option<i64>,
    /// Whether `b`'s node has `σ_C` in its causal past (Theorem 3 states
    /// this is necessary; the verifier reports it independently).
    pub b_heard_go: bool,
}

/// Verifies a recorded run against the specification (the semantics of
/// "implements" in paper §2.1):
///
/// 1. if the trigger arrived, `a` is performed exactly at `σ_C · A`;
/// 2. `b` is performed only if `a` is performed;
/// 3. if both are performed, their times satisfy the [`CoordKind`].
///
/// # Errors
///
/// Returns [`CoordError::Inconclusive`] when the horizon cuts off `A`'s
/// action node, making the verdict undefined rather than false.
pub fn verify(spec: &TimedCoordination, run: &Run) -> Result<Verdict, CoordError> {
    let sigma_c = run.external_receipt_node(spec.c, &spec.go_name);
    let a_node = run.action_node(spec.a, &spec.a_action);
    let b_node = run.action_node(spec.b, &spec.b_action);
    let a_time = a_node.and_then(|n| run.time(n));
    let b_time = b_node.and_then(|n| run.time(n));
    let b_heard_go = match (b_node, sigma_c) {
        (Some(bn), Some(sc)) => run.past(bn).contains(sc),
        _ => false,
    };

    let mut verdict = Verdict {
        sigma_c,
        a_node,
        a_time,
        b_node,
        b_time,
        ok: true,
        violation: None,
        margin: None,
        b_heard_go,
    };
    let fail = |v: &mut Verdict, reason: String| {
        v.ok = false;
        v.violation.get_or_insert(reason);
    };

    // 1. A acts unconditionally at σ_C · A.
    match sigma_c {
        Some(sc) => {
            let theta_a = spec.theta_a(sc)?;
            match theta_a.resolve(run) {
                Ok(expected) => {
                    if a_node != Some(expected) {
                        fail(
                            &mut verdict,
                            format!("a performed at {a_node:?}, expected {expected} = σ_C · A"),
                        );
                    }
                }
                Err(CoreError::HorizonTooSmall { detail }) => {
                    if b_node.is_some() {
                        // b happened but a's node is unrecorded: cannot
                        // judge the timing.
                        return Err(CoordError::Inconclusive { detail });
                    }
                    // Neither judgeable nor violated: a simply hasn't
                    // happened yet within the prefix.
                    if a_node.is_some() {
                        fail(
                            &mut verdict,
                            "a performed before C's message arrived".into(),
                        );
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        None => {
            if a_node.is_some() {
                fail(&mut verdict, "a performed without a trigger".into());
            }
        }
    }

    // 2–3. b only if a, with the required separation.
    match (a_time, b_time) {
        (None, Some(_)) => fail(&mut verdict, "b performed but a was not".into()),
        (Some(ta), Some(tb)) => {
            let (required, margin) = match spec.kind {
                CoordKind::Late { x } => (tb.diff(ta) >= x, tb.diff(ta) - x),
                CoordKind::Early { x } => (ta.diff(tb) >= x, ta.diff(tb) - x),
                CoordKind::Window { after, within } => {
                    let gap = tb.diff(ta);
                    // Margin: slack to the nearest violated side.
                    (
                        gap >= after && gap <= within,
                        (gap - after).min(within - gap),
                    )
                }
            };
            verdict.margin = Some(margin);
            if !required {
                fail(
                    &mut verdict,
                    format!(
                        "{} violated: t_a = {ta}, t_b = {tb} (margin {margin})",
                        spec.kind
                    ),
                );
            }
        }
        _ => {}
    }
    Ok(verdict)
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::builder::RunBuilder;
    use zigzag_bcm::{Network, Time};

    fn fig1_ctx() -> (zigzag_bcm::Context, ProcessId, ProcessId, ProcessId) {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        (nb.build().unwrap(), c, a, b)
    }

    /// Hand-builds a fig-1 run where a happens at `ta` and b at `tb`.
    fn handmade(ta: u64, tb: u64, with_b: bool) -> (TimedCoordination, Run) {
        let (ctx, c, a, b) = fig1_ctx();
        let spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);
        let mut rb = RunBuilder::new(ctx, Time::new(40));
        let nc = rb.add_node(c, Time::new(1)).unwrap();
        rb.add_external(nc, "go").unwrap();
        let m_a = rb.send(nc, a, Time::new(ta)).unwrap();
        let m_b = rb.send(nc, b, Time::new(tb)).unwrap();
        let na = rb.add_node(a, Time::new(ta)).unwrap();
        rb.deliver(m_a, na).unwrap();
        rb.act(na, "a").unwrap();
        let nb_ = rb.add_node(b, Time::new(tb)).unwrap();
        rb.deliver(m_b, nb_).unwrap();
        if with_b {
            rb.act(nb_, "b").unwrap();
        }
        (spec, rb.finish())
    }

    #[test]
    fn satisfied_late_spec() {
        let (spec, run) = handmade(3, 10, true); // gap 7 >= 4
        let v = verify(&spec, &run).unwrap();
        assert!(v.ok, "{:?}", v.violation);
        assert_eq!(v.margin, Some(3));
        assert!(v.b_heard_go);
        assert!(v.sigma_c.is_some());
    }

    #[test]
    fn violated_late_spec() {
        let (spec, run) = handmade(6, 9, true); // gap 3 < 4
        let v = verify(&spec, &run).unwrap();
        assert!(!v.ok);
        assert_eq!(v.margin, Some(-1));
        assert!(v.violation.unwrap().contains("Late"));
    }

    #[test]
    fn abstention_is_fine() {
        let (spec, run) = handmade(3, 10, false);
        let v = verify(&spec, &run).unwrap();
        assert!(v.ok);
        assert_eq!(v.b_node, None);
        assert_eq!(v.margin, None);
    }

    #[test]
    fn early_spec_direction() {
        let (ctx, c, a, b) = fig1_ctx();
        // Early: b at least 2 before a. Build b at 9, a at 12.
        let spec = TimedCoordination::new(CoordKind::Early { x: 2 }, a, b, c);
        let mut rb = RunBuilder::new(ctx, Time::new(40));
        let nc = rb.add_node(c, Time::new(7)).unwrap();
        rb.add_external(nc, "go").unwrap();
        let m_a = rb.send(nc, a, Time::new(12)).unwrap();
        let m_b = rb.send(nc, b, Time::new(16)).unwrap();
        let na = rb.add_node(a, Time::new(12)).unwrap();
        rb.deliver(m_a, na).unwrap();
        rb.act(na, "a").unwrap();
        let nb_ = rb.add_node(b, Time::new(16)).unwrap();
        rb.deliver(m_b, nb_).unwrap();
        // b at 16 is *after* a: Early(2) violated if b acts there.
        rb.act(nb_, "b").unwrap();
        let run = rb.finish();
        let v = verify(&spec, &run).unwrap();
        assert!(!v.ok);
        assert_eq!(v.margin, Some(12 - 16 - 2));
    }

    #[test]
    fn b_without_a_is_a_violation() {
        let (ctx, c, _a, b) = fig1_ctx();
        let spec = TimedCoordination::new(CoordKind::Late { x: 0 }, _a, b, c);
        let mut rb = RunBuilder::new(ctx, Time::new(40));
        let nc = rb.add_node(c, Time::new(1)).unwrap();
        rb.add_external(nc, "go").unwrap();
        let m_b = rb.send(nc, b, Time::new(10)).unwrap();
        let m_a = rb.send(nc, _a, Time::new(30)).unwrap();
        let nb_ = rb.add_node(b, Time::new(10)).unwrap();
        rb.deliver(m_b, nb_).unwrap();
        rb.act(nb_, "b").unwrap();
        let na = rb.add_node(_a, Time::new(30)).unwrap();
        rb.deliver(m_a, na).unwrap(); // a's node exists but no action
        let run = rb.finish();
        let v = verify(&spec, &run).unwrap();
        assert!(!v.ok);
        // Two violations compound; the first is A failing to act.
        assert!(v.violation.is_some());
    }

    #[test]
    fn quiescent_run_is_vacuously_ok() {
        let (ctx, c, a, b) = fig1_ctx();
        let spec = TimedCoordination::new(CoordKind::Late { x: 4 }, a, b, c);
        let run = RunBuilder::new(ctx, Time::new(10)).finish();
        let v = verify(&spec, &run).unwrap();
        assert!(v.ok);
        assert_eq!(v.sigma_c, None);
        assert!(!v.b_heard_go);
    }

    #[test]
    fn kind_accessors_and_display() {
        assert_eq!(CoordKind::Early { x: 3 }.x(), 3);
        assert_eq!(CoordKind::Late { x: -2 }.x(), -2);
        assert_eq!(
            CoordKind::Window {
                after: 1,
                within: 9
            }
            .x(),
            1
        );
        assert!(CoordKind::Early { x: 3 }.to_string().contains("Early"));
        assert!(CoordKind::Window {
            after: 1,
            within: 9
        }
        .to_string()
        .contains("[1,9]"));
        let (spec, _) = handmade(3, 10, true);
        assert!(spec.to_string().contains("Late"));
        // theta_a with C = A degenerates to σ_C.
        let mut spec2 = spec.clone();
        spec2.a = spec2.c;
        let sc = NodeId::new(spec2.c, 1);
        assert!(spec2.theta_a(sc).unwrap().is_basic());
    }
}
