//! The streaming scenario driver: timed coordination evaluated *online*.
//!
//! The batch harness ([`crate::scenario::Scenario`]) records a complete
//! run and only then asks whether `B` could act. This module drives the
//! same Definition 1 analysis the way the paper describes it happening —
//! as the run unfolds: a recorded schedule is replayed as an event feed
//! ([`zigzag_bcm::RunCursor`]) through an incremental knowledge engine
//! ([`zigzag_core::incremental::IncrementalEngine`]), and after **every**
//! appended event the driver reports whether `B`, standing at its newest
//! node, already knows the required timed precedence. The earliest such
//! node is exactly where Protocol 2 fires.
//!
//! Because the incremental engine answers byte-identically to a batch
//! engine on every prefix, the per-event verdicts are the protocol's real
//! decisions, not approximations. What "the prefix" contains at the
//! deciding node is a genuine semantic choice, pinned by
//! [`ProbeSemantics`]:
//!
//! * [`ProbeSemantics::IncludeOwnSends`] (the default) evaluates a node's
//!   knowledge on the prefix *including* the node's own FFIP sends — the
//!   paper's `GE(r, σ)`, where σ's sends exist the moment σ does. Extra
//!   (unseen-send) edges can only raise thresholds, so on topologies
//!   where `B` has outgoing channels this verdict may hold at a node
//!   where an in-simulation probe still abstains — never the reverse.
//! * [`ProbeSemantics::ExcludeOwnSends`] evaluates on the prefix
//!   *without* the deciding node's own sends — exactly what a strategy
//!   probed mid-simulation sees (its node exists, its sends are not yet
//!   recorded), making the streaming verdict protocol-equivalent on
//!   *every* topology.
//!
//! Where `B` has no outgoing channels (Figures 1 and 2b) the two modes
//! coincide exactly; both are sound either way, since extra own-send
//! evidence is evidence `B` legitimately has.

use std::sync::{Arc, Mutex};

use zigzag_bcm::stream::RunEvent;
use zigzag_bcm::{Context, NodeId, Run, RunCursor, Time};
use zigzag_core::extended_graph::MessageIndex;
use zigzag_core::incremental::IncrementalEngine;
use zigzag_core::knowledge::{ObserverCache, ObserverMode, ObserverState};
use zigzag_core::{GeneralNode, KnowledgeEngine};

use crate::error::CoordError;
use crate::spec::TimedCoordination;

/// Which prefix a coordination decision at node σ is evaluated on; see
/// the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProbeSemantics {
    /// Decide on the prefix including σ's own FFIP sends (the paper's
    /// `GE(r, σ)`). The default: maximal sound evidence, may fire earlier
    /// than an in-simulation probe where `B` has outgoing channels.
    #[default]
    IncludeOwnSends,
    /// Decide on the prefix excluding σ's own sends — the in-simulation
    /// probe's view; protocol-equivalent on every topology.
    ExcludeOwnSends,
}

impl ProbeSemantics {
    /// The [`ObserverMode`] whose `GE(r, σ)` this probe decides on — the
    /// bridge into the core layer's mode-keyed observer-state caches.
    pub fn mode(self) -> ObserverMode {
        match self {
            ProbeSemantics::IncludeOwnSends => ObserverMode::Full,
            ProbeSemantics::ExcludeOwnSends => ObserverMode::ExcludeOwnSends,
        }
    }
}

/// The one decision-state construction site: the knowledge engine a
/// coordination decision at `sigma` runs on, under `probe`, optionally
/// served from (and retained in) a mode-keyed [`ObserverCache`]. Every
/// batch decision helper and the service facade route through here, so
/// cached and uncached decisions share one code path — byte-identical by
/// the observer-stability invariant (states of either mode never go
/// stale; see `zigzag_core::incremental`).
fn probe_engine<'r>(
    run: &'r Run,
    sigma: NodeId,
    probe: ProbeSemantics,
    index: &MessageIndex,
    cache: Option<&Mutex<ObserverCache>>,
) -> Result<KnowledgeEngine<'r>, CoordError> {
    let mode = probe.mode();
    let state = match cache {
        Some(cache) => cache
            .lock()
            .expect("decision state cache lock")
            .get_or_build_mode(sigma, mode, || {
                ObserverState::build_mode(run, sigma, index, mode)
            })?,
        None => Arc::new(ObserverState::build_mode(run, sigma, index, mode)?),
    };
    Ok(KnowledgeEngine::with_state(run, state))
}

/// The Protocol 2 decision at `sigma` under the given probe semantics, on
/// any run containing `sigma` — the batch form shared by the streaming
/// driver and the service facade's `CoordDecision` query. Returns `false`
/// (abstain) when the trigger is absent or the required evidence is not
/// σ-recognized, exactly like the in-protocol strategy.
///
/// # Errors
///
/// Fails only on model-level inconsistencies (`sigma` not in `run`).
pub fn decide_at(
    spec: &TimedCoordination,
    run: &Run,
    sigma: NodeId,
    probe: ProbeSemantics,
) -> Result<bool, CoordError> {
    decide_at_indexed(
        spec,
        run,
        sigma,
        probe,
        &zigzag_core::extended_graph::MessageIndex::of_run(run),
    )
}

/// [`decide_at`] against a caller-supplied per-run [`MessageIndex`] —
/// the index is decision-invariant, so batteries of decisions over one
/// run (see [`first_knowledge`], or a facade session with a cached
/// index) should resolve the message table once and share it.
///
/// [`MessageIndex`]: zigzag_core::extended_graph::MessageIndex
///
/// # Errors
///
/// Fails only on model-level inconsistencies (`sigma` not in `run`).
pub fn decide_at_indexed(
    spec: &TimedCoordination,
    run: &Run,
    sigma: NodeId,
    probe: ProbeSemantics,
    index: &zigzag_core::extended_graph::MessageIndex,
) -> Result<bool, CoordError> {
    decide_at_cached(spec, run, sigma, probe, index, None)
}

/// [`decide_at_indexed`] with an optional caller-held decision-state
/// cache: `Some(cache)` serves (and retains) the per-node
/// [`ObserverState`] — full or own-sends-excluded, keyed by mode — from
/// the cache instead of rebuilding it, which is what a serving layer
/// issuing `CoordDecision` at high rate wants. Retention is sound and
/// byte-identical by observer stability (both modes — see
/// `zigzag_core::incremental`); `None` builds fresh, the one-shot batch
/// behavior.
///
/// # Errors
///
/// Fails only on model-level inconsistencies (`sigma` not in `run`).
pub fn decide_at_cached(
    spec: &TimedCoordination,
    run: &Run,
    sigma: NodeId,
    probe: ProbeSemantics,
    index: &MessageIndex,
    cache: Option<&Mutex<ObserverCache>>,
) -> Result<bool, CoordError> {
    let Some(sigma_c) = run.external_receipt_node(spec.c, &spec.go_name) else {
        return Ok(false);
    };
    let engine = probe_engine(run, sigma, probe, index, cache)?;
    decide_with(spec, &engine, sigma_c, sigma)
}

/// The shared decision core: `B` acts at `sigma` iff the spec's
/// precedence is known there (Protocol 1's knowledge test, via
/// [`crate::optimal::knows_required`]).
fn decide_with(
    spec: &TimedCoordination,
    engine: &KnowledgeEngine<'_>,
    sigma_c: NodeId,
    sigma: NodeId,
) -> Result<bool, CoordError> {
    let Ok(theta_a) = spec.theta_a(sigma_c) else {
        return Ok(false);
    };
    let theta_b = GeneralNode::basic(sigma);
    // An unrecognized or initial anchor means the evidence simply is not
    // there: abstain, exactly like the in-protocol strategy.
    Ok(crate::optimal::knows_required(engine, spec.kind, &theta_a, &theta_b).unwrap_or(false))
}

/// The batch form of the streaming driver's verdict: the earliest
/// `B`-node of `run` at which the spec's precedence is known under
/// `probe`, plus the trigger node. By observer stability (each node's
/// decision depends only on its own past), this equals the
/// [`StreamDriver`]'s `first_known` after replaying `run` with the same
/// probe semantics — and under [`ProbeSemantics::ExcludeOwnSends`] it
/// equals the in-simulation Protocol 2 action node on every topology.
///
/// # Errors
///
/// Fails only on model-level inconsistencies in `run`.
pub fn first_knowledge(
    spec: &TimedCoordination,
    run: &Run,
    probe: ProbeSemantics,
) -> Result<(Option<NodeId>, Option<NodeId>), CoordError> {
    first_knowledge_indexed(
        spec,
        run,
        probe,
        &zigzag_core::extended_graph::MessageIndex::of_run(run),
    )
}

/// [`first_knowledge`] against a caller-supplied per-run
/// [`MessageIndex`] (resolved once, shared by every per-node decision).
///
/// [`MessageIndex`]: zigzag_core::extended_graph::MessageIndex
///
/// # Errors
///
/// Fails only on model-level inconsistencies in `run`.
pub fn first_knowledge_indexed(
    spec: &TimedCoordination,
    run: &Run,
    probe: ProbeSemantics,
    index: &zigzag_core::extended_graph::MessageIndex,
) -> Result<(Option<NodeId>, Option<NodeId>), CoordError> {
    first_knowledge_cached(spec, run, probe, index, None)
}

/// [`first_knowledge_indexed`] with an optional caller-held
/// decision-state cache (see [`decide_at_cached`]): each `B`-node's
/// decision state is served warm instead of rebuilt, so a session
/// answering repeated `CoordDecision` queries — or interleaving them with
/// knowledge queries at the same observers — pays each state's
/// construction once.
///
/// # Errors
///
/// Fails only on model-level inconsistencies in `run`.
pub fn first_knowledge_cached(
    spec: &TimedCoordination,
    run: &Run,
    probe: ProbeSemantics,
    index: &MessageIndex,
    cache: Option<&Mutex<ObserverCache>>,
) -> Result<(Option<NodeId>, Option<NodeId>), CoordError> {
    let sigma_c = run.external_receipt_node(spec.c, &spec.go_name);
    if sigma_c.is_none() {
        return Ok((None, None));
    }
    for rec in run.timeline(spec.b) {
        if rec.id().is_initial() {
            continue;
        }
        if decide_at_cached(spec, run, rec.id(), probe, index, cache)? {
            return Ok((Some(rec.id()), sigma_c));
        }
    }
    Ok((None, sigma_c))
}

/// What one appended event meant for the coordination problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// The node the event created.
    pub node: NodeId,
    /// Its time.
    pub time: Time,
    /// `Some(decision)` when the node is a `B`-node: whether `B` knows
    /// the spec's precedence right there; `None` for non-`B` nodes.
    pub b_knows: Option<bool>,
}

/// Replays schedules as event feeds and answers the coordination question
/// after every event; see the [module docs](self).
#[derive(Debug)]
pub struct StreamDriver {
    spec: TimedCoordination,
    engine: IncrementalEngine,
    probe: ProbeSemantics,
    sigma_c: Option<NodeId>,
    first_known: Option<NodeId>,
}

impl StreamDriver {
    /// Starts a driver for `spec` over an empty stream, deciding with the
    /// default [`ProbeSemantics::IncludeOwnSends`].
    pub fn new(spec: TimedCoordination, context: Arc<Context>, horizon: Time) -> Self {
        Self::over(spec, IncrementalEngine::new(context, horizon))
    }

    /// Wraps a driver around an already-configured (but still empty)
    /// incremental engine — the facade path, where cache policy is set on
    /// the engine before streaming begins.
    pub fn over(spec: TimedCoordination, engine: IncrementalEngine) -> Self {
        StreamDriver {
            spec,
            engine,
            probe: ProbeSemantics::default(),
            sigma_c: None,
            first_known: None,
        }
    }

    /// Resumes a driver over an engine already holding a run prefix,
    /// seeding the decision state a snapshot recorded: the trigger node
    /// `σ_C` (if it streamed past before the snapshot) and the earliest
    /// `B`-node whose knowledge held. Both are pure functions of the
    /// prefix, so a resumed driver steps exactly like one that streamed
    /// the prefix itself.
    pub fn resume(
        spec: TimedCoordination,
        engine: IncrementalEngine,
        probe: ProbeSemantics,
        sigma_c: Option<NodeId>,
        first_known: Option<NodeId>,
    ) -> Self {
        StreamDriver {
            spec,
            engine,
            probe,
            sigma_c,
            first_known,
        }
    }

    /// Selects the probe semantics (builder style); see the
    /// [module docs](self).
    pub fn with_probe(mut self, probe: ProbeSemantics) -> Self {
        self.probe = probe;
        self
    }

    /// The probe semantics decisions are evaluated under.
    pub fn probe(&self) -> ProbeSemantics {
        self.probe
    }

    /// The specification being evaluated.
    pub fn spec(&self) -> &TimedCoordination {
        &self.spec
    }

    /// The underlying incremental engine (and through it, the grown run).
    pub fn engine(&self) -> &IncrementalEngine {
        &self.engine
    }

    /// The earliest `B`-node at which the required knowledge held, if it
    /// has — where Protocol 2 performs `b`.
    pub fn first_known(&self) -> Option<NodeId> {
        self.first_known
    }

    /// The trigger node `σ_C`, once it has streamed past.
    pub fn sigma_c(&self) -> Option<NodeId> {
        self.sigma_c
    }

    /// Appends one event and evaluates `B`'s knowledge if the event is a
    /// `B`-node.
    ///
    /// # Errors
    ///
    /// Fails if the event is inconsistent with the grown prefix.
    pub fn step(&mut self, ev: &RunEvent) -> Result<StepReport, CoordError> {
        let node = self.engine.append_event(ev)?;
        if self.sigma_c.is_none() {
            self.sigma_c = self
                .engine
                .run()
                .external_receipt_node(self.spec.c, &self.spec.go_name);
        }
        let b_knows = (node.proc() == self.spec.b)
            .then(|| self.decide_at(node))
            .transpose()?;
        if b_knows == Some(true) && self.first_known.is_none() {
            self.first_known = Some(node);
        }
        Ok(StepReport {
            node,
            time: ev.time,
            b_knows,
        })
    }

    /// Protocol 2's decision at `sigma` on the current prefix: act iff
    /// the spec's precedence is known. Mirrors
    /// [`crate::optimal::OptimalStrategy`] — through the incremental
    /// engine's warm observer state, in **both** probe semantics: the
    /// own-sends-excluded state is as append-stable as the full one (see
    /// `zigzag_core::incremental`), so `ExcludeOwnSends` decisions run on
    /// [`IncrementalEngine::engine_mode`]'s cached exclude-mode state
    /// instead of rebuilding `GE(r, σ)` minus σ's sends per decision.
    fn decide_at(&self, sigma: NodeId) -> Result<bool, CoordError> {
        let Some(sigma_c) = self.sigma_c else {
            return Ok(false); // no trigger yet: nothing to know
        };
        let engine = self.engine.engine_mode(sigma, self.probe.mode())?;
        decide_with(&self.spec, &engine, sigma_c, sigma)
    }

    /// Replays a whole recorded run through a fresh driver, returning the
    /// per-event reports and the driver (holding the grown engine and the
    /// earliest-knowledge verdict).
    ///
    /// # Errors
    ///
    /// Fails if the recorded run is internally inconsistent.
    pub fn replay(
        spec: TimedCoordination,
        run: &Run,
    ) -> Result<(Vec<StepReport>, Self), CoordError> {
        Self::replay_with(spec, run, ProbeSemantics::default())
    }

    /// [`StreamDriver::replay`] under explicit probe semantics.
    ///
    /// # Errors
    ///
    /// Fails if the recorded run is internally inconsistent.
    pub fn replay_with(
        spec: TimedCoordination,
        run: &Run,
        probe: ProbeSemantics,
    ) -> Result<(Vec<StepReport>, Self), CoordError> {
        let mut driver = Self::new(spec, run.context_arc(), run.horizon()).with_probe(probe);
        let mut cursor = RunCursor::new(run);
        let mut reports = Vec::with_capacity(cursor.remaining());
        while let Some(ev) = cursor.next_event() {
            reports.push(driver.step(&ev)?);
        }
        Ok((reports, driver))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::OptimalStrategy;
    use crate::scenario::Scenario;
    use crate::spec::CoordKind;
    use zigzag_bcm::scheduler::{EagerScheduler, RandomScheduler};
    use zigzag_bcm::Network;
    use zigzag_core::KnowledgeEngine;

    /// Figure 1: C → A `[2,5]`, C → B `[9,12]` (fork weight 4); B has no
    /// outgoing channels, so the streaming verdict and the in-simulation
    /// strategy coincide exactly.
    fn fig1(x: i64) -> Scenario {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
        Scenario::new(spec, ctx, Time::new(3), Time::new(80)).unwrap()
    }

    #[test]
    fn streaming_decision_matches_the_batch_protocol() {
        for (x, seeds) in [(4i64, 0..8u64), (5, 0..4)] {
            let sc = fig1(x);
            for seed in seeds {
                let (run, verdict) = sc
                    .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                    .unwrap();
                let (reports, driver) = StreamDriver::replay(sc.spec().clone(), &run).unwrap();
                assert_eq!(
                    driver.first_known(),
                    verdict.b_node,
                    "x={x} seed {seed}: online decision diverged from the protocol"
                );
                assert_eq!(reports.len(), run.node_count() - 3);
                // Every B verdict is a genuine prefix decision: replaying
                // the prefix through a batch engine gives the same bit.
                assert!(reports
                    .iter()
                    .all(|r| (r.node.proc() == sc.spec().b) == r.b_knows.is_some()));
            }
        }
    }

    #[test]
    fn online_knowledge_fires_at_the_go_receipt_under_eager_delivery() {
        let sc = fig1(4);
        let (run, _) = sc
            .run_verified(&mut OptimalStrategy, &mut EagerScheduler)
            .unwrap();
        let (reports, driver) = StreamDriver::replay(sc.spec().clone(), &run).unwrap();
        // B hears C at 3 + 9 = 12 and knows immediately.
        let first = driver.first_known().expect("feasible at the fork weight");
        assert_eq!(run.time(first), Some(Time::new(12)));
        assert_eq!(
            driver.sigma_c(),
            run.external_receipt_node(sc.spec().c, "go")
        );
        // Before that node, every B verdict is false; after, true.
        for r in &reports {
            if let Some(knows) = r.b_knows {
                assert_eq!(knows, r.time >= Time::new(12), "verdict flip at {}", r.node);
            }
        }
        // The driver's grown run is the recorded run.
        assert_eq!(driver.engine().run(), &run);
    }

    /// A topology where `B` has outgoing channels (including a B ⇄ D
    /// cycle): the regime where the two probe semantics can diverge.
    fn feedback_scenario(x: i64, l_bd: u64, u_bd: u64) -> Scenario {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        let d = nb.add_process("D");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        nb.add_channel(c, d, 1, 2).unwrap();
        nb.add_channel(b, d, l_bd, u_bd).unwrap();
        nb.add_channel(d, b, 1, 3).unwrap();
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
        Scenario::new(spec, ctx, Time::new(3), Time::new(60)).unwrap()
    }

    #[test]
    fn probe_semantics_pin_protocol_equivalence_with_outgoing_channels() {
        // The currently-open ROADMAP divergence, pinned both ways:
        //
        // * ExcludeOwnSends replays are protocol-equivalent — the
        //   streaming verdict fires exactly where the in-simulation
        //   Protocol 2 strategy acted — on every topology, including ones
        //   where B has outgoing channels;
        // * IncludeOwnSends verdicts are pointwise monotone above them
        //   (extra own-send edges only ever add knowledge), so the
        //   default can fire earlier but never later;
        // * both replay modes agree with the batch `first_knowledge`
        //   helper on the same run.
        for (x, l_bd, u_bd) in [(4i64, 1u64, 1u64), (4, 1, 9), (5, 1, 1), (0, 2, 4)] {
            let sc = feedback_scenario(x, l_bd, u_bd);
            for seed in 0..6 {
                let (run, verdict) = sc
                    .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                    .unwrap();
                let spec = sc.spec().clone();

                let (ex_reports, ex) =
                    StreamDriver::replay_with(spec.clone(), &run, ProbeSemantics::ExcludeOwnSends)
                        .unwrap();
                assert_eq!(ex.probe(), ProbeSemantics::ExcludeOwnSends);
                assert_eq!(
                    ex.first_known(),
                    verdict.b_node,
                    "x={x} [{l_bd},{u_bd}] seed {seed}: exclude-mode replay \
                     diverged from the in-simulation protocol"
                );

                let (in_reports, inc) =
                    StreamDriver::replay_with(spec.clone(), &run, ProbeSemantics::IncludeOwnSends)
                        .unwrap();
                // Pointwise monotonicity: wherever the probe view knows,
                // the full view knows too.
                for (e, i) in ex_reports.iter().zip(&in_reports) {
                    assert_eq!(e.node, i.node);
                    if e.b_knows == Some(true) {
                        assert_eq!(
                            i.b_knows,
                            Some(true),
                            "x={x} seed {seed}: default semantics lost knowledge at {}",
                            e.node
                        );
                    }
                }
                // Hence the default verdict is never later.
                match (inc.first_known(), ex.first_known()) {
                    (Some(fi), Some(fe)) => {
                        assert!(run.time(fi).unwrap() <= run.time(fe).unwrap())
                    }
                    (None, Some(fe)) => {
                        panic!("x={x} seed {seed}: default semantics missed the verdict at {fe}")
                    }
                    _ => {}
                }

                // The batch helper agrees with both replay modes.
                for (probe, driver) in [
                    (ProbeSemantics::ExcludeOwnSends, &ex),
                    (ProbeSemantics::IncludeOwnSends, &inc),
                ] {
                    let (first, sigma_c) = first_knowledge(&spec, &run, probe).unwrap();
                    assert_eq!(first, driver.first_known(), "x={x} seed {seed} {probe:?}");
                    assert_eq!(sigma_c, driver.sigma_c());
                }
            }
        }
    }

    #[test]
    fn default_probe_semantics_is_include_own_sends() {
        let sc = fig1(4);
        let driver = StreamDriver::new(
            sc.spec().clone(),
            Arc::new(sc.context().clone()),
            Time::new(60),
        );
        assert_eq!(driver.probe(), ProbeSemantics::IncludeOwnSends);
        assert_eq!(ProbeSemantics::default(), ProbeSemantics::IncludeOwnSends);
    }

    #[test]
    fn verdicts_match_batch_engines_on_every_prefix() {
        let sc = fig1(4);
        let (run, _) = sc
            .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(3))
            .unwrap();
        let spec = sc.spec().clone();
        let mut driver = StreamDriver::new(spec.clone(), run.context_arc(), run.horizon());
        let mut cursor = RunCursor::new(&run);
        while let Some(ev) = cursor.next_event() {
            let report = driver.step(&ev).unwrap();
            let Some(knows) = report.b_knows else {
                continue;
            };
            let Some(sigma_c) = driver.sigma_c() else {
                assert!(!knows);
                continue;
            };
            let batch = KnowledgeEngine::new(driver.engine().run(), report.node).unwrap();
            let want = batch
                .knows(
                    &spec.theta_a(sigma_c).unwrap(),
                    &GeneralNode::basic(report.node),
                    spec.kind.x(),
                )
                .unwrap_or(false);
            assert_eq!(knows, want, "online verdict diverged at {}", report.node);
        }
    }
}
