//! The streaming scenario driver: timed coordination evaluated *online*.
//!
//! The batch harness ([`crate::scenario::Scenario`]) records a complete
//! run and only then asks whether `B` could act. This module drives the
//! same Definition 1 analysis the way the paper describes it happening —
//! as the run unfolds: a recorded schedule is replayed as an event feed
//! ([`zigzag_bcm::RunCursor`]) through an incremental knowledge engine
//! ([`zigzag_core::incremental::IncrementalEngine`]), and after **every**
//! appended event the driver reports whether `B`, standing at its newest
//! node, already knows the required timed precedence. The earliest such
//! node is exactly where Protocol 2 fires.
//!
//! Because the incremental engine answers byte-identically to a batch
//! engine on every prefix, the per-event verdicts are the protocol's real
//! decisions, not approximations. One semantic note: the driver evaluates
//! a node's knowledge on the prefix *including* the node's own FFIP sends
//! (the paper's `GE(r, σ)`, where σ's sends exist the moment σ does); a
//! strategy probed mid-simulation sees its node before the sends are
//! recorded. Extra (unseen-send) edges can only raise thresholds, so on
//! topologies where `B` has outgoing channels the streaming verdict may
//! hold at a node where the in-simulation probe still abstains — never
//! the reverse. Where `B` has no outgoing channels (Figures 1 and 2b)
//! the two coincide exactly.

use std::sync::Arc;

use zigzag_bcm::stream::RunEvent;
use zigzag_bcm::{Context, NodeId, Run, RunCursor, Time};
use zigzag_core::incremental::IncrementalEngine;
use zigzag_core::GeneralNode;

use crate::error::CoordError;
use crate::spec::TimedCoordination;

/// What one appended event meant for the coordination problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// The node the event created.
    pub node: NodeId,
    /// Its time.
    pub time: Time,
    /// `Some(decision)` when the node is a `B`-node: whether `B` knows
    /// the spec's precedence right there; `None` for non-`B` nodes.
    pub b_knows: Option<bool>,
}

/// Replays schedules as event feeds and answers the coordination question
/// after every event; see the [module docs](self).
#[derive(Debug)]
pub struct StreamDriver {
    spec: TimedCoordination,
    engine: IncrementalEngine,
    sigma_c: Option<NodeId>,
    first_known: Option<NodeId>,
}

impl StreamDriver {
    /// Starts a driver for `spec` over an empty stream.
    pub fn new(spec: TimedCoordination, context: Arc<Context>, horizon: Time) -> Self {
        StreamDriver {
            spec,
            engine: IncrementalEngine::new(context, horizon),
            sigma_c: None,
            first_known: None,
        }
    }

    /// The specification being evaluated.
    pub fn spec(&self) -> &TimedCoordination {
        &self.spec
    }

    /// The underlying incremental engine (and through it, the grown run).
    pub fn engine(&self) -> &IncrementalEngine {
        &self.engine
    }

    /// The earliest `B`-node at which the required knowledge held, if it
    /// has — where Protocol 2 performs `b`.
    pub fn first_known(&self) -> Option<NodeId> {
        self.first_known
    }

    /// The trigger node `σ_C`, once it has streamed past.
    pub fn sigma_c(&self) -> Option<NodeId> {
        self.sigma_c
    }

    /// Appends one event and evaluates `B`'s knowledge if the event is a
    /// `B`-node.
    ///
    /// # Errors
    ///
    /// Fails if the event is inconsistent with the grown prefix.
    pub fn step(&mut self, ev: &RunEvent) -> Result<StepReport, CoordError> {
        let node = self.engine.append_event(ev)?;
        if self.sigma_c.is_none() {
            self.sigma_c = self
                .engine
                .run()
                .external_receipt_node(self.spec.c, &self.spec.go_name);
        }
        let b_knows = (node.proc() == self.spec.b)
            .then(|| self.decide_at(node))
            .transpose()?;
        if b_knows == Some(true) && self.first_known.is_none() {
            self.first_known = Some(node);
        }
        Ok(StepReport {
            node,
            time: ev.time,
            b_knows,
        })
    }

    /// Protocol 2's decision at `sigma` on the current prefix: act iff
    /// the spec's precedence is known. Mirrors
    /// [`crate::optimal::OptimalStrategy`], through the incremental
    /// engine's warm observer state.
    fn decide_at(&self, sigma: NodeId) -> Result<bool, CoordError> {
        let Some(sigma_c) = self.sigma_c else {
            return Ok(false); // no trigger yet: nothing to know
        };
        let engine = self.engine.engine(sigma)?;
        let Ok(theta_a) = self.spec.theta_a(sigma_c) else {
            return Ok(false);
        };
        let theta_b = GeneralNode::basic(sigma);
        // An unrecognized or initial anchor means the evidence simply is
        // not there: abstain, exactly like the in-protocol strategy (the
        // decision itself is the shared Protocol 1 helper).
        Ok(
            crate::optimal::knows_required(&engine, self.spec.kind, &theta_a, &theta_b)
                .unwrap_or(false),
        )
    }

    /// Replays a whole recorded run through a fresh driver, returning the
    /// per-event reports and the driver (holding the grown engine and the
    /// earliest-knowledge verdict).
    ///
    /// # Errors
    ///
    /// Fails if the recorded run is internally inconsistent.
    pub fn replay(
        spec: TimedCoordination,
        run: &Run,
    ) -> Result<(Vec<StepReport>, Self), CoordError> {
        let mut driver = Self::new(spec, run.context_arc(), run.horizon());
        let mut cursor = RunCursor::new(run);
        let mut reports = Vec::with_capacity(cursor.remaining());
        while let Some(ev) = cursor.next_event() {
            reports.push(driver.step(&ev)?);
        }
        Ok((reports, driver))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::OptimalStrategy;
    use crate::scenario::Scenario;
    use crate::spec::CoordKind;
    use zigzag_bcm::scheduler::{EagerScheduler, RandomScheduler};
    use zigzag_bcm::Network;
    use zigzag_core::KnowledgeEngine;

    /// Figure 1: C → A `[2,5]`, C → B `[9,12]` (fork weight 4); B has no
    /// outgoing channels, so the streaming verdict and the in-simulation
    /// strategy coincide exactly.
    fn fig1(x: i64) -> Scenario {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
        Scenario::new(spec, ctx, Time::new(3), Time::new(80)).unwrap()
    }

    #[test]
    fn streaming_decision_matches_the_batch_protocol() {
        for (x, seeds) in [(4i64, 0..8u64), (5, 0..4)] {
            let sc = fig1(x);
            for seed in seeds {
                let (run, verdict) = sc
                    .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                    .unwrap();
                let (reports, driver) = StreamDriver::replay(sc.spec().clone(), &run).unwrap();
                assert_eq!(
                    driver.first_known(),
                    verdict.b_node,
                    "x={x} seed {seed}: online decision diverged from the protocol"
                );
                assert_eq!(reports.len(), run.node_count() - 3);
                // Every B verdict is a genuine prefix decision: replaying
                // the prefix through a batch engine gives the same bit.
                assert!(reports
                    .iter()
                    .all(|r| (r.node.proc() == sc.spec().b) == r.b_knows.is_some()));
            }
        }
    }

    #[test]
    fn online_knowledge_fires_at_the_go_receipt_under_eager_delivery() {
        let sc = fig1(4);
        let (run, _) = sc
            .run_verified(&mut OptimalStrategy, &mut EagerScheduler)
            .unwrap();
        let (reports, driver) = StreamDriver::replay(sc.spec().clone(), &run).unwrap();
        // B hears C at 3 + 9 = 12 and knows immediately.
        let first = driver.first_known().expect("feasible at the fork weight");
        assert_eq!(run.time(first), Some(Time::new(12)));
        assert_eq!(
            driver.sigma_c(),
            run.external_receipt_node(sc.spec().c, "go")
        );
        // Before that node, every B verdict is false; after, true.
        for r in &reports {
            if let Some(knows) = r.b_knows {
                assert_eq!(knows, r.time >= Time::new(12), "verdict flip at {}", r.node);
            }
        }
        // The driver's grown run is the recorded run.
        assert_eq!(driver.engine().run(), &run);
    }

    #[test]
    fn verdicts_match_batch_engines_on_every_prefix() {
        let sc = fig1(4);
        let (run, _) = sc
            .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(3))
            .unwrap();
        let spec = sc.spec().clone();
        let mut driver = StreamDriver::new(spec.clone(), run.context_arc(), run.horizon());
        let mut cursor = RunCursor::new(&run);
        while let Some(ev) = cursor.next_event() {
            let report = driver.step(&ev).unwrap();
            let Some(knows) = report.b_knows else {
                continue;
            };
            let Some(sigma_c) = driver.sigma_c() else {
                assert!(!knows);
                continue;
            };
            let batch = KnowledgeEngine::new(driver.engine().run(), report.node).unwrap();
            let want = batch
                .knows(
                    &spec.theta_a(sigma_c).unwrap(),
                    &GeneralNode::basic(report.node),
                    spec.kind.x(),
                )
                .unwrap_or(false);
            assert_eq!(knows, want, "online verdict diverged at {}", report.node);
        }
    }
}
