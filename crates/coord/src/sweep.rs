//! Feasibility-threshold sweeps: the largest separation a strategy can
//! coordinate on a given scenario family.
//!
//! For a fixed context and roles, a strategy's *feasibility threshold* is
//! the largest `x` at which it still acts (sound strategies act for every
//! smaller `x` too — knowledge is monotone in `x`). The sweep measures it
//! empirically across seeds, which is how the experiment binaries find the
//! fork/zigzag crossover bands.
//!
//! Every `(x, seed)` grid point is an independent simulation, so
//! [`threshold`] fans the grid across threads (as a single-job
//! [`crate::family::thresholds`] batch) and folds the per-point outcomes
//! back in grid order — the result is **identical** to the serial sweep,
//! regardless of thread count or scheduling.

use zigzag_bcm::{Context, ProcessId, Time};

use crate::error::CoordError;
use crate::scenario::{BStrategy, Scenario};
use crate::spec::{CoordKind, TimedCoordination};

/// The scenario family a sweep runs over: everything but the separation.
#[derive(Debug, Clone)]
pub struct SweepFamily {
    /// The bounded context, shared (not copied) by every grid point.
    pub context: std::sync::Arc<Context>,
    /// Role `A`.
    pub a: ProcessId,
    /// Role `B`.
    pub b: ProcessId,
    /// Role `C`.
    pub c: ProcessId,
    /// Whether the family is `Late` (else `Early`).
    pub late: bool,
    /// Trigger time.
    pub go_time: Time,
    /// Recording horizon.
    pub horizon: Time,
    /// Extra externals (time, process, name).
    pub externals: Vec<(Time, ProcessId, String)>,
}

impl SweepFamily {
    /// Instantiates the scenario at separation `x`.
    ///
    /// # Errors
    ///
    /// Propagates scenario-validation failures.
    pub fn at(&self, x: i64) -> Result<Scenario, CoordError> {
        let kind = if self.late {
            CoordKind::Late { x }
        } else {
            CoordKind::Early { x }
        };
        let spec = TimedCoordination::new(kind, self.a, self.b, self.c);
        let mut sc = Scenario::new(
            spec,
            std::sync::Arc::clone(&self.context),
            self.go_time,
            self.horizon,
        )?;
        for (t, p, name) in &self.externals {
            sc = sc.with_external(*t, *p, name.clone());
        }
        Ok(sc)
    }
}

/// The outcome of a threshold sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Threshold {
    /// Largest `x` in the searched range at which the strategy acted in
    /// every sampled run, or `None` if it never did.
    pub always_acts: Option<i64>,
    /// Largest `x` at which it acted in at least one sampled run.
    pub ever_acts: Option<i64>,
    /// Specification violations observed anywhere in the sweep (must be 0
    /// for sound strategies).
    pub violations: u32,
}

/// Sweeps `x` over `range` (inclusive), running `seeds` random schedules
/// per point. The `x × seeds` grid runs in parallel; the fold back into a
/// [`Threshold`] happens in grid order, so the result is identical to the
/// serial sweep.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn threshold(
    family: &SweepFamily,
    strategy_factory: &(dyn Fn() -> Box<dyn BStrategy> + Sync),
    range: std::ops::RangeInclusive<i64>,
    seeds: u64,
) -> Result<Threshold, CoordError> {
    // One single-job fused grid: the family layer owns the fan-out, so
    // the one-sweep and many-sweep paths cannot drift apart.
    let jobs = [crate::family::ThresholdJob {
        family: family.clone(),
        strategy: strategy_factory,
        range,
        seeds,
    }];
    let mut out = crate::family::thresholds(&jobs)?;
    Ok(out.pop().expect("one result per job"))
}

/// Instantiates the scenario per grid point of `range`, in order, so
/// validation errors keep their serial reporting position.
pub(crate) fn instantiate(
    family: &SweepFamily,
    range: std::ops::RangeInclusive<i64>,
) -> Result<Vec<(i64, Scenario)>, CoordError> {
    range.map(|x| family.at(x).map(|sc| (x, sc))).collect()
}

/// Folds per-grid-point `(acted, ok)` outcomes — consumed in grid order —
/// back into a [`Threshold`]. Shared by the single-family sweep above and
/// the fused family-grid path ([`crate::family::thresholds`]), which is
/// what makes the two bit-identical by construction.
pub(crate) fn fold(
    scenarios: &[(i64, Scenario)],
    seeds: u64,
    outcomes: &mut impl Iterator<Item = Result<(bool, bool), CoordError>>,
) -> Result<Threshold, CoordError> {
    let mut always = None;
    let mut ever = None;
    let mut violations = 0u32;
    for (x, _) in scenarios {
        let mut acted = 0u64;
        for _ in 0..seeds {
            let (acts, ok) = outcomes.next().expect("one outcome per grid point")?;
            violations += !ok as u32;
            acted += acts as u64;
        }
        if acted == seeds {
            always = Some(*x);
        }
        if acted > 0 {
            ever = Some(*x);
        }
    }
    Ok(Threshold {
        always_acts: always,
        ever_acts: ever,
        violations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SimpleForkStrategy;
    use crate::optimal::OptimalStrategy;
    use zigzag_bcm::scheduler::RandomScheduler;
    use zigzag_bcm::Network;

    fn fig1_family() -> SweepFamily {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        SweepFamily {
            context: nb.build().unwrap().into(),
            a,
            b,
            c,
            late: true,
            go_time: Time::new(3),
            horizon: Time::new(80),
            externals: Vec::new(),
        }
    }

    #[test]
    fn fig1_threshold_is_the_fork_weight() {
        let family = fig1_family();
        let t = threshold(&family, &|| Box::new(OptimalStrategy::new()), 0..=8, 6).unwrap();
        assert_eq!(t.always_acts, Some(4)); // L_CB − U_CA
        assert_eq!(t.ever_acts, Some(4));
        assert_eq!(t.violations, 0);
        // The fork baseline has the same threshold on a pure-fork topology.
        let tf = threshold(
            &family,
            &|| Box::new(SimpleForkStrategy::default()),
            0..=8,
            6,
        )
        .unwrap();
        assert_eq!(tf.always_acts, Some(4));
    }

    #[test]
    fn parallel_sweep_matches_serial_reference() {
        // The fan-out must be invisible: fold the same grid serially and
        // compare every field.
        let family = fig1_family();
        let (range, seeds) = (0i64..=6, 5u64);
        let factory: &(dyn Fn() -> Box<dyn BStrategy> + Sync) =
            &|| Box::new(OptimalStrategy::new());
        let parallel = threshold(&family, factory, range.clone(), seeds).unwrap();

        let mut always = None;
        let mut ever = None;
        let mut violations = 0u32;
        for x in range {
            let sc = family.at(x).unwrap();
            let mut acted = 0u64;
            for seed in 0..seeds {
                let mut s = factory();
                let (_, v) = sc
                    .run_verified(s.as_mut(), &mut RandomScheduler::seeded(seed))
                    .unwrap();
                violations += !v.ok as u32;
                acted += v.b_node.is_some() as u64;
            }
            if acted == seeds {
                always = Some(x);
            }
            if acted > 0 {
                ever = Some(x);
            }
        }
        assert_eq!(
            parallel,
            Threshold {
                always_acts: always,
                ever_acts: ever,
                violations
            }
        );
    }

    #[test]
    fn infeasible_families_report_none() {
        let mut family = fig1_family();
        family.late = false; // Early with L_CA < U_CB: never feasible for x ≥ 0
        let t = threshold(&family, &|| Box::new(OptimalStrategy::new()), 0..=4, 4).unwrap();
        assert_eq!(t.always_acts, None);
        assert_eq!(t.ever_acts, None);
        assert_eq!(t.violations, 0);
        // Scenario instantiation errors propagate.
        family.go_time = Time::ZERO;
        assert!(family.at(0).is_err());
    }
}
