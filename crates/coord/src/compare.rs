//! Quantitative strategy comparison (the §1 motivation, experiment E9).
//!
//! For a fixed scenario and schedule, runs every strategy and reports when
//! (and whether) each one acted, whether the specification held, and the
//! action-time advantage over the asynchronous baseline.

use zigzag_bcm::Time;

use crate::baseline::{AsyncChainStrategy, SimpleForkStrategy};
use crate::error::CoordError;
use crate::family::CompareJob;
use crate::optimal::{OptimalStrategy, PatternStrategy};
use crate::scenario::{BStrategy, Scenario};

/// One strategy's outcome in one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrategyOutcome {
    /// Strategy display name.
    pub strategy: String,
    /// Whether `b` was performed.
    pub acted: bool,
    /// `time(b)` if performed.
    pub b_time: Option<Time>,
    /// Whether the run satisfied the specification.
    pub ok: bool,
}

/// Aggregate of one strategy across many seeds.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategySummary {
    /// Strategy display name.
    pub strategy: String,
    /// Number of runs in which `b` was performed.
    pub acted: usize,
    /// Number of runs violating the spec (must be 0 for sound strategies).
    pub violations: usize,
    /// Mean `time(b)` over the runs that acted.
    pub mean_b_time: Option<f64>,
    /// Total runs.
    pub runs: usize,
}

/// Runs one scenario under each stock strategy (optimal, pattern,
/// simple-fork, async-chain) across `seeds` random schedules and
/// summarizes. A one-job [`crate::family::compare_grid`] batch: the
/// whole `strategy × seed` table runs as a single fused parallel grid
/// and the fold happens in grid order, so the summaries are identical to
/// the serial loop's — and to any wider E9 table built from the same
/// batch API.
///
/// # Errors
///
/// Propagates scenario errors.
pub fn compare_strategies(
    scenario: &Scenario,
    seeds: std::ops::Range<u64>,
) -> Result<Vec<StrategySummary>, CoordError> {
    type Factory = Box<dyn Fn() -> Box<dyn BStrategy> + Sync>;
    let strategies: Vec<Factory> = vec![
        Box::new(|| Box::new(OptimalStrategy::new())),
        Box::new(|| Box::new(PatternStrategy::new())),
        Box::new(|| Box::new(SimpleForkStrategy::default())),
        Box::new(|| Box::new(AsyncChainStrategy::new())),
    ];
    let job = CompareJob {
        scenario: scenario.clone(),
        strategies: strategies.iter().map(|make| make.as_ref() as _).collect(),
        seeds,
    };
    let mut rows = crate::family::compare_grid(std::slice::from_ref(&job))?;
    let outcomes = rows.pop().expect("one row per job");
    Ok(strategies
        .iter()
        .zip(outcomes)
        .map(|(make, out)| StrategySummary {
            strategy: make().name().to_string(),
            acted: out.acted as usize,
            violations: out.violations as usize,
            mean_b_time: out.mean_b_time(),
            runs: out.runs as usize,
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CoordKind, TimedCoordination};
    use zigzag_bcm::Network;

    #[test]
    fn comparison_table_shape_and_soundness() {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        nb.add_channel(a, b, 1, 4).unwrap();
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Late { x: 0 }, a, b, c);
        let sc = Scenario::new(spec, ctx, Time::new(3), Time::new(80)).unwrap();
        let table = compare_strategies(&sc, 0..8).unwrap();
        assert_eq!(table.len(), 4);
        for row in &table {
            assert_eq!(row.violations, 0, "{} violated the spec", row.strategy);
            assert_eq!(row.runs, 8);
        }
        // Everyone can act at x = 0 here; the optimal strategy acts no
        // later (on average) than the async baseline, which must wait for
        // a message chain from A.
        let opt = table
            .iter()
            .find(|r| r.strategy == "optimal-zigzag")
            .unwrap();
        let pat = table
            .iter()
            .find(|r| r.strategy == "pattern-zigzag")
            .unwrap();
        let async_ = table.iter().find(|r| r.strategy == "async-chain").unwrap();
        assert!(opt.acted == 8 && async_.acted == 8);
        assert!(opt.mean_b_time.unwrap() <= async_.mean_b_time.unwrap());
        // Protocols 1 and 2 are the same protocol in two vocabularies.
        assert_eq!(opt.acted, pat.acted);
        assert_eq!(opt.mean_b_time, pat.mean_b_time);
    }
}
