//! Baseline strategies the paper compares against (§1, §6).
//!
//! * [`AsyncChainStrategy`] — the Lamport-style asynchronous solution: act
//!   once a message chain certifies the ordering. Without bounds this is
//!   the *only* sound strategy, and it supports only `Late` with `x <= 0`
//!   (plus one tick per chain hop, which we credit to it generously).
//! * [`SimpleForkStrategy`] — uses bounds, but only through the simple
//!   two-legged fork of Figure 1 (the folklore technique from self-timed
//!   circuit design): act upon receiving a chain `p` from `σ_C` whenever
//!   `L(p) − U(C→A) >= x` (`Late`) or `L(C→A) − U(p) >= x` (`Early`).
//!   Zigzag patterns strictly generalize this (Figure 2a).

use zigzag_bcm::{NetPath, Network, ProcessId, View};
use zigzag_core::GeneralNode;

use crate::scenario::BStrategy;
use crate::spec::{CoordKind, TimedCoordination};

/// Enumerates simple paths `from → to` in `net` (bounded depth), the
/// candidate chains a fork-based strategy can receive evidence along.
fn simple_paths(net: &Network, from: ProcessId, to: ProcessId, max_len: usize) -> Vec<NetPath> {
    let mut out = Vec::new();
    let mut stack = vec![from];
    fn dfs(
        net: &Network,
        to: ProcessId,
        max_len: usize,
        stack: &mut Vec<ProcessId>,
        out: &mut Vec<NetPath>,
    ) {
        let cur = *stack.last().expect("stack never empty");
        if cur == to && stack.len() > 1 {
            out.push(NetPath::new(stack.clone()).expect("DFS paths are valid"));
            return;
        }
        if stack.len() >= max_len {
            return;
        }
        for &next in net.out_neighbors(cur) {
            if stack.contains(&next) {
                continue;
            }
            stack.push(next);
            dfs(net, to, max_len, stack, out);
            stack.pop();
        }
    }
    dfs(net, to, max_len, &mut stack, &mut out);
    out
}

/// The asynchronous baseline: for `Late`, act upon first learning (via any
/// message chain) that `a` was performed; abstain for `Early` and for any
/// `x` exceeding what pure ordering plus one-tick-per-hop certifies.
///
/// The one-tick credit is the bcm model's floor (distinct nodes on a
/// timeline are ≥ 1 apart); a genuinely asynchronous system gets `x <= 0`
/// only. Either way, it must *wait for* `a` — the quantitative experiments
/// measure how much later it acts than the zigzag protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncChainStrategy;

impl AsyncChainStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        AsyncChainStrategy
    }
}

impl BStrategy for AsyncChainStrategy {
    fn should_act(&mut self, spec: &TimedCoordination, view: &View<'_>) -> bool {
        let CoordKind::Late { x } = spec.kind else {
            // Early coordination is impossible for an asynchronous
            // observer: it cannot act before an event it must first hear
            // about, except for trivially non-positive x it cannot certify
            // without bounds anyway.
            return false;
        };
        let Some(sigma_c) = view.external_node(spec.c, &spec.go_name) else {
            return false;
        };
        let Ok(theta_a) = spec.theta_a(sigma_c) else {
            return false;
        };
        // Has B heard of A's action node? (Resolution stays within the
        // past when it succeeds against the observer's own chain.)
        let run = view.run_for_analysis();
        let Ok(a_node) = theta_a.resolve(run) else {
            return false;
        };
        if !view.knows_node(a_node) {
            return false;
        }
        // Ordering gives x <= (hops from a to us), one tick per hop; we
        // approximate the credit by the node-index distance on our own
        // timeline… conservatively: x <= 0 always holds once a ≺ b.
        x <= 0
    }

    fn name(&self) -> &'static str {
        "async-chain"
    }
}

/// The Figure 1 baseline: act on receipt of a chain from `σ_C` whose
/// simple-fork condition meets the spec, ignoring zigzag evidence.
#[derive(Debug, Clone)]
pub struct SimpleForkStrategy {
    max_path_len: usize,
}

impl SimpleForkStrategy {
    /// Creates the strategy; `max_path_len` caps the chain enumeration
    /// (network size is a safe choice).
    pub fn new(max_path_len: usize) -> Self {
        SimpleForkStrategy { max_path_len }
    }
}

impl Default for SimpleForkStrategy {
    fn default() -> Self {
        SimpleForkStrategy::new(8)
    }
}

impl BStrategy for SimpleForkStrategy {
    fn should_act(&mut self, spec: &TimedCoordination, view: &View<'_>) -> bool {
        let Some(sigma_c) = view.external_node(spec.c, &spec.go_name) else {
            return false;
        };
        if spec.a == spec.c {
            // Degenerate fork with an empty head leg: U(C→A) = 0.
            return self.check_paths(spec, view, sigma_c, 0, 0);
        }
        let Some(cb) = view.context().channel_bounds(spec.c, spec.a) else {
            return false;
        };
        self.check_paths(spec, view, sigma_c, cb.lower(), cb.upper())
    }

    fn name(&self) -> &'static str {
        "simple-fork"
    }
}

impl SimpleForkStrategy {
    fn check_paths(
        &self,
        spec: &TimedCoordination,
        view: &View<'_>,
        sigma_c: zigzag_bcm::NodeId,
        l_ca: u64,
        u_ca: u64,
    ) -> bool {
        let net = view.context().network();
        let bounds = view.context().bounds();
        let run = view.run_for_analysis();
        for p in simple_paths(net, spec.c, spec.b, self.max_path_len) {
            // Did *this* chain end at the current node?
            let theta = match GeneralNode::new(sigma_c, p.clone()) {
                Ok(t) => t,
                Err(_) => continue,
            };
            match theta.resolve(run) {
                Ok(node) if node == view.node() => {}
                _ => continue,
            }
            let (Ok(lp), Ok(up)) = (bounds.path_lower(&p), bounds.path_upper(&p)) else {
                continue;
            };
            let ok = match spec.kind {
                CoordKind::Late { x } => lp as i64 - u_ca as i64 >= x,
                CoordKind::Early { x } => l_ca as i64 - up as i64 >= x,
                // Both fork inequalities at once.
                CoordKind::Window { after, within } => {
                    lp as i64 - u_ca as i64 >= after && up as i64 - l_ca as i64 <= within
                }
            };
            if ok {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimal::OptimalStrategy;
    use crate::scenario::Scenario;
    use crate::spec::CoordKind;
    use zigzag_bcm::scheduler::{EagerScheduler, RandomScheduler};
    use zigzag_bcm::Time;

    fn fig1(x: i64) -> Scenario {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        nb.add_channel(a, b, 1, 4).unwrap(); // chain A → B for the async baseline
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Late { x }, a, b, c);
        Scenario::new(spec, ctx, Time::new(3), Time::new(80)).unwrap()
    }

    #[test]
    fn simple_paths_enumeration() {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 1, 2).unwrap();
        nb.add_channel(a, b, 1, 2).unwrap();
        nb.add_channel(c, b, 1, 2).unwrap();
        let ctx = nb.build().unwrap();
        let paths = simple_paths(ctx.network(), c, b, 5);
        assert_eq!(paths.len(), 2); // C→B and C→A→B
        assert!(simple_paths(ctx.network(), b, c, 5).is_empty());
    }

    #[test]
    fn fork_baseline_acts_when_fork_suffices() {
        // x = 4 = L_CB − U_CA: the direct fork works; both the fork
        // baseline and the optimal protocol act, never violating.
        let sc = fig1(4);
        for seed in 0..10 {
            let (_, v_fork) = sc
                .run_verified(
                    &mut SimpleForkStrategy::default(),
                    &mut RandomScheduler::seeded(seed),
                )
                .unwrap();
            assert!(v_fork.ok, "seed {seed}: {:?}", v_fork.violation);
            assert!(v_fork.b_node.is_some(), "seed {seed}: fork should act");
        }
    }

    #[test]
    fn async_baseline_waits_for_a() {
        let sc = fig1(0);
        let (run, verdict) = sc
            .run_verified(&mut AsyncChainStrategy, &mut EagerScheduler)
            .unwrap();
        assert!(verdict.ok);
        let b_node = verdict.b_node.expect("async must act for x = 0");
        // It acts only after hearing of a: strictly after a's time plus
        // the A → B chain lower bound.
        let ta = verdict.a_time.unwrap();
        let tb = run.time(b_node).unwrap();
        assert!(tb.ticks() > ta.ticks());
        // The optimal protocol acts at the same time or earlier.
        let (_, v_opt) = sc
            .run_verified(&mut OptimalStrategy, &mut EagerScheduler)
            .unwrap();
        let tb_opt = v_opt.b_time.expect("optimal acts");
        assert!(
            tb_opt <= tb,
            "optimal acted at {tb_opt}, async earlier at {tb}"
        );
    }

    #[test]
    fn async_baseline_abstains_beyond_ordering() {
        let sc = fig1(3); // x > 0: ordering alone cannot certify
        for seed in 0..5 {
            let (_, verdict) = sc
                .run_verified(&mut AsyncChainStrategy, &mut RandomScheduler::seeded(seed))
                .unwrap();
            assert!(verdict.ok);
            assert_eq!(verdict.b_node, None);
        }
        // And for Early it always abstains.
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 10, 12).unwrap();
        nb.add_channel(c, b, 1, 2).unwrap();
        let ctx = nb.build().unwrap();
        let spec = TimedCoordination::new(CoordKind::Early { x: 0 }, a, b, c);
        let sc = Scenario::new(spec, ctx, Time::new(2), Time::new(40)).unwrap();
        let (_, verdict) = sc
            .run_verified(&mut AsyncChainStrategy, &mut EagerScheduler)
            .unwrap();
        assert_eq!(verdict.b_node, None);
        assert_eq!(AsyncChainStrategy::new().name(), "async-chain");
    }

    #[test]
    fn fork_baseline_misses_zigzag_opportunities() {
        // Figure 2 bounds: the only simple path C → B for evidence is via
        // D with small lower bounds, so no fork certifies Late x = 2 — but
        // the zigzag does (Eq. 1 weight with the separation tick). The
        // fork baseline abstains where the optimal strategy acts.
        let mut nb = Network::builder();
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        let c = nb.add_process("C");
        let d = nb.add_process("D");
        let e = nb.add_process("E");
        nb.add_channel(c, a, 1, 3).unwrap();
        nb.add_channel(c, d, 6, 8).unwrap();
        nb.add_channel(e, d, 1, 2).unwrap();
        nb.add_channel(e, b, 4, 7).unwrap();
        nb.add_channel(d, b, 1, 5).unwrap();
        let ctx = nb.build().unwrap();
        // The best simple-fork evidence is the chain C→D→B with
        // L = 6 + 1 = 7, supporting x <= 7 − U_CA = 4. The Figure 2a
        // zigzag supports x <= (−3 + 6 − 2 + 4) + 1 = 6 once D's report
        // shows it heard C before E. At x = 6: fork abstains, zigzag acts.
        let spec = TimedCoordination::new(CoordKind::Late { x: 6 }, a, b, c);
        let sc = Scenario::new(spec, ctx, Time::new(2), Time::new(120))
            .unwrap()
            .with_external(Time::new(20), e, "kick_e");
        let mut fork_acted = 0;
        let mut opt_acted = 0;
        for seed in 0..10 {
            let (_, v_fork) = sc
                .run_verified(
                    &mut SimpleForkStrategy::default(),
                    &mut RandomScheduler::seeded(seed),
                )
                .unwrap();
            assert!(v_fork.ok, "seed {seed}: {:?}", v_fork.violation);
            fork_acted += v_fork.b_node.is_some() as u32;
            let (_, v_opt) = sc
                .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                .unwrap();
            assert!(v_opt.ok, "seed {seed}: {:?}", v_opt.violation);
            opt_acted += v_opt.b_node.is_some() as u32;
        }
        assert_eq!(fork_acted, 0, "fork baseline acted beyond its evidence");
        assert!(opt_acted > 0, "optimal never exploited the zigzag at x = 6");
    }
}
