//! The optimal coordinator (paper Protocol 2 / Theorem 4).
//!
//! `B` performs `b` at the first node `σ` at which it *knows* the required
//! timed precedence — equivalently (Theorem 4), at which a σ-visible zigzag
//! of sufficient weight connects its node with `σ_C · A`. By Theorem 3 no
//! correct protocol can act earlier, so within the FFIP communication
//! pattern this strategy is optimal: it acts as soon as any sound strategy
//! may.

use zigzag_bcm::View;
use zigzag_core::knowledge::KnowledgeEngine;
use zigzag_core::{CoreError, GeneralNode};

use crate::scenario::BStrategy;
use crate::spec::{CoordKind, TimedCoordination};

/// The Protocol 1 knowledge decision for `kind`: which precedence must be
/// known, with which sign conventions. Shared by [`OptimalStrategy`], the
/// streaming driver ([`crate::stream::StreamDriver`]) and the service
/// facade's `CoordDecision` query so the evaluation paths cannot drift
/// apart.
///
/// # Errors
///
/// Same conditions as [`KnowledgeEngine::knows`].
pub fn knows_required(
    engine: &KnowledgeEngine<'_>,
    kind: CoordKind,
    theta_a: &GeneralNode,
    theta_b: &GeneralNode,
) -> Result<bool, CoreError> {
    match kind {
        CoordKind::Late { x } => engine.knows(theta_a, theta_b, x),
        CoordKind::Early { x } => engine.knows(theta_b, theta_a, x),
        // Both sides: t_b − t_a >= after and t_a − t_b >= −within.
        CoordKind::Window { after, within } => engine
            .knows(theta_a, theta_b, after)
            .and_then(|lo| Ok(lo && engine.knows(theta_b, theta_a, -within)?)),
    }
}

/// Protocol 2: act iff `K_σ(σ_C·A --x--> σ)` (Late) or
/// `K_σ(σ --x--> σ_C·A)` (Early).
///
/// The knowledge decision inspects only `past(r, σ)` plus the
/// common-knowledge channel bounds, so this is a legitimate bcm protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimalStrategy;

impl OptimalStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        OptimalStrategy
    }
}

impl BStrategy for OptimalStrategy {
    fn should_act(&mut self, spec: &TimedCoordination, view: &View<'_>) -> bool {
        // Theorem 3: a message chain from σ_C is necessary; without it the
        // trigger is invisible and B must abstain.
        let Some(sigma_c) = view.external_node(spec.c, &spec.go_name) else {
            return false;
        };
        let run = view.run_for_analysis();
        let sigma = view.node();
        let Ok(engine) = KnowledgeEngine::new(run, sigma) else {
            return false;
        };
        let Ok(theta_a) = spec.theta_a(sigma_c) else {
            return false;
        };
        let theta_b = GeneralNode::basic(sigma);
        knows_required(&engine, spec.kind, &theta_a, &theta_b).unwrap_or(false)
    }

    fn name(&self) -> &'static str {
        "optimal-zigzag"
    }
}

/// Protocol 2 in its literal, pattern-based phrasing: act iff a σ-visible
/// zigzag pattern of weight ≥ x connects the required endpoints — found by
/// witness extraction rather than by the knowledge decision.
///
/// The paper presents Protocol 1 (knowledge form) and Protocol 2 (pattern
/// form) as the same protocol in two vocabularies; [`OptimalStrategy`]
/// implements the former, this strategy the latter, and the test suite
/// checks they act at identical nodes (Theorem 4 made executable twice).
#[derive(Debug, Clone, Copy, Default)]
pub struct PatternStrategy;

impl PatternStrategy {
    /// Creates the strategy.
    pub fn new() -> Self {
        PatternStrategy
    }
}

impl BStrategy for PatternStrategy {
    fn should_act(&mut self, spec: &TimedCoordination, view: &View<'_>) -> bool {
        let Some(sigma_c) = view.external_node(spec.c, &spec.go_name) else {
            return false;
        };
        let run = view.run_for_analysis();
        let sigma = view.node();
        let Ok(engine) = KnowledgeEngine::new(run, sigma) else {
            return false;
        };
        let Ok(theta_a) = spec.theta_a(sigma_c) else {
            return false;
        };
        let theta_b = GeneralNode::basic(sigma);
        let ok = |w: Option<(i64, zigzag_core::VisibleZigzag)>, x: i64| {
            w.is_some_and(|(weight, _)| weight >= x)
        };
        let witness = match spec.kind {
            CoordKind::Late { x } => engine.witness(&theta_a, &theta_b).map(|w| ok(w, x)),
            CoordKind::Early { x } => engine.witness(&theta_b, &theta_a).map(|w| ok(w, x)),
            CoordKind::Window { after, within } => {
                engine.witness(&theta_a, &theta_b).and_then(|lo| {
                    Ok(ok(lo, after) && ok(engine.witness(&theta_b, &theta_a)?, -within))
                })
            }
        };
        witness.unwrap_or(false)
    }

    fn name(&self) -> &'static str {
        "pattern-zigzag"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;
    use crate::spec::CoordKind;
    use zigzag_bcm::scheduler::{EagerScheduler, LazyScheduler, RandomScheduler};
    use zigzag_bcm::{Network, Time};

    /// Figure 1: C → A `[2,5]`, C → B `[9,12]` (fork weight 4).
    fn fig1(x: i64, kind_late: bool) -> Scenario {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        let ctx = nb.build().unwrap();
        let kind = if kind_late {
            CoordKind::Late { x }
        } else {
            CoordKind::Early { x }
        };
        let spec = TimedCoordination::new(kind, a, b, c);
        Scenario::new(spec, ctx, Time::new(3), Time::new(80)).unwrap()
    }

    #[test]
    fn acts_within_fork_weight_and_never_violates() {
        let sc = fig1(4, true); // x = fork weight: feasible
        let mut acted = 0;
        for seed in 0..20 {
            let (run, verdict) = sc
                .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                .unwrap();
            assert!(verdict.ok, "seed {seed}: {:?}", verdict.violation);
            if verdict.b_node.is_some() {
                acted += 1;
                assert!(verdict.b_heard_go);
                let _ = run;
            }
        }
        assert!(acted > 0, "optimal strategy never acted at x = fork weight");
    }

    #[test]
    fn acts_at_first_go_receipt_when_feasible() {
        // Under the eager schedule B hears C at t = 3 + 9 = 12 and knows
        // a --4--> b immediately: it must act right there (no waiting).
        let sc = fig1(4, true);
        let (run, verdict) = sc
            .run_verified(&mut OptimalStrategy, &mut EagerScheduler)
            .unwrap();
        assert!(verdict.ok);
        let b_node = verdict.b_node.expect("must act");
        assert_eq!(run.time(b_node), Some(Time::new(12)));
    }

    #[test]
    fn abstains_when_infeasible() {
        // x = 5 exceeds the fork weight 4 and B has no other evidence:
        // knowledge never holds, so B must abstain on every schedule.
        let sc = fig1(5, true);
        for seed in 0..15 {
            let (_, verdict) = sc
                .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                .unwrap();
            assert!(verdict.ok);
            assert_eq!(verdict.b_node, None, "seed {seed}: acted without knowledge");
        }
    }

    #[test]
    fn early_coordination_with_reversed_bounds() {
        // Early⟨b --x--> a⟩ needs B to hear the trigger *fast* while A
        // hears it slowly: C → A [10, 12], C → B [1, 2]; threshold
        // L_CA − U_CB = 8.
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 10, 12).unwrap();
        nb.add_channel(c, b, 1, 2).unwrap();
        let ctx = nb.build().unwrap();
        for (x, expect_act) in [(8, true), (9, false)] {
            let spec = TimedCoordination::new(CoordKind::Early { x }, a, b, c);
            let sc = Scenario::new(spec, ctx.clone(), Time::new(2), Time::new(60)).unwrap();
            for seed in 0..10 {
                let (_, verdict) = sc
                    .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                    .unwrap();
                assert!(verdict.ok, "x={x} seed {seed}: {:?}", verdict.violation);
                assert_eq!(
                    verdict.b_node.is_some(),
                    expect_act,
                    "x={x} seed {seed}: wrong act/abstain decision"
                );
            }
        }
    }

    #[test]
    fn window_coordination_two_sided_knowledge() {
        // Window⟨a --[lo, hi]--> b⟩ on Figure 1: B's receipt of C's
        // message bounds a from both sides:
        //   t_b − t_a ∈ [L_CB − U_CA, U_CB − L_CA] = [4, 10].
        // So B can act exactly when [lo, hi] ⊇ the achievable band… more
        // precisely when lo <= 4 and hi >= 10 (its knowledge thresholds).
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, 9, 12).unwrap();
        let ctx = nb.build().unwrap();
        for (lo, hi, expect_act) in [
            (4i64, 10i64, true), // exactly the knowledge band
            (0, 20, true),       // slack on both sides
            (5, 20, false),      // lower side too demanding
            (4, 9, false),       // upper side too demanding
        ] {
            let spec = TimedCoordination::new(
                CoordKind::Window {
                    after: lo,
                    within: hi,
                },
                a,
                b,
                c,
            );
            let sc = Scenario::new(spec, ctx.clone(), Time::new(3), Time::new(80)).unwrap();
            for seed in 0..8 {
                for strategy in [0u8, 1] {
                    let verdict = if strategy == 0 {
                        sc.run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                    } else {
                        sc.run_verified(&mut PatternStrategy, &mut RandomScheduler::seeded(seed))
                    };
                    let (_, v) = verdict.unwrap();
                    assert!(v.ok, "window [{lo},{hi}] seed {seed}: {:?}", v.violation);
                    assert_eq!(
                        v.b_node.is_some(),
                        expect_act,
                        "window [{lo},{hi}] seed {seed} strategy {strategy}"
                    );
                }
            }
        }
        // The fork baseline handles the direct-channel window too.
        let spec = TimedCoordination::new(
            CoordKind::Window {
                after: 4,
                within: 10,
            },
            a,
            b,
            c,
        );
        let sc = Scenario::new(spec, ctx, Time::new(3), Time::new(80)).unwrap();
        let (_, v) = sc
            .run_verified(
                &mut crate::baseline::SimpleForkStrategy::default(),
                &mut RandomScheduler::seeded(0),
            )
            .unwrap();
        assert!(v.ok);
        assert!(v.b_node.is_some(), "fork baseline missed the direct window");
    }

    #[test]
    fn protocols_one_and_two_are_equivalent() {
        // The knowledge form and the pattern form act at identical nodes
        // on identical schedules — Theorem 4 as protocol equivalence.
        for x in [-2i64, 0, 2, 4, 5] {
            for late in [true, false] {
                let sc = fig1(x, late);
                for seed in 0..8 {
                    let (_, v1) = sc
                        .run_verified(&mut OptimalStrategy, &mut RandomScheduler::seeded(seed))
                        .unwrap();
                    let (_, v2) = sc
                        .run_verified(&mut PatternStrategy, &mut RandomScheduler::seeded(seed))
                        .unwrap();
                    assert!(v1.ok && v2.ok);
                    assert_eq!(
                        v1.b_node, v2.b_node,
                        "x={x} late={late} seed {seed}: protocols diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn zigzag_beats_simple_fork_fig2b() {
        // Figure 2b: the Eq. (1) zigzag supports Late⟨a --5--> b⟩ once D's
        // report reaches B, even though no single fork does (the only
        // C-to-B fork evidence B has goes through D with tiny lower
        // bounds). The optimal strategy finds it.
        let mut nb = Network::builder();
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        let c = nb.add_process("C");
        let d = nb.add_process("D");
        let e = nb.add_process("E");
        nb.add_channel(c, a, 1, 3).unwrap(); // U_CA = 3
        nb.add_channel(c, d, 6, 8).unwrap(); // L_CD = 6
        nb.add_channel(e, d, 1, 2).unwrap(); // U_ED = 2
        nb.add_channel(e, b, 4, 7).unwrap(); // L_EB = 4
        nb.add_channel(d, b, 1, 5).unwrap(); // the reporting channel
        let ctx = nb.build().unwrap();
        // Send C's trigger early and E's kick later so D surely hears C
        // first; E's kick is modeled by a second external handled by FFIP
        // flooding alone (E has no role).
        let spec = TimedCoordination::new(CoordKind::Late { x: 2 }, a, b, c);
        let mut sim_acted = 0;
        for seed in 0..15 {
            let mut sim = zigzag_bcm::Simulator::new(
                ctx.clone(),
                zigzag_bcm::SimConfig::with_horizon(Time::new(100)),
            );
            sim.external(Time::new(2), c, "go");
            sim.external(Time::new(20), e, "kick_e");
            let mut strategy = OptimalStrategy;
            let mut protocol = crate::scenario::testing::protocol(&spec, &mut strategy);
            let run = sim
                .run(&mut protocol, &mut RandomScheduler::seeded(seed))
                .unwrap();
            let verdict = crate::spec::verify(&spec, &run).unwrap();
            assert!(verdict.ok, "seed {seed}: {:?}", verdict.violation);
            if verdict.b_node.is_some() {
                sim_acted += 1;
            }
        }
        assert!(sim_acted > 0, "optimal never exploited the zigzag");
        let _ = LazyScheduler;
    }
}
