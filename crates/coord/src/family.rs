//! Scenario-family execution: fan **whole experiment families** across
//! threads, not just one sweep's inner grid.
//!
//! [`crate::sweep::threshold`] and [`crate::compare_strategies`] fan a
//! single call's `x × seeds` (or `strategy × seeds`) grid; the experiment
//! binaries' *outer* loops — one sweep per channel-bound setting, one
//! comparison per topology — historically ran serially around them. This
//! module lifts those outer loops into data:
//!
//! * a [`Battery`] is one independent scenario workload (scenario ×
//!   strategy × seeded random schedules) with a deterministic fold into a
//!   [`BatteryOutcome`];
//! * [`run_batteries`] executes many batteries as **one fused
//!   `battery × seed` grid** through [`zigzag_bcm::par::par_map`], folding
//!   each battery's outcomes back in grid order — the result vector is
//!   identical to mapping [`Battery::run_serial`] over the slice, for any
//!   worker count;
//! * [`ThresholdJob`] / [`thresholds`] do the same for feasibility sweeps:
//!   many [`SweepFamily`] jobs become one `job × x × seeds` grid, and each
//!   job's fold reuses the exact code path of [`crate::sweep::threshold`],
//!   so the fused execution is bit-identical to the serial sequence of
//!   sweeps.
//!
//! Scenarios share their [`zigzag_bcm::Context`] via `Arc`, so a family of
//! hundreds of grid points clones no network or bounds tables.

use std::ops::{Range, RangeInclusive};

use zigzag_bcm::par::{par_map_with, thread_count};
use zigzag_bcm::scheduler::RandomScheduler;

use crate::error::CoordError;
use crate::scenario::{BStrategy, Scenario};
use crate::spec::Verdict;
use crate::sweep::{self, SweepFamily, Threshold};

/// A thread-shareable strategy constructor (each grid point instantiates
/// its own strategy, so stateful strategies never alias across runs).
pub type StrategyFactory<'a> = &'a (dyn Fn() -> Box<dyn BStrategy> + Sync);

/// One independent scenario workload: a scenario run under a strategy
/// across a range of seeded random schedules.
pub struct Battery<'a> {
    /// The scenario (its context is `Arc`-shared, not copied per run).
    pub scenario: Scenario,
    /// Constructor for the strategy `B` consults.
    pub strategy: StrategyFactory<'a>,
    /// Seeds for [`RandomScheduler`], one run each.
    pub seeds: Range<u64>,
}

impl std::fmt::Debug for Battery<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Battery")
            .field("scenario", &self.scenario.spec())
            .field("seeds", &self.seeds)
            .finish_non_exhaustive()
    }
}

/// The deterministic fold of one battery's verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatteryOutcome {
    /// Total runs executed.
    pub runs: u32,
    /// Runs in which `b` was performed.
    pub acted: u32,
    /// Runs violating the specification (0 for sound strategies).
    pub violations: u32,
    /// Sum of `time(b)` ticks over the runs that acted.
    pub b_time_sum: u64,
}

impl BatteryOutcome {
    fn absorb(&mut self, v: &Verdict) {
        self.runs += 1;
        self.violations += !v.ok as u32;
        if let Some(t) = v.b_time {
            self.acted += 1;
            self.b_time_sum += t.ticks();
        }
    }

    /// Mean `time(b)` over the runs that acted, if any.
    pub fn mean_b_time(&self) -> Option<f64> {
        (self.acted > 0).then(|| self.b_time_sum as f64 / self.acted as f64)
    }
}

impl Battery<'_> {
    /// Runs the battery serially on the calling thread — the reference
    /// fold the parallel path is checked against, and what harness cells
    /// embedded in a wider fan-out use.
    ///
    /// # Errors
    ///
    /// Propagates simulator/verification errors.
    pub fn run_serial(&self) -> Result<BatteryOutcome, CoordError> {
        let mut out = BatteryOutcome::default();
        for seed in self.seeds.clone() {
            let mut strategy = (self.strategy)();
            let (_, v) = self
                .scenario
                .run_verified(strategy.as_mut(), &mut RandomScheduler::seeded(seed))?;
            out.absorb(&v);
        }
        Ok(out)
    }
}

/// Runs many batteries as one fused `battery × seed` grid across the
/// default worker count ([`thread_count`], `ZIGZAG_THREADS` to override).
///
/// The outcome vector is **identical** to
/// `batteries.iter().map(Battery::run_serial)` regardless of worker count
/// or scheduling: every grid point is an independent simulation and the
/// fold consumes outcomes in grid order.
///
/// # Errors
///
/// Propagates the first (in grid order) simulator/verification error.
pub fn run_batteries(batteries: &[Battery]) -> Result<Vec<BatteryOutcome>, CoordError> {
    run_batteries_with(thread_count(), batteries)
}

/// [`run_batteries`] with an explicit worker count (`1` = serial on the
/// calling thread); used by determinism tests and callers embedded in
/// wider parallelism.
///
/// # Errors
///
/// Propagates the first (in grid order) simulator/verification error.
pub fn run_batteries_with(
    workers: usize,
    batteries: &[Battery],
) -> Result<Vec<BatteryOutcome>, CoordError> {
    let grid: Vec<(usize, u64)> = batteries
        .iter()
        .enumerate()
        .flat_map(|(bi, b)| b.seeds.clone().map(move |seed| (bi, seed)))
        .collect();
    let outcomes = par_map_with(workers, &grid, |&(bi, seed)| {
        let b = &batteries[bi];
        let mut strategy = (b.strategy)();
        b.scenario
            .run_verified(strategy.as_mut(), &mut RandomScheduler::seeded(seed))
            .map(|(_, v)| v)
    });
    let mut remaining = outcomes.into_iter();
    batteries
        .iter()
        .map(|b| {
            let mut out = BatteryOutcome::default();
            for _ in b.seeds.clone() {
                out.absorb(&remaining.next().expect("one outcome per grid point")?);
            }
            Ok(out)
        })
        .collect()
}

/// One scenario evaluated under several strategies at once — a row of the
/// E9 protocol-comparison table, and the heterogeneous-strategy analogue
/// of a [`Battery`].
pub struct CompareJob<'a> {
    /// The scenario every strategy runs (context `Arc`-shared per run).
    pub scenario: Scenario,
    /// The strategies to compare, in reporting order.
    pub strategies: Vec<StrategyFactory<'a>>,
    /// Seeds for [`RandomScheduler`], one run per `(strategy, seed)`.
    pub seeds: Range<u64>,
}

/// Runs many heterogeneous strategy grids as **one** fused
/// `job × strategy × seed` battery grid: every `(scenario, strategy)`
/// pair becomes a [`Battery`] and the whole table fans through
/// [`run_batteries`]'s single fold. Result `[j][s]` is strategy `s` of
/// job `j` — identical to running each battery serially, for any worker
/// count. [`crate::compare_strategies`] and the E9 experiment rows are
/// both thin wrappers over this, so the one-row and many-row paths
/// cannot drift apart.
///
/// # Errors
///
/// Propagates the first (in grid order) simulator/verification error.
pub fn compare_grid(jobs: &[CompareJob]) -> Result<Vec<Vec<BatteryOutcome>>, CoordError> {
    compare_grid_with(thread_count(), jobs)
}

/// [`compare_grid`] with an explicit worker count (`1` = serial on the
/// calling thread).
///
/// # Errors
///
/// Same conditions as [`compare_grid`].
pub fn compare_grid_with(
    workers: usize,
    jobs: &[CompareJob],
) -> Result<Vec<Vec<BatteryOutcome>>, CoordError> {
    let batteries: Vec<Battery> = jobs
        .iter()
        .flat_map(|j| {
            j.strategies.iter().map(|&strategy| Battery {
                scenario: j.scenario.clone(),
                strategy,
                seeds: j.seeds.clone(),
            })
        })
        .collect();
    let mut outcomes = run_batteries_with(workers, &batteries)?.into_iter();
    Ok(jobs
        .iter()
        .map(|j| {
            j.strategies
                .iter()
                .map(|_| outcomes.next().expect("one outcome per battery"))
                .collect()
        })
        .collect())
}

/// One feasibility-threshold sweep of a scenario family — the unit the
/// fused [`thresholds`] grid is built from.
pub struct ThresholdJob<'a> {
    /// The family to sweep.
    pub family: SweepFamily,
    /// Strategy constructor.
    pub strategy: StrategyFactory<'a>,
    /// Inclusive separation range to sweep.
    pub range: RangeInclusive<i64>,
    /// Random-schedule seeds per grid point.
    pub seeds: u64,
}

/// Runs many threshold sweeps as one fused `job × x × seeds` grid.
///
/// Scenario instantiation stays serial and in job order (validation
/// errors report exactly as the serial sequence would), and each job's
/// fold is the same code [`crate::sweep::threshold`] runs — the results
/// are bit-identical to `jobs.iter().map(|j| threshold(…))`.
///
/// # Errors
///
/// Propagates scenario-validation errors (in job order, before anything
/// runs), then the first simulator error in grid order.
pub fn thresholds(jobs: &[ThresholdJob]) -> Result<Vec<Threshold>, CoordError> {
    thresholds_with(thread_count(), jobs)
}

/// [`thresholds`] with an explicit worker count.
///
/// # Errors
///
/// Same conditions as [`thresholds`].
pub fn thresholds_with(
    workers: usize,
    jobs: &[ThresholdJob],
) -> Result<Vec<Threshold>, CoordError> {
    let scenarios: Vec<Vec<(i64, Scenario)>> = jobs
        .iter()
        .map(|j| sweep::instantiate(&j.family, j.range.clone()))
        .collect::<Result<_, _>>()?;
    let grid: Vec<(usize, usize, u64)> = jobs
        .iter()
        .enumerate()
        .flat_map(|(ji, j)| {
            (0..scenarios[ji].len())
                .flat_map(move |xi| (0..j.seeds).map(move |seed| (ji, xi, seed)))
        })
        .collect();
    let outcomes = par_map_with(workers, &grid, |&(ji, xi, seed)| {
        let mut strategy = (jobs[ji].strategy)();
        scenarios[ji][xi]
            .1
            .run_verified(strategy.as_mut(), &mut RandomScheduler::seeded(seed))
            .map(|(_, v)| (v.b_node.is_some(), v.ok))
    });
    let mut remaining = outcomes.into_iter();
    jobs.iter()
        .zip(&scenarios)
        .map(|(j, scs)| sweep::fold(scs, j.seeds, &mut remaining))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::SimpleForkStrategy;
    use crate::optimal::OptimalStrategy;
    use crate::sweep::threshold;
    use zigzag_bcm::{Network, Time};

    fn fig1_family(lb: u64) -> SweepFamily {
        let mut nb = Network::builder();
        let c = nb.add_process("C");
        let a = nb.add_process("A");
        let b = nb.add_process("B");
        nb.add_channel(c, a, 2, 5).unwrap();
        nb.add_channel(c, b, lb, lb + 3).unwrap();
        SweepFamily {
            context: nb.build().unwrap().into(),
            a,
            b,
            c,
            late: true,
            go_time: Time::new(3),
            horizon: Time::new(70),
            externals: Vec::new(),
        }
    }

    fn battery(x: i64, lb: u64, strategy: StrategyFactory<'_>, seeds: Range<u64>) -> Battery<'_> {
        let family = fig1_family(lb);
        Battery {
            scenario: family.at(x).unwrap(),
            strategy,
            seeds,
        }
    }

    #[test]
    fn fused_batteries_match_serial_fold_at_any_worker_count() {
        let optimal: StrategyFactory<'_> = &|| Box::new(OptimalStrategy::new());
        let fork: StrategyFactory<'_> = &|| Box::new(SimpleForkStrategy::default());
        let batteries: Vec<Battery<'_>> = vec![
            battery(4, 9, optimal, 0..6),
            battery(5, 9, optimal, 0..5),
            battery(0, 3, fork, 2..9),
            battery(-2, 3, optimal, 0..4),
        ];
        let serial: Vec<BatteryOutcome> =
            batteries.iter().map(|b| b.run_serial().unwrap()).collect();
        for workers in [1usize, 2, 8] {
            let fused = run_batteries_with(workers, &batteries).unwrap();
            assert_eq!(fused, serial, "{workers} workers diverged from serial");
        }
        assert_eq!(run_batteries(&batteries).unwrap(), serial);
        // Shape sanity: the feasible fig-1 battery acts everywhere.
        assert_eq!(serial[0].acted, serial[0].runs);
        assert_eq!(serial[0].violations, 0);
        assert!(serial[0].mean_b_time().is_some());
        assert_eq!(serial[1].acted, 0, "x above the fork weight must abstain");
        assert_eq!(serial[1].mean_b_time(), None);
    }

    #[test]
    fn fused_thresholds_match_per_family_sweeps() {
        let optimal: StrategyFactory<'_> = &|| Box::new(OptimalStrategy::new());
        let jobs: Vec<ThresholdJob<'_>> = [3u64, 7, 9, 11]
            .into_iter()
            .map(|lb| ThresholdJob {
                family: fig1_family(lb),
                strategy: optimal,
                range: 0..=8,
                seeds: 4,
            })
            .collect();
        let fused = thresholds(&jobs).unwrap();
        let fused1 = thresholds_with(1, &jobs).unwrap();
        assert_eq!(fused, fused1, "worker count changed threshold results");
        for (job, got) in jobs.iter().zip(&fused) {
            let reference =
                threshold(&job.family, job.strategy, job.range.clone(), job.seeds).unwrap();
            assert_eq!(*got, reference, "fused grid diverged from serial sweep");
        }
        // The fig-1 thresholds are the fork weights L_CB − U_CA, clamped
        // to the swept range.
        let expect: Vec<Option<i64>> = vec![None, Some(2), Some(4), Some(6)];
        assert_eq!(
            fused.iter().map(|t| t.always_acts).collect::<Vec<_>>(),
            expect
        );
    }

    #[test]
    fn fused_compare_grid_matches_per_battery_folds() {
        let optimal: StrategyFactory<'_> = &|| Box::new(OptimalStrategy::new());
        let fork: StrategyFactory<'_> = &|| Box::new(SimpleForkStrategy::default());
        let jobs: Vec<CompareJob<'_>> = [(4i64, 9u64), (5, 9), (0, 3)]
            .into_iter()
            .map(|(x, lb)| CompareJob {
                scenario: fig1_family(lb).at(x).unwrap(),
                strategies: vec![optimal, fork],
                seeds: 0..5,
            })
            .collect();
        let fused = compare_grid(&jobs).unwrap();
        let fused1 = compare_grid_with(1, &jobs).unwrap();
        assert_eq!(fused, fused1, "worker count changed comparison results");
        for (job, row) in jobs.iter().zip(&fused) {
            assert_eq!(row.len(), job.strategies.len());
            for (&strategy, got) in job.strategies.iter().zip(row) {
                let reference = Battery {
                    scenario: job.scenario.clone(),
                    strategy,
                    seeds: job.seeds.clone(),
                }
                .run_serial()
                .unwrap();
                assert_eq!(*got, reference, "fused compare diverged from serial");
            }
        }
        // Shape: at the fork weight both act; above it both abstain.
        assert_eq!(fused[0][0].acted, fused[0][0].runs);
        assert_eq!(fused[1][0].acted, 0);
    }

    #[test]
    fn battery_errors_propagate_in_grid_order() {
        let optimal: StrategyFactory<'_> = &|| Box::new(OptimalStrategy::new());
        // An empty seed range is fine (zero runs), not an error.
        let empty = battery(4, 9, optimal, 3..3);
        let out = run_batteries(&[empty]).unwrap();
        assert_eq!(out[0], BatteryOutcome::default());
        // Debug formatting is available for diagnostics.
        let b = battery(4, 9, optimal, 0..1);
        assert!(format!("{b:?}").contains("Battery"));
    }

    #[test]
    fn threshold_job_validation_errors_surface_before_running() {
        let optimal: StrategyFactory<'_> = &|| Box::new(OptimalStrategy::new());
        let mut family = fig1_family(9);
        family.go_time = Time::ZERO; // invalid: trigger at time 0
        let jobs = vec![ThresholdJob {
            family,
            strategy: optimal,
            range: 0..=2,
            seeds: 2,
        }];
        assert!(thresholds(&jobs).is_err());
    }
}
