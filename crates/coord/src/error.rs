//! Error types for the coordination layer.

use std::fmt;

use zigzag_bcm::BcmError;
use zigzag_core::CoreError;

/// Errors produced by coordination scenarios and verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoordError {
    /// An underlying model error.
    Bcm(BcmError),
    /// An underlying causality-layer error.
    Core(CoreError),
    /// The scenario or specification is malformed (missing channel,
    /// coinciding roles that the spec forbids, …).
    BadScenario {
        /// Explanation of the problem.
        detail: String,
    },
    /// The recorded horizon is too small to determine the verdict (e.g.
    /// `A`'s action node lies beyond the prefix).
    Inconclusive {
        /// Explanation of what could not be determined.
        detail: String,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Bcm(e) => write!(f, "{e}"),
            CoordError::Core(e) => write!(f, "{e}"),
            CoordError::BadScenario { detail } => write!(f, "bad scenario: {detail}"),
            CoordError::Inconclusive { detail } => {
                write!(f, "verdict inconclusive at this horizon: {detail}")
            }
        }
    }
}

impl std::error::Error for CoordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoordError::Bcm(e) => Some(e),
            CoordError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BcmError> for CoordError {
    fn from(e: BcmError) -> Self {
        CoordError::Bcm(e)
    }
}

impl From<CoreError> for CoordError {
    fn from(e: CoreError) -> Self {
        CoordError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        use std::error::Error as _;
        let e: CoordError = BcmError::EmptyNetwork.into();
        assert!(!e.to_string().is_empty());
        assert!(e.source().is_some());
        let e: CoordError = CoreError::PositiveCycle.into();
        assert!(e.source().is_some());
        let e = CoordError::BadScenario { detail: "x".into() };
        assert!(e.to_string().contains("bad scenario"));
        assert!(e.source().is_none());
        let e = CoordError::Inconclusive { detail: "x".into() };
        assert!(e.to_string().contains("inconclusive"));
    }
}
