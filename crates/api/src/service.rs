//! The front door: a [`ZigzagService`] owning sessions and routing
//! queries.
//!
//! The service is the single public entry point the ROADMAP's serving
//! system builds on: callers open typed sessions (batch runs or live
//! streams), append events, and dispatch [`Query`]s — no hand-wiring of
//! `Simulator` / `RunAnalyzer` / `KnowledgeEngine` / `IncrementalEngine`
//! / `StreamDriver` lifetimes. Every later scaling layer (sharded
//! services, async front ends, networked serving over the wire encoding)
//! is a deployment of this surface.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, Weak};
use std::time::{Duration, Instant};

use zigzag_bcm::stream::RunEvent;
use zigzag_bcm::{Context, Run, RunCursor, Time};

use crate::config::SessionConfig;
use crate::error::Error;
use crate::query::{Query, Response};
use crate::session::{AppendReport, BatchSession, Session, StreamSession};
use crate::stats::{LatencyRecorder, StatsReport, StoreStats, TransportCounters};
use crate::store::SessionSnapshot;

/// An opaque handle naming one open session of a [`ZigzagService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// Reconstructs a handle from its raw value (wire decoding, logs).
    pub fn from_raw(raw: u64) -> Self {
        SessionId(raw)
    }

    /// The raw value (wire encoding, logs).
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Default number of session-table shards; see [`ZigzagService::sharded`].
const DEFAULT_SHARDS: usize = 16;

/// One shard of the session table: a slice of the handle space with its
/// own lock, so handle resolution on one shard never contends with
/// another — and so the [`crate::serve`] workers can each *own* a set of
/// shards outright.
#[derive(Debug, Default)]
struct Shard {
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
}

/// The service's monotone serving counters; see [`crate::stats`].
#[derive(Debug, Default)]
struct Metrics {
    /// Dispatches against a resolved session (success or error).
    dispatches: AtomicU64,
    /// Wall-time histogram over those dispatches.
    latency: LatencyRecorder,
    /// Durability counters, billed into by every attached
    /// [`crate::store::SessionStore`] and by export/import.
    store: StoreStats,
}

/// The durable-routing hook a [`crate::SessionSupervisor`] registers on
/// its service: wire-level appends on store-managed sessions go through
/// the store (log + fsync + snapshot cadence) instead of bypassing
/// durability, and [`Query::Recover`] sweeps the store directory.
///
/// The service holds only a [`Weak`] reference — the supervisor owns the
/// service (`Arc`), never the other way around, so dropping the
/// supervisor detaches the hook without a reference cycle.
pub(crate) trait Supervise: Send + Sync {
    /// Appends through the durable store if `id` is store-managed;
    /// `None` means "not mine — use the plain in-memory path".
    fn durable_append(
        &self,
        service: &ZigzagService,
        id: SessionId,
        ev: &RunEvent,
    ) -> Option<Result<AppendReport, Error>>;

    /// Recovers every unattached `<name>.log` in the store directory,
    /// answering (name, assigned id) pairs sorted by name.
    fn recover_all(&self, service: &ZigzagService) -> Result<Vec<(String, SessionId)>, Error>;
}

/// Interior slot for the supervisor hook; manual `Debug` because trait
/// objects have none.
#[derive(Default)]
struct SupervisorSlot(Mutex<Option<Weak<dyn Supervise>>>);

impl fmt::Debug for SupervisorSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let attached = self
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .is_some_and(|w| w.strong_count() > 0);
        f.debug_tuple("SupervisorSlot").field(&attached).finish()
    }
}

/// The unified service facade; see the [module docs](self) and the
/// crate-level example.
///
/// The session table is **sharded**: handles map to shards by
/// `id % shard_count` ([`ZigzagService::shard_of`]), and each shard's own
/// lock is held only for handle resolution (lookup/insert/remove) —
/// never across query evaluation or appends. Each session synchronizes
/// individually (see [`crate::session`]'s locking notes), so slow work on
/// one session does not block another, and traffic on different shards
/// does not even share a resolution lock. The sharding is invisible to
/// answers: every dispatch is byte-identical at any shard count (the
/// shards only partition the handle map).
#[derive(Debug)]
pub struct ZigzagService {
    shards: Box<[Shard]>,
    next: AtomicU64,
    metrics: Metrics,
    supervisor: SupervisorSlot,
}

impl Default for ZigzagService {
    fn default() -> Self {
        ZigzagService::sharded(DEFAULT_SHARDS)
    }
}

impl ZigzagService {
    /// Creates an empty service with the default shard count.
    pub fn new() -> Self {
        ZigzagService::default()
    }

    /// Creates an empty service whose session table is split into
    /// `shards` independently locked shards (clamped to at least 1).
    /// Handles are dealt round-robin across shards, so a shard owns every
    /// `shards`-th session — the partition [`crate::serve`]'s worker
    /// threads dispatch over without cross-worker locking.
    pub fn sharded(shards: usize) -> Self {
        let mut table = Vec::new();
        table.resize_with(shards.max(1), Shard::default);
        ZigzagService {
            shards: table.into_boxed_slice(),
            next: AtomicU64::new(0),
            metrics: Metrics::default(),
            supervisor: SupervisorSlot::default(),
        }
    }

    /// Registers (or replaces) the supervisor hook. `Weak`: the service
    /// must never keep its supervisor alive.
    pub(crate) fn set_supervisor(&self, sup: Weak<dyn Supervise>) {
        *self
            .supervisor
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(sup);
    }

    /// The currently attached supervisor, if it is still alive.
    pub(crate) fn supervisor(&self) -> Option<Arc<dyn Supervise>> {
        self.supervisor
            .0
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .and_then(Weak::upgrade)
    }

    /// Number of session-table shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `id` — stable for the life of the service:
    /// `id.raw() % shard_count`.
    pub fn shard_of(&self, id: SessionId) -> usize {
        (id.0 % self.shards.len() as u64) as usize
    }

    /// The service's durability counters — billed into by
    /// [`crate::store::SessionStore`] operations and by the
    /// export/import path, surfaced by [`Query::Stats`].
    pub fn store_stats(&self) -> &StoreStats {
        &self.metrics.store
    }

    /// Serializes a live stream session into a portable
    /// [`SessionSnapshot`] — the sending half of live migration (and the
    /// in-process form of [`Query::Export`]). The session keeps serving;
    /// the snapshot is a consistent point-in-time copy.
    ///
    /// # Errors
    ///
    /// Fails on unknown or batch sessions, or if the session is poisoned.
    pub fn export(&self, id: SessionId) -> Result<SessionSnapshot, Error> {
        let session = self.session(id)?;
        let Session::Stream(s) = &*session else {
            return Err(Error::NotStreaming { id });
        };
        let snap = SessionSnapshot::of_frozen(s.config().clone(), s.freeze()?);
        self.metrics
            .store
            .migrations
            .fetch_add(1, Ordering::Relaxed);
        Ok(snap)
    }

    /// Installs a shipped [`SessionSnapshot`] as a new stream session of
    /// this service, answering the handle it was assigned — the
    /// receiving half of live migration (and the in-process form of
    /// [`Query::Import`]). The restored session answers every query
    /// byte-identically to the exported one and accepts further appends.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] on an internally inconsistent
    /// snapshot, or propagates the engine error if its run is malformed.
    pub fn import(&self, snap: SessionSnapshot) -> Result<SessionId, Error> {
        let session = crate::store::restore(snap)?;
        self.metrics
            .store
            .migrations
            .fetch_add(1, Ordering::Relaxed);
        Ok(self.insert(Session::Stream(session)))
    }

    /// Installs an already-built session — the store's recovery path.
    pub(crate) fn install(&self, session: Session) -> SessionId {
        self.insert(session)
    }

    fn insert(&self, session: Session) -> SessionId {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        // Table locks guard pure HashMap operations that cannot be
        // interrupted by a panic mid-mutation, so a poisoned lock (left
        // by a panic elsewhere while the lock was held on that stack) is
        // recovered rather than cascaded into every later caller.
        self.shards[(id % self.shards.len() as u64) as usize]
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(id, Arc::new(session));
        SessionId(id)
    }

    /// Resolves a handle to its session, holding only the owning shard's
    /// lock, and only for the lookup.
    pub(crate) fn session(&self, id: SessionId) -> Result<Arc<Session>, Error> {
        self.shards[self.shard_of(id)]
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&id.0)
            .cloned()
            .ok_or(Error::UnknownSession { id })
    }

    /// Opens a batch session over a complete recorded run.
    pub fn open_batch(&self, run: Run, config: SessionConfig) -> SessionId {
        self.insert(Session::Batch(BatchSession::new(run, config)))
    }

    /// Opens a stream session over an empty stream on `context`,
    /// recording up to `horizon`. Feed it with
    /// [`ZigzagService::append`].
    pub fn open_stream(
        &self,
        context: Arc<Context>,
        horizon: Time,
        config: SessionConfig,
    ) -> SessionId {
        self.insert(Session::Stream(StreamSession::new(
            context, horizon, config,
        )))
    }

    /// Opens a stream session and replays a recorded run into it event by
    /// event — the facade form of `IncrementalEngine::ingest` /
    /// `StreamDriver::replay`, returning the session and the per-event
    /// reports.
    ///
    /// # Errors
    ///
    /// Fails if the recorded run is internally inconsistent.
    pub fn open_replay(
        &self,
        run: &Run,
        config: SessionConfig,
    ) -> Result<(SessionId, Vec<AppendReport>), Error> {
        let session = StreamSession::new(run.context_arc(), run.horizon(), config);
        let mut cursor = RunCursor::new(run);
        let mut reports = Vec::with_capacity(cursor.remaining());
        while let Some(ev) = cursor.next_event() {
            reports.push(session.append(&ev)?);
        }
        Ok((self.insert(Session::Stream(session)), reports))
    }

    /// Appends one event to a stream session. Only that session's own
    /// write lock is taken; queries on other sessions proceed.
    ///
    /// # Errors
    ///
    /// Fails on unknown or batch sessions, or if the event is
    /// inconsistent with the grown prefix (which poisons the session's
    /// engine, as `IncrementalEngine::append_event` documents).
    pub fn append(&self, id: SessionId, ev: &RunEvent) -> Result<AppendReport, Error> {
        match &*self.session(id)? {
            Session::Batch(_) => Err(Error::NotStreaming { id }),
            Session::Stream(s) => s.append(ev),
        }
    }

    /// A stream session's current event count — the idempotent probe
    /// behind [`Query::EventCount`] and the client's exactly-once append.
    ///
    /// # Errors
    ///
    /// Fails on unknown or batch sessions, or if the session is poisoned.
    pub fn event_count(&self, id: SessionId) -> Result<u64, Error> {
        match &*self.session(id)? {
            Session::Batch(_) => Err(Error::NotStreaming { id }),
            Session::Stream(s) => Ok(s.event_count()? as u64),
        }
    }

    /// The append path behind [`Query::Append`]: routes through the
    /// attached supervisor's durable store when one manages `id`, falling
    /// back to the plain in-memory [`ZigzagService::append`]. Answers the
    /// event count after the append.
    pub(crate) fn append_routed(&self, id: SessionId, ev: &RunEvent) -> Result<u64, Error> {
        match self
            .supervisor()
            .and_then(|s| s.durable_append(self, id, ev))
        {
            Some(out) => out.map(|_| ()),
            None => self.append(id, ev).map(|_| ()),
        }?;
        self.event_count(id)
    }

    /// The recovery sweep behind [`Query::Recover`]: delegates to the
    /// attached supervisor.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] when no supervisor is attached, or
    /// propagates the first recovery failure.
    pub(crate) fn recover_routed(&self) -> Result<Vec<(String, SessionId)>, Error> {
        match self.supervisor() {
            Some(sup) => sup.recover_all(self),
            None => Err(Error::Store {
                detail: "no supervisor is attached to this service".into(),
            }),
        }
    }

    /// Answers one query (or a whole [`Query::QueryBatch`]) against a
    /// session — *the* code path every caller shares, byte-identical to
    /// the corresponding direct engine calls (pinned by the differential
    /// oracle). Evaluation happens outside the session table's lock.
    ///
    /// # Errors
    ///
    /// Fails on unknown sessions or on the underlying engine error of the
    /// failing query.
    pub fn dispatch(&self, id: SessionId, query: &Query) -> Result<Response, Error> {
        // Stats is service-level: answered here, before any session is
        // resolved (the id is routing information only), and not counted
        // as a dispatch — it measures the serving load, it isn't part of
        // it.
        if matches!(query, Query::Stats) {
            return Ok(Response::Stats(Box::new(self.stats())));
        }
        // Export/Import are service-level too (Import installs into the
        // session table; Export needs the session handle): answered here
        // and not counted as dispatches. For Export the id addresses the
        // session to serialize; for Import it is routing-only.
        if matches!(query, Query::Export) {
            return Ok(Response::Exported(Box::new(self.export(id)?)));
        }
        if let Query::Import(snap) = query {
            return Ok(Response::Imported(self.import((**snap).clone())?));
        }
        // Append/EventCount/Recover are service-level for the same reason:
        // appends route through the attached durable store, the event
        // count is the client's exactly-once probe, and recovery sweeps
        // the whole store directory. Like the others they are not counted
        // as dispatches.
        if let Query::Append(ev) = query {
            return Ok(Response::Appended(self.append_routed(id, ev)?));
        }
        if matches!(query, Query::EventCount) {
            return Ok(Response::EventCount(self.event_count(id)?));
        }
        if matches!(query, Query::Recover) {
            return Ok(Response::Recovered(self.recover_routed()?));
        }
        let session = self.session(id)?;
        let start = Instant::now();
        let out = session.dispatch(query);
        self.record_dispatch(start.elapsed());
        out
    }

    /// Records one dispatch's wall time into the service's counters —
    /// shared by [`ZigzagService::dispatch`] and the [`crate::serve`] /
    /// [`crate::net`] loops (which resolve sessions themselves).
    pub(crate) fn record_dispatch(&self, elapsed: Duration) {
        self.metrics.dispatches.fetch_add(1, Ordering::Relaxed);
        self.metrics.latency.record(elapsed);
    }

    /// A point-in-time [`StatsReport`] with no queue gauges — the answer
    /// [`ZigzagService::dispatch`] gives [`Query::Stats`]. A [`crate::net`]
    /// server answers with [`ZigzagService::stats_with_queues`] instead.
    pub fn stats(&self) -> StatsReport {
        self.stats_with_queues(&[])
    }

    /// A point-in-time [`StatsReport`] carrying the caller's per-worker
    /// queue-depth gauges. Cache counters are summed over every open
    /// session; each shard's lock is held only long enough to copy its
    /// handle list, never across counter collection.
    pub fn stats_with_queues(&self, queue_depths: &[u64]) -> StatsReport {
        self.stats_with_net(queue_depths, TransportCounters::default())
    }

    /// [`ZigzagService::stats_with_queues`] with the caller's transport
    /// counters attached — the form a [`crate::net`] server answers
    /// [`Query::Stats`] with.
    pub fn stats_with_net(
        &self,
        queue_depths: &[u64],
        transport: TransportCounters,
    ) -> StatsReport {
        let mut sessions_per_shard = Vec::with_capacity(self.shards.len());
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for shard in self.shards.iter() {
            let sessions: Vec<Arc<Session>> = shard
                .sessions
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .values()
                .cloned()
                .collect();
            sessions_per_shard.push(sessions.len() as u64);
            for session in &sessions {
                let (h, m, e) = session.cache_counters();
                hits += h;
                misses += m;
                evictions += e;
            }
        }
        StatsReport {
            queries: self.metrics.dispatches.load(Ordering::Relaxed),
            latency: self.metrics.latency.snapshot(),
            observer_hits: hits,
            observer_misses: misses,
            observer_evictions: evictions,
            sessions_per_shard,
            queue_depths: queue_depths.to_vec(),
            transport,
            store: self.metrics.store.snapshot(),
        }
    }

    /// Runs `f` over a session's run (batch) or grown prefix (stream)
    /// without cloning it. The closure must not call back into the
    /// *same stream* session (it holds that session's read lock); calls
    /// on other sessions — or on the same *batch* session — are fine.
    ///
    /// # Errors
    ///
    /// Fails on unknown sessions, or with [`Error::Internal`] on a stream
    /// session poisoned by a panicked append.
    pub fn with_run<T>(&self, id: SessionId, f: impl FnOnce(&Run) -> T) -> Result<T, Error> {
        self.session(id)?.with_run(f)
    }

    /// Number of observer states a session currently holds warm — the
    /// quantity bounded by [`crate::CachePolicy::max_observers`].
    ///
    /// # Errors
    ///
    /// Fails on unknown sessions.
    pub fn observer_count(&self, id: SessionId) -> Result<usize, Error> {
        Ok(self.session(id)?.observer_count())
    }

    /// Number of open sessions (summed across shards).
    pub fn session_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.sessions
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Closes a session, releasing its state.
    ///
    /// # Errors
    ///
    /// Fails on unknown sessions.
    pub fn close(&self, id: SessionId) -> Result<(), Error> {
        self.shards[self.shard_of(id)]
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&id.0)
            .map(|_| ())
            .ok_or(Error::UnknownSession { id })
    }
}
