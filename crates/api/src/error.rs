//! The facade's single error type.
//!
//! Callers of [`crate::ZigzagService`] match one `Error` instead of three
//! layer errors. Conversion is non-lossy: every wrapped layer error is
//! kept whole and exposed through [`std::error::Error::source`], so a
//! caller (or a log formatter walking the chain) sees exactly the failure
//! the layer reported.

use std::fmt;

use zigzag_bcm::BcmError;
use zigzag_coord::CoordError;
use zigzag_core::CoreError;

use crate::service::SessionId;

/// Errors produced by the `zigzag::api` facade.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An underlying model-layer error (network, simulation, run
    /// recording, codec).
    Bcm(BcmError),
    /// An underlying causality-layer error (knowledge engine, graphs,
    /// constructions, incremental pipeline).
    Core(CoreError),
    /// An underlying coordination-layer error (specs, scenarios,
    /// streaming decisions).
    Coord(CoordError),
    /// The session id does not name an open session.
    UnknownSession {
        /// The offending id.
        id: SessionId,
    },
    /// The query needs a live stream but the session is a batch session.
    NotStreaming {
        /// The offending id.
        id: SessionId,
    },
    /// A `CoordDecision` query was dispatched to a session whose
    /// [`crate::SessionConfig`] carries no coordination spec.
    NoSpec,
    /// A wire document could not be decoded.
    Wire {
        /// 1-based line at which decoding failed (0 when unknown).
        line: usize,
        /// Explanation of the malformation.
        detail: String,
    },
    /// A [`crate::Query::Stats`] query reached a bare session — inside a
    /// [`crate::Query::QueryBatch`], or through a direct
    /// [`crate::Session::dispatch`] — where no service-wide state exists
    /// to answer it.
    ServiceLevelQuery,
    /// A [`crate::net`] worker's bounded queue was full when the frame
    /// arrived: the deterministic backpressure verdict (reject now,
    /// rather than buffer without bound).
    Overloaded {
        /// The worker whose queue rejected the frame.
        worker: usize,
    },
    /// The server survived a condition that should be impossible — a
    /// panic caught on a dispatch path, or a lock poisoned by one — and
    /// answered with an error document instead of dying.
    Internal {
        /// What happened, for the log line.
        detail: String,
    },
    /// The durable session store failed: an I/O error on a log or
    /// snapshot file, a malformed on-disk document, or a store operation
    /// addressed to a session it does not manage.
    Store {
        /// What happened (I/O errors are rendered in, since
        /// `std::io::Error` is neither `Clone` nor `PartialEq`).
        detail: String,
    },
    /// A client-side transport failure: the connection dropped, reset, or
    /// timed out before a complete answer arrived. The request *may or may
    /// not* have reached the server — which is why this variant is
    /// retryable for idempotent queries but appends must probe first (see
    /// [`crate::client::ResilientClient`]).
    Transport {
        /// What happened (I/O errors are rendered in, since
        /// `std::io::Error` is neither `Clone` nor `PartialEq`).
        detail: String,
    },
}

impl Error {
    /// Whether a client may safely retry the request that produced this
    /// error.
    ///
    /// The taxonomy is deliberately conservative — retryable means "the
    /// failure is transient *and* retrying cannot corrupt state":
    ///
    /// | Variant | Retryable | Why |
    /// |---|---|---|
    /// | [`Error::Transport`] | yes | connection-level; the server state is intact |
    /// | [`Error::Overloaded`] | yes | deterministic backpressure; back off and resend |
    /// | [`Error::Internal`] | no | the server caught a panic; state is suspect |
    /// | [`Error::Store`] | no | durability failed; blind resend risks duplicates |
    /// | everything else | no | the request itself is wrong; resending cannot help |
    ///
    /// Note the transport/append caveat: a transport failure leaves it
    /// unknown whether an append landed, so [`crate::ResilientClient`]
    /// retries appends only after an event-count probe confirms the event
    /// is absent.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Error::Transport { .. } | Error::Overloaded { .. })
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Bcm(e) => write!(f, "model layer: {e}"),
            Error::Core(e) => write!(f, "causality layer: {e}"),
            Error::Coord(e) => write!(f, "coordination layer: {e}"),
            Error::UnknownSession { id } => write!(f, "unknown session {id}"),
            Error::NotStreaming { id } => {
                write!(f, "session {id} is a batch session; cannot append events")
            }
            Error::NoSpec => write!(
                f,
                "coordination decision requested on a session configured without a spec"
            ),
            Error::Wire { line, detail } => write!(f, "wire: line {line}: {detail}"),
            Error::ServiceLevelQuery => write!(
                f,
                "stats is a service-level query; it cannot be nested in a batch \
                 or dispatched on a bare session"
            ),
            Error::Overloaded { worker } => {
                write!(f, "server overloaded: worker {worker} queue is full")
            }
            Error::Internal { detail } => write!(f, "internal server error: {detail}"),
            Error::Store { detail } => write!(f, "session store: {detail}"),
            Error::Transport { detail } => write!(f, "transport: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Bcm(e) => Some(e),
            Error::Core(e) => Some(e),
            Error::Coord(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BcmError> for Error {
    fn from(e: BcmError) -> Self {
        Error::Bcm(e)
    }
}

impl From<CoreError> for Error {
    fn from(e: CoreError) -> Self {
        Error::Core(e)
    }
}

impl From<CoordError> for Error {
    fn from(e: CoordError) -> Self {
        Error::Coord(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_and_source_chains_are_non_lossy() {
        let bcm: Error = BcmError::EmptyNetwork.into();
        assert!(bcm.to_string().contains("model layer"));
        assert!(bcm.source().is_some());

        let core: Error = CoreError::PositiveCycle.into();
        assert!(core.source().is_some());
        // The wrapped error is kept whole, not re-rendered.
        assert_eq!(
            core.source().unwrap().to_string(),
            CoreError::PositiveCycle.to_string()
        );

        // A two-deep chain stays walkable: Coord wraps Core wraps nothing.
        let coord: Error = CoordError::Core(CoreError::PositiveCycle).into();
        let inner = coord.source().unwrap();
        assert!(inner.source().is_some(), "inner chain was flattened");

        for e in [
            Error::UnknownSession {
                id: SessionId::from_raw(7),
            },
            Error::NotStreaming {
                id: SessionId::from_raw(7),
            },
            Error::NoSpec,
            Error::Wire {
                line: 3,
                detail: "x".into(),
            },
            Error::ServiceLevelQuery,
            Error::Overloaded { worker: 2 },
            Error::Internal {
                detail: "caught panic".into(),
            },
            Error::Store {
                detail: "log unreadable".into(),
            },
            Error::Transport {
                detail: "connection reset".into(),
            },
        ] {
            assert!(!e.to_string().is_empty());
            assert!(e.source().is_none());
        }
    }

    #[test]
    fn retryable_taxonomy_is_exact() {
        assert!(Error::Transport {
            detail: "eof".into()
        }
        .is_retryable());
        assert!(Error::Overloaded { worker: 0 }.is_retryable());
        for e in [
            Error::Bcm(BcmError::EmptyNetwork),
            Error::UnknownSession {
                id: SessionId::from_raw(1),
            },
            Error::NotStreaming {
                id: SessionId::from_raw(1),
            },
            Error::NoSpec,
            Error::Wire {
                line: 1,
                detail: "x".into(),
            },
            Error::ServiceLevelQuery,
            Error::Internal { detail: "p".into() },
            Error::Store { detail: "d".into() },
        ] {
            assert!(!e.is_retryable(), "{e} must not be retryable");
        }
    }
}
