//! The resilient client: a reconnecting, retrying wrapper over the
//! framed envelope protocol of [`crate::net`].
//!
//! [`ResilientClient`] speaks the same length-delimited `zigzag-frame v1`
//! envelopes as the raw [`crate::net::write_envelope`] /
//! [`crate::net::read_envelope`] pair, and adds the failure handling a
//! caller facing a faulty network otherwise reimplements badly:
//!
//! * **Typed errors** — every server `zigzag-error v1` document is parsed
//!   back into the [`Error`] it encodes, and every connection-level
//!   failure (EOF, reset, timeout) becomes [`Error::Transport`], so the
//!   caller matches one enum instead of string-scraping.
//! * **Retry, gated on [`Error::is_retryable`]** — idempotent queries are
//!   retried transparently across reconnects with capped exponential
//!   backoff and deterministic jitter (seeded, so a chaos run replays
//!   byte-identically).
//! * **Exactly-once appends** — [`ResilientClient::append`] never
//!   blind-resends after an ambiguous transport failure: it probes the
//!   session's event count ([`crate::Query::EventCount`]) and resends
//!   only if the event provably did not land. An [`Error::Overloaded`]
//!   rejection *is* resent blindly — the server rejects before enqueueing,
//!   so the append cannot have happened.
//! * **Per-request deadlines** — [`ClientConfig::request_deadline`]
//!   bounds connection establishment and each socket read; a server that
//!   stops answering surfaces a typed [`Error::Transport`] instead of a
//!   hang. (A server trickling bytes can extend a single request beyond
//!   the deadline; each individual read is bounded.)
//!
//! The client is deliberately synchronous and single-connection — one
//! request in flight at a time — because that is the shape the retry and
//! exactly-once reasoning needs. Pipelining callers should use the raw
//! envelope helpers and own their error handling.
//!
//! # What the client never retries
//!
//! Non-idempotent queries ([`crate::Query::Append`] outside the probed
//! [`ResilientClient::append`] path, [`crate::Query::Import`]) are sent
//! at most once per call; everything non-retryable
//! ([`Error::is_retryable`] is `false`) surfaces immediately.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::{Path, PathBuf};
use std::time::Duration;

use rand::{Rng, SeedableRng, StdRng};
use zigzag_bcm::stream::RunEvent;

use crate::error::Error;
use crate::net::{read_envelope, write_envelope};
use crate::query::{Query, Response};
use crate::serve;
use crate::service::SessionId;
use crate::wire;

/// Tuning knobs for a [`ResilientClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientConfig {
    /// Largest accepted reply envelope, in bytes (mirror of the server's
    /// [`crate::NetConfig::max_frame_bytes`]).
    pub max_frame_bytes: usize,
    /// Bound on connection establishment and on each socket read while
    /// waiting for a reply. A request that exceeds it surfaces
    /// [`Error::Transport`] and the connection is discarded.
    pub request_deadline: Duration,
    /// Most retries after the initial attempt (so a request is sent at
    /// most `max_retries + 1` times).
    pub max_retries: u32,
    /// First backoff delay; doubles per attempt up to
    /// [`ClientConfig::backoff_cap`].
    pub backoff_base: Duration,
    /// Ceiling on one backoff delay (before jitter halves it downward).
    pub backoff_cap: Duration,
    /// Seed for the deterministic backoff jitter. Two clients with the
    /// same seed sleep the same jittered delays — the property the chaos
    /// oracle replays.
    pub jitter_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_frame_bytes: 16 << 20,
            request_deadline: Duration::from_secs(5),
            max_retries: 8,
            backoff_base: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(500),
            jitter_seed: 0x5A5A_5A5A_5A5A_5A5A,
        }
    }
}

impl ClientConfig {
    /// The default configuration.
    pub fn new() -> Self {
        ClientConfig::default()
    }

    /// Sets the largest accepted reply envelope.
    pub fn max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Sets the per-request deadline.
    pub fn request_deadline(mut self, deadline: Duration) -> Self {
        self.request_deadline = deadline;
        self
    }

    /// Sets the retry budget (retries after the initial attempt).
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the backoff base and cap.
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Sets the jitter seed.
    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

/// Where the client (re)connects.
#[derive(Debug, Clone)]
enum Target {
    Tcp(SocketAddr),
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Either client-side stream transport.
#[derive(Debug)]
enum ClientStream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl ClientStream {
    fn set_read_timeout(&self, d: Option<Duration>) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.set_read_timeout(d),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.set_read_timeout(d),
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
        }
    }
}

/// A reconnecting, retrying client for a [`crate::net::NetServer`]; see
/// the [module docs](self) for the retry and exactly-once semantics.
#[derive(Debug)]
pub struct ResilientClient {
    target: Target,
    config: ClientConfig,
    conn: Option<ClientStream>,
    rng: StdRng,
}

impl ResilientClient {
    /// Creates a client for a TCP server. The address is resolved now;
    /// the connection itself is established lazily on the first request
    /// (and re-established transparently after any transport failure).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Transport`] if `addr` does not resolve.
    pub fn connect_tcp<A: ToSocketAddrs>(
        addr: A,
        config: ClientConfig,
    ) -> Result<ResilientClient, Error> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| Error::Transport {
                detail: format!("resolving server address: {e}"),
            })?
            .next()
            .ok_or_else(|| Error::Transport {
                detail: "server address resolved to no socket address".into(),
            })?;
        Ok(ResilientClient::with_target(Target::Tcp(addr), config))
    }

    /// Creates a client for a Unix-domain-socket server; like
    /// [`ResilientClient::connect_tcp`], the connection is lazy.
    #[cfg(unix)]
    pub fn connect_unix<P: AsRef<Path>>(path: P, config: ClientConfig) -> ResilientClient {
        ResilientClient::with_target(Target::Unix(path.as_ref().to_path_buf()), config)
    }

    fn with_target(target: Target, config: ClientConfig) -> ResilientClient {
        let rng = StdRng::seed_from_u64(config.jitter_seed);
        ResilientClient {
            target,
            config,
            conn: None,
            rng,
        }
    }

    /// The client's configuration.
    pub fn config(&self) -> &ClientConfig {
        &self.config
    }

    /// Dispatches one query and returns the typed response.
    ///
    /// Idempotent queries (everything except [`Query::Append`] and
    /// [`Query::Import`]) are retried across reconnects on any
    /// [retryable](Error::is_retryable) failure, up to
    /// [`ClientConfig::max_retries`]; non-idempotent queries are sent at
    /// most once — use [`ResilientClient::append`] for the probed,
    /// exactly-once append path.
    ///
    /// # Errors
    ///
    /// Any [`Error`]: server-reported errors arrive typed, transport
    /// failures as [`Error::Transport`].
    pub fn query(&mut self, id: SessionId, q: &Query) -> Result<Response, Error> {
        let idempotent = !matches!(q, Query::Append(_) | Query::Import(_));
        let frame = serve::encode_frame(id, q);
        let mut attempt = 0u32;
        loop {
            match self.exchange(&frame).and_then(|doc| decode_reply(&doc)) {
                Ok(resp) => return Ok(resp),
                Err(e) if idempotent && e.is_retryable() && attempt < self.config.max_retries => {
                    self.backoff(attempt);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Appends one event to a stream session, **exactly once**, even
    /// across transport failures that leave the first attempt's fate
    /// unknown. Returns the session's event count after the append.
    ///
    /// The protocol: probe the event count, send the append, and on a
    /// transport failure re-probe — a count above the baseline means the
    /// append landed (single-writer sessions; concurrent appenders to the
    /// *same* session would make the probe ambiguous, and callers must
    /// serialize per session). Only a probe-confirmed miss is resent.
    /// [`Error::Overloaded`] rejections are resent without a probe: the
    /// server rejects before enqueueing, so nothing happened.
    ///
    /// # Errors
    ///
    /// Any [`Error`]; if the retry budget runs out while the outcome is
    /// still ambiguous, the last [`Error::Transport`] surfaces.
    pub fn append(&mut self, id: SessionId, ev: &RunEvent) -> Result<u64, Error> {
        let baseline = self.event_count(id)?;
        let frame = serve::encode_frame(id, &Query::Append(Box::new(ev.clone())));
        let mut attempt = 0u32;
        loop {
            let outcome = self.exchange(&frame).and_then(|doc| decode_reply(&doc));
            match outcome {
                Ok(Response::Appended(n)) => return Ok(n),
                Ok(other) => {
                    return Err(Error::Wire {
                        line: 0,
                        detail: format!("expected an appended response, got {other:?}"),
                    })
                }
                Err(e) if e.is_retryable() && attempt < self.config.max_retries => {
                    let ambiguous = matches!(e, Error::Transport { .. });
                    self.backoff(attempt);
                    attempt += 1;
                    if ambiguous {
                        // The send may or may not have landed: ask.
                        let now = self.event_count(id)?;
                        if now > baseline {
                            return Ok(now);
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The session's current event count — the idempotent probe behind
    /// [`ResilientClient::append`], exposed because chaos harnesses and
    /// fleet controllers want it too.
    ///
    /// # Errors
    ///
    /// Any [`Error`], including the mismatched-response guard.
    pub fn event_count(&mut self, id: SessionId) -> Result<u64, Error> {
        match self.query(id, &Query::EventCount)? {
            Response::EventCount(n) => Ok(n),
            other => Err(Error::Wire {
                line: 0,
                detail: format!("expected an event-count response, got {other:?}"),
            }),
        }
    }

    /// Triggers the server's supervised recovery sweep
    /// ([`crate::Query::Recover`]) and returns what it attached. The
    /// frame still addresses a session (any id routes it); pass the id of
    /// any session, or `SessionId::from_raw(0)`.
    ///
    /// # Errors
    ///
    /// Any [`Error`]; [`Error::Store`] if the server has no supervisor.
    pub fn recover(&mut self, id: SessionId) -> Result<Vec<(String, SessionId)>, Error> {
        match self.query(id, &Query::Recover)? {
            Response::Recovered(list) => Ok(list),
            other => Err(Error::Wire {
                line: 0,
                detail: format!("expected a recovered response, got {other:?}"),
            }),
        }
    }

    /// One request/reply exchange on the current connection (establishing
    /// it if needed). Any failure discards the connection — after a
    /// timeout or torn read the stream may be desynchronized mid-envelope
    /// and can never be trusted again.
    fn exchange(&mut self, frame: &str) -> Result<String, Error> {
        let out = self.exchange_inner(frame);
        if out.is_err() {
            self.conn = None;
        }
        out
    }

    fn exchange_inner(&mut self, frame: &str) -> Result<String, Error> {
        let max = self.config.max_frame_bytes;
        let conn = self.ensure_conn()?;
        write_envelope(conn, frame).map_err(|e| Error::Transport {
            detail: format!("sending request: {e}"),
        })?;
        match read_envelope(conn, max).map_err(|e| Error::Transport {
            detail: format!("reading reply: {e}"),
        })? {
            Some(doc) => Ok(doc),
            None => Err(Error::Transport {
                detail: "server closed the connection before answering".into(),
            }),
        }
    }

    fn ensure_conn(&mut self) -> Result<&mut ClientStream, Error> {
        if self.conn.is_none() {
            let connect_err = |e: io::Error| Error::Transport {
                detail: format!("connecting: {e}"),
            };
            let stream = match &self.target {
                Target::Tcp(addr) => {
                    let s = TcpStream::connect_timeout(addr, self.config.request_deadline)
                        .map_err(connect_err)?;
                    // Mirror the server: no Nagle stall on small frames.
                    s.set_nodelay(true).map_err(connect_err)?;
                    ClientStream::Tcp(s)
                }
                #[cfg(unix)]
                Target::Unix(path) => {
                    ClientStream::Unix(UnixStream::connect(path).map_err(connect_err)?)
                }
            };
            stream
                .set_read_timeout(Some(self.config.request_deadline))
                .map_err(connect_err)?;
            self.conn = Some(stream);
        }
        Ok(self.conn.as_mut().expect("just ensured"))
    }

    /// The delay before retry number `attempt` (0-based): exponential
    /// from [`ClientConfig::backoff_base`], capped at
    /// [`ClientConfig::backoff_cap`], then jittered uniformly into the
    /// upper half of the window — deterministic per
    /// [`ClientConfig::jitter_seed`].
    fn backoff_delay(&mut self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.max(Duration::from_micros(1));
        let exp = base.saturating_mul(1u32 << attempt.min(16));
        let capped = exp.min(self.config.backoff_cap.max(base));
        let nanos = capped.as_nanos() as u64;
        let jittered = nanos / 2 + self.rng.gen_range(0..nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }

    fn backoff(&mut self, attempt: u32) {
        std::thread::sleep(self.backoff_delay(attempt));
    }
}

/// Decodes one reply document: a `zigzag-error v1` document becomes the
/// typed [`Error`] it encodes, anything else parses as a response.
fn decode_reply(doc: &str) -> Result<Response, Error> {
    if serve::is_error_document(doc) {
        Err(classify_error_doc(doc))
    } else {
        wire::decode_response(doc)
    }
}

/// Parses a server `zigzag-error v1` document back into the [`Error`] it
/// encodes, by its stable display line. Layer errors (model, causality,
/// coordination) cannot be reconstructed losslessly client-side and
/// arrive as [`Error::Internal`] carrying the server's text verbatim;
/// they are non-retryable either way, which is the property the retry
/// loop needs.
fn classify_error_doc(doc: &str) -> Error {
    let line = doc.lines().nth(1).unwrap_or("").trim();
    if let Some(rest) = line.strip_prefix("server overloaded: worker ") {
        let worker = rest
            .split_whitespace()
            .next()
            .and_then(|w| w.parse().ok())
            .unwrap_or(0);
        return Error::Overloaded { worker };
    }
    if let Some(detail) = line.strip_prefix("internal server error: ") {
        return Error::Internal {
            detail: detail.into(),
        };
    }
    if let Some(detail) = line.strip_prefix("session store: ") {
        return Error::Store {
            detail: detail.into(),
        };
    }
    if let Some(detail) = line.strip_prefix("transport: ") {
        return Error::Transport {
            detail: detail.into(),
        };
    }
    if let Some(rest) = line.strip_prefix("unknown session s") {
        if let Ok(raw) = rest.parse::<u64>() {
            return Error::UnknownSession {
                id: SessionId::from_raw(raw),
            };
        }
    }
    if let Some(rest) = line.strip_prefix("session s") {
        if let Some((raw, tail)) = rest.split_once(' ') {
            if tail == "is a batch session; cannot append events" {
                if let Ok(raw) = raw.parse::<u64>() {
                    return Error::NotStreaming {
                        id: SessionId::from_raw(raw),
                    };
                }
            }
        }
    }
    if let Some(rest) = line.strip_prefix("wire: line ") {
        if let Some((n, detail)) = rest.split_once(": ") {
            if let Ok(ln) = n.parse() {
                return Error::Wire {
                    line: ln,
                    detail: detail.into(),
                };
            }
        }
    }
    if line == "coordination decision requested on a session configured without a spec" {
        return Error::NoSpec;
    }
    if line.starts_with("stats is a service-level query") {
        return Error::ServiceLevelQuery;
    }
    Error::Internal {
        detail: format!("server reported: {line}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::EagerScheduler;
    use zigzag_bcm::{RunCursor, SimConfig, Simulator, Time};
    use zigzag_core::GeneralNode;

    use crate::config::SessionConfig;
    use crate::net::{NetConfig, NetServer};
    use crate::service::ZigzagService;

    fn fig_run() -> zigzag_bcm::Run {
        let mut b = zigzag_bcm::Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        let bb = b.add_process("B");
        b.add_channel(c, a, 1, 3).unwrap();
        b.add_channel(c, bb, 7, 9).unwrap();
        b.add_channel(bb, c, 2, 4).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(2), c, "go");
        sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap()
    }

    fn fast_config() -> ClientConfig {
        ClientConfig::new()
            .max_retries(2)
            .backoff(Duration::from_millis(1), Duration::from_millis(4))
            .request_deadline(Duration::from_millis(500))
    }

    #[test]
    fn error_documents_classify_back_to_their_typed_errors() {
        for e in [
            Error::Overloaded { worker: 3 },
            Error::Internal {
                detail: "caught panic in dispatch".into(),
            },
            Error::Store {
                detail: "log unreadable".into(),
            },
            Error::Transport {
                detail: "connection reset".into(),
            },
            Error::UnknownSession {
                id: SessionId::from_raw(42),
            },
            Error::NotStreaming {
                id: SessionId::from_raw(7),
            },
            Error::Wire {
                line: 3,
                detail: "unexpected token".into(),
            },
            Error::NoSpec,
            Error::ServiceLevelQuery,
        ] {
            let doc = serve::encode_error(&e);
            assert_eq!(classify_error_doc(&doc), e, "round-trip failed for {e}");
        }
        // Layer errors fall back to Internal carrying the text verbatim —
        // and stay non-retryable, which is all the retry loop relies on.
        let layer = Error::Bcm(zigzag_bcm::BcmError::EmptyNetwork);
        let fallback = classify_error_doc(&serve::encode_error(&layer));
        assert!(matches!(&fallback, Error::Internal { detail } if detail.contains("model layer")));
        assert!(!fallback.is_retryable());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_growing() {
        let config = ClientConfig::new()
            .backoff(Duration::from_millis(2), Duration::from_millis(50))
            .jitter_seed(99);
        let mut a = ResilientClient::connect_tcp("127.0.0.1:1", config.clone()).unwrap();
        let mut b = ResilientClient::connect_tcp("127.0.0.1:1", config).unwrap();
        let da: Vec<Duration> = (0..10).map(|k| a.backoff_delay(k)).collect();
        let db: Vec<Duration> = (0..10).map(|k| b.backoff_delay(k)).collect();
        assert_eq!(da, db, "same seed must give the same jitter schedule");
        for (k, d) in da.iter().enumerate() {
            assert!(*d <= Duration::from_millis(50), "attempt {k} above the cap");
            // Jitter keeps at least half the exponential window.
            let exp = Duration::from_millis(2 << k.min(16)).min(Duration::from_millis(50));
            assert!(*d >= exp / 2, "attempt {k} below half its window");
        }
        // A different seed gives a different schedule.
        let mut c = ResilientClient::connect_tcp(
            "127.0.0.1:1",
            ClientConfig::new()
                .backoff(Duration::from_millis(2), Duration::from_millis(50))
                .jitter_seed(100),
        )
        .unwrap();
        let dc: Vec<Duration> = (0..10).map(|k| c.backoff_delay(k)).collect();
        assert_ne!(da, dc);
    }

    #[test]
    fn loopback_queries_appends_and_typed_errors() {
        let service = Arc::new(ZigzagService::new());
        let run = fig_run();
        let events: Vec<_> = RunCursor::new(&run).collect();
        let id = service.open_stream(run.context_arc(), run.horizon(), SessionConfig::new());

        let server = NetServer::bind_tcp(
            "127.0.0.1:0",
            Arc::clone(&service),
            NetConfig::new().workers(2),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let mut client = ResilientClient::connect_tcp(addr, fast_config()).unwrap();

        // Appends are exactly-once and report the running count.
        assert_eq!(client.event_count(id).unwrap(), 0);
        for (k, ev) in events.iter().enumerate() {
            assert_eq!(client.append(id, ev).unwrap(), k as u64 + 1);
        }

        // A knowledge query answers byte-identically to the in-process
        // dispatch on the same session.
        let net = run.context().network();
        let c = net.process_by_name("C").unwrap();
        let a = net.process_by_name("A").unwrap();
        let bb = net.process_by_name("B").unwrap();
        let sigma_c = run.external_receipt_node(c, "go").unwrap();
        let theta_a = GeneralNode::chain(sigma_c, &[a]).unwrap();
        let theta_b = GeneralNode::chain(sigma_c, &[bb]).unwrap();
        let q = Query::MaxX {
            sigma: theta_b.resolve(&run).unwrap(),
            theta1: theta_a,
            theta2: theta_b,
        };
        assert_eq!(
            client.query(id, &q).unwrap(),
            service.dispatch(id, &q).unwrap()
        );

        // Server-side errors arrive typed, not as transport failures.
        let missing = SessionId::from_raw(9999);
        let err = client.query(missing, &Query::EventCount).unwrap_err();
        assert_eq!(err, Error::UnknownSession { id: missing });

        // With the server gone, the retry budget drains into a typed,
        // retryable transport error — never a hang.
        server.shutdown();
        let err = client.query(id, &Query::EventCount).unwrap_err();
        assert!(matches!(err, Error::Transport { .. }), "got {err}");
        assert!(err.is_retryable());
    }
}
