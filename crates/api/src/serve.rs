//! The sharded wire-serving loop: N workers, each owning a slice of the
//! session table, dispatching [`crate::wire`] frames.
//!
//! [`crate::ZigzagService`] answers queries synchronously for one caller.
//! This module is the throughput layer the ROADMAP's serving system runs
//! on: a batch of **request frames** — each a [`wire`]-encoded query
//! addressed to a session — is fanned across `workers` threads such that
//! every frame is handled by the worker *owning* its session's shard
//! (`shard_of(session) % workers`). Consequences, by construction rather
//! than by locking discipline:
//!
//! * **no cross-worker locking on the steady path** — a shard's handle
//!   map is only ever touched by its owning worker during the loop, so
//!   its mutex never contends, and dispatch itself runs on the resolved
//!   [`Session`] outside any table lock;
//! * **per-session arrival order** — all frames of one session land on
//!   one worker, which processes its frames in arrival order; responses
//!   are written back into the arrival-order slot of the output, so each
//!   session sees its answers in exactly the order it asked;
//! * **pipelining** — a worker resolves each session through its shard's
//!   lock **once** per loop (memoized thereafter), so a stream of frames
//!   — and every query inside a [`crate::Query::QueryBatch`] frame — on
//!   the same session pays one shard-local lock acquisition, not one per
//!   query.
//!
//! Byte-identity is the contract: for a fixed frame batch against a fixed
//! session table, [`serve`] returns the same `Vec<String>` at **every**
//! worker count — equal to the serial loop decoding, dispatching and
//! re-encoding one frame at a time (pinned at worker counts 1/2/8 by the
//! differential oracle in `tests/oracle.rs`). Frames that fail to decode,
//! or whose dispatch fails, produce a deterministic `zigzag-error v1`
//! document in their slot; the loop never panics on hostile input.
//!
//! # Frame format
//!
//! ```text
//! zigzag-frame v1
//! session 3
//! zigzag-query v1
//! maxx 1 2 0 1 1 2 1 2 0
//! ```
//!
//! — the frame header, the target session's raw handle, then a complete
//! [`wire::encode_query`] document. Responses are plain
//! [`wire::encode_response`] documents; failures are
//! [`encode_error`] documents. Round-tripping is lossless
//! ([`decode_frame`]).

use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::Error;
use crate::query::{Query, Response};
use crate::service::{SessionId, ZigzagService};
use crate::session::Session;
use crate::stats::TransportStats;
use crate::wire;

/// Header line of a request frame.
const FRAME_HEADER: &str = "zigzag-frame v1";
/// Header line of an error response document.
const ERROR_HEADER: &str = "zigzag-error v1";

/// Writer-based form of [`encode_frame`]; see [`wire::encode_query_to`]
/// for the writer-based encoder convention.
///
/// # Errors
///
/// Propagates `out`'s write error (encoding itself cannot fail).
pub fn encode_frame_to<W: fmt::Write>(out: &mut W, session: SessionId, q: &Query) -> fmt::Result {
    writeln!(out, "{FRAME_HEADER}")?;
    writeln!(out, "session {}", session.raw())?;
    wire::encode_query_to(out, q)
}

/// Encodes a request frame: `q` addressed to `session`, in the
/// `zigzag-frame v1` text format (see the [module docs](self)).
pub fn encode_frame(session: SessionId, q: &Query) -> String {
    let mut out = String::new();
    encode_frame_to(&mut out, session, q).expect("writing to a String is infallible");
    out
}

/// Number of frame header lines preceding the embedded query document.
const FRAME_HEADER_LINES: usize = 2;

/// Re-anchors a wire error raised while decoding the embedded query
/// document from body-relative to frame-relative line numbers (the two
/// frame header lines precede the body), so every error a frame
/// produces points at the actual offending frame line.
fn offset_body_error(e: Error) -> Error {
    match e {
        Error::Wire { line, detail } => Error::Wire {
            line: line + FRAME_HEADER_LINES,
            detail,
        },
        other => other,
    }
}

/// Decodes a `zigzag-frame v1` document into its target session and
/// query — the inverse of [`encode_frame`].
///
/// # Errors
///
/// Returns [`Error::Wire`] on malformed input, with line numbers
/// relative to the whole frame.
pub fn decode_frame(text: &str) -> Result<(SessionId, Query), Error> {
    let (session, body) = split_frame(text)?;
    let query = wire::decode_query(body).map_err(offset_body_error)?;
    Ok((session, query))
}

/// Writer-based form of [`encode_error`].
///
/// # Errors
///
/// Propagates `out`'s write error (encoding itself cannot fail).
pub fn encode_error_to<W: fmt::Write>(out: &mut W, e: &Error) -> fmt::Result {
    writeln!(out, "{ERROR_HEADER}")?;
    writeln!(out, "{e}")
}

/// Encodes a failed frame's answer: the `zigzag-error v1` document
/// carrying the error's display text. Deterministic for a given error,
/// so error slots participate in the serving loop's byte-identity
/// contract like any response.
pub fn encode_error(e: &Error) -> String {
    let mut out = String::new();
    encode_error_to(&mut out, e).expect("writing to a String is infallible");
    out
}

/// Whether a serving-loop output slot holds an `zigzag-error v1`
/// document (as opposed to a `zigzag-response v1` answer).
pub fn is_error_document(text: &str) -> bool {
    text.lines()
        .next()
        .is_some_and(|l| l.trim() == ERROR_HEADER)
}

/// Splits a frame into its target session and the embedded query
/// document, validating the two header lines only — the cheap routing
/// parse; the query body is decoded later, on the owning worker.
pub(crate) fn split_frame(text: &str) -> Result<(SessionId, &str), Error> {
    let bad = |line: usize, detail: String| Error::Wire { line, detail };
    let mut rest = text;
    let mut take_line = |line_no: usize| -> Result<&str, Error> {
        let end = rest
            .find('\n')
            .ok_or_else(|| bad(line_no, "unexpected end of frame".into()))?;
        let line = &rest[..end];
        rest = &rest[end + 1..];
        Ok(line)
    };
    let header = take_line(1)?;
    if header.trim() != FRAME_HEADER {
        return Err(bad(1, format!("bad frame header {header:?}")));
    }
    let session_line = take_line(2)?;
    let mut toks = session_line.split_whitespace();
    if toks.next() != Some("session") {
        return Err(bad(
            2,
            format!("expected session line, got {session_line:?}"),
        ));
    }
    let raw = toks
        .next()
        .ok_or_else(|| bad(2, "missing session handle".into()))?;
    let raw: u64 = raw
        .parse()
        .map_err(|_| bad(2, format!("bad session handle {raw:?}")))?;
    if let Some(extra) = toks.next() {
        return Err(bad(2, format!("trailing token {extra:?}")));
    }
    Ok((SessionId::from_raw(raw), rest))
}

/// The live gauges a [`crate::net`] server hands its workers so a
/// [`Query::Stats`] frame answered on the socket path can report them:
/// the per-worker queue depths and the transport counters.
pub(crate) struct NetView<'a> {
    /// Per-worker queue-depth gauges.
    pub queues: &'a [AtomicUsize],
    /// The server's transport counters.
    pub transport: &'a TransportStats,
}

/// Answers one frame into `out` (cleared first): decode, resolve
/// (through `memo`, so one session is looked up through its shard's lock
/// at most once per loop), dispatch, encode — *the* per-frame code path
/// shared by the serial loop, every worker, and the [`crate::net`] front
/// end, which is what makes [`serve`] worker-count-invariant (and the
/// socket server byte-identical to it). Writing into a caller-recycled
/// `String` keeps the warm socket path allocation-free (pinned by
/// `tests/netalloc.rs`).
///
/// Three serving concerns live here so every caller gets them for free:
///
/// * **Service-level interception** — a [`Query::Stats`] frame is
///   answered from the service's counters before any session is resolved
///   (its session line is routing information only); `net` supplies the
///   queue-depth gauges and transport counters of a [`crate::net`]
///   server, `None` reports neither. [`Query::Export`] /
///   [`Query::Import`] frames likewise run at the service level — the
///   migration path works identically in-process and over a socket.
/// * **Latency accounting** — each dispatch against a resolved session is
///   timed into the service's histogram via
///   `ZigzagService::record_dispatch`.
/// * **Panic containment** — a panic anywhere in decode or dispatch is
///   caught and answered as a deterministic [`Error::Internal`] document,
///   so one hostile or buggy frame cannot take down the worker (or, under
///   [`serve`]'s join, the whole batch). The memo only caches `Arc`
///   clones inserted whole, so observing it across the catch is sound.
pub(crate) fn respond_into(
    service: &ZigzagService,
    frame: &str,
    memo: &mut HashMap<u64, Arc<Session>>,
    net: Option<&NetView<'_>>,
    out: &mut String,
) {
    let answer = catch_unwind(AssertUnwindSafe(|| {
        split_frame(frame).and_then(|(id, body)| {
            let query = wire::decode_query(body).map_err(offset_body_error)?;
            if matches!(query, Query::Stats) {
                let (depths, transport) = net
                    .map(|v| {
                        let depths: Vec<u64> = v
                            .queues
                            .iter()
                            .map(|q| q.load(Ordering::Relaxed) as u64)
                            .collect();
                        (depths, v.transport.snapshot())
                    })
                    .unwrap_or_default();
                return Ok(Response::Stats(Box::new(
                    service.stats_with_net(&depths, transport),
                )));
            }
            // Migration frames are service-level like Stats: Export reads
            // the addressed session through the service (never the memo —
            // a migration must see the live table), Import installs a new
            // one; both work identically in-process and over a socket.
            if matches!(query, Query::Export) {
                return Ok(Response::Exported(Box::new(service.export(id)?)));
            }
            // Append/EventCount/Recover are service-level too: wire
            // appends route through the attached durable store (so socket
            // clients get the same durability as in-process callers), the
            // event count is the resilient client's exactly-once probe,
            // and Recover sweeps the supervisor's store directory. Like
            // Export they read the live table, never the memo.
            if let Query::Append(ev) = &query {
                return Ok(Response::Appended(service.append_routed(id, ev)?));
            }
            if matches!(query, Query::EventCount) {
                return Ok(Response::EventCount(service.event_count(id)?));
            }
            if matches!(query, Query::Recover) {
                return Ok(Response::Recovered(service.recover_routed()?));
            }
            if let Query::Import(snap) = query {
                return Ok(Response::Imported(service.import(*snap)?));
            }
            let session = match memo.get(&id.raw()) {
                Some(session) => Arc::clone(session),
                None => {
                    let session = service.session(id)?;
                    memo.insert(id.raw(), Arc::clone(&session));
                    session
                }
            };
            let start = Instant::now();
            let out = session.dispatch(&query);
            service.record_dispatch(start.elapsed());
            out
        })
    }))
    .unwrap_or_else(|_| {
        Err(Error::Internal {
            detail: "panic while answering a frame".into(),
        })
    });
    out.clear();
    match answer {
        Ok(response) => wire::encode_response_to(out, &response),
        Err(e) => encode_error_to(out, &e),
    }
    .expect("writing to a String is infallible");
}

/// [`respond_into`] for the in-process loop, which has no worker queues
/// or transport counters to report and collects owned documents anyway.
fn respond(service: &ZigzagService, frame: &str, memo: &mut HashMap<u64, Arc<Session>>) -> String {
    let mut out = String::new();
    respond_into(service, frame, memo, None, &mut out);
    out
}

/// The worker a frame belongs to: the owner of its session's shard. A
/// frame whose session line cannot even be parsed has no shard; worker 0
/// answers it (with the wire error), keeping the assignment total and
/// deterministic.
pub(crate) fn owner_of(service: &ZigzagService, frame: &str, workers: usize) -> usize {
    match split_frame(frame) {
        Ok((id, _)) => service.shard_of(id) % workers.max(1),
        Err(_) => 0,
    }
}

/// Serves a batch of request frames with `workers` threads, returning
/// one response document per frame, **in arrival order** — see the
/// [module docs](self) for the sharding, ordering and byte-identity
/// contract. The session table is treated as fixed for the duration of
/// the call: concurrent `open`/`close` from other threads may race
/// individual lookups (exactly as they would against the serial loop run
/// at the same moment).
///
/// # Worker-count clamping
///
/// `workers` is a parallelism *hint*, clamped into
/// `[1, max(frames.len(), 1)]`: `workers == 0` (a natural result of
/// sizing off `available_parallelism() - k` or an empty CPU mask) means
/// the serial loop, never a division by zero in shard routing; anything
/// above the frame count is wasted threads and is clamped down. The
/// clamp cannot change any answer — byte-identity holds at every worker
/// count — so it is always safe to apply.
pub fn serve<S: AsRef<str> + Sync>(
    service: &ZigzagService,
    frames: &[S],
    workers: usize,
) -> Vec<String> {
    let workers = workers.max(1).min(frames.len().max(1));
    if workers <= 1 {
        let mut memo = HashMap::new();
        return frames
            .iter()
            .map(|f| respond(service, f.as_ref(), &mut memo))
            .collect();
    }
    // Route once on the calling thread (one header parse per frame),
    // then let each worker index the owner table instead of re-parsing
    // every frame per worker.
    let owners: Vec<usize> = frames
        .iter()
        .map(|f| owner_of(service, f.as_ref(), workers))
        .collect();
    let owners = &owners;
    let mut batches: Vec<Vec<(usize, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut memo = HashMap::new();
                    frames
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| owners[*i] == w)
                        .map(|(i, f)| (i, respond(service, f.as_ref(), &mut memo)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });
    let mut slots: Vec<Option<String>> = Vec::with_capacity(frames.len());
    slots.resize_with(frames.len(), || None);
    for batch in &mut batches {
        for (i, out) in batch.drain(..) {
            slots[i] = Some(out);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every frame is owned by exactly one worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SessionConfig;
    use crate::query::Response;
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::EagerScheduler;
    use zigzag_bcm::{Network, Run, SimConfig, Simulator, Time};
    use zigzag_core::GeneralNode;

    fn fig1_run() -> Run {
        let mut b = Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        let bb = b.add_process("B");
        b.add_channel(c, a, 1, 3).unwrap();
        b.add_channel(c, bb, 7, 9).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(2), c, "go");
        sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap()
    }

    #[test]
    fn frames_round_trip_and_reject_malformed_documents() {
        let sigma = zigzag_bcm::NodeId::new(zigzag_bcm::ProcessId::new(1), 2);
        let q = Query::MaxXMatrix { sigma };
        let id = SessionId::from_raw(7);
        let text = encode_frame(id, &q);
        assert_eq!(decode_frame(&text).unwrap(), (id, q.clone()));
        // Writer-based encoding is byte-identical.
        let mut streamed = String::new();
        encode_frame_to(&mut streamed, id, &q).unwrap();
        assert_eq!(streamed, text);

        for bad in [
            "",
            "zigzag-frame v1",
            "zigzag-frame v1\n",
            "nope\nsession 1\nzigzag-query v1\ncoord\n",
            "zigzag-frame v1\nsession\nzigzag-query v1\ncoord\n",
            "zigzag-frame v1\nsession x\nzigzag-query v1\ncoord\n",
            "zigzag-frame v1\nsession 1 2\nzigzag-query v1\ncoord\n",
            "zigzag-frame v1\nsession 1\nbogus\ncoord\n",
        ] {
            assert!(
                matches!(decode_frame(bad), Err(Error::Wire { .. })),
                "{bad:?}"
            );
        }
        // Body-decode failures report frame-relative line numbers: the
        // bad wire header sits on frame line 3 (after the two frame
        // header lines), not on "line 1" of the embedded document.
        let err = decode_frame("zigzag-frame v1\nsession 1\nbogus\ncoord\n").unwrap_err();
        assert!(
            matches!(err, Error::Wire { line: 3, .. }),
            "body error not re-anchored: {err}"
        );
    }

    #[test]
    fn serve_matches_the_serial_loop_and_flags_errors_in_place() {
        let run = fig1_run();
        let service = ZigzagService::sharded(4);
        let nodes: Vec<_> = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .collect();
        let sessions: Vec<_> = (0..3)
            .map(|_| service.open_batch(run.clone(), SessionConfig::new()))
            .collect();
        let mut frames = Vec::new();
        for (k, &sigma) in nodes.iter().enumerate() {
            let id = sessions[k % sessions.len()];
            frames.push(encode_frame(id, &Query::MaxXMatrix { sigma }));
            frames.push(encode_frame(
                id,
                &Query::QueryBatch(vec![
                    Query::MaxX {
                        sigma,
                        theta1: GeneralNode::basic(nodes[0]),
                        theta2: GeneralNode::basic(sigma),
                    },
                    Query::TightBound {
                        from: nodes[0],
                        to: sigma,
                    },
                ]),
            ));
        }
        // An unknown session and an undecodable frame: deterministic
        // error documents in their arrival slots, not panics.
        frames.push(encode_frame(
            SessionId::from_raw(999),
            &Query::CoordDecision,
        ));
        frames.push("zigzag-frame v1\nsession zero\n".to_string());

        let serial = serve(&service, &frames, 1);
        assert_eq!(serial.len(), frames.len());
        for workers in [2, 3, 8] {
            assert_eq!(
                serve(&service, &frames, workers),
                serial,
                "workers={workers}"
            );
        }
        // The error slots are flagged as such; the rest decode as
        // responses equal to direct dispatch.
        assert!(is_error_document(&serial[serial.len() - 2]));
        assert!(is_error_document(&serial[serial.len() - 1]));
        let (id, q) = decode_frame(&frames[0]).unwrap();
        let direct = service.dispatch(id, &q).unwrap();
        assert!(!is_error_document(&serial[0]));
        assert_eq!(wire::decode_response(&serial[0]).unwrap(), direct);
        let Response::MaxXMatrix(_) = direct else {
            panic!("matrix queries return matrices");
        };
    }

    #[test]
    fn zero_workers_means_serial_not_division_by_zero() {
        // Regression: `workers == 0` falls out naturally of sizing off
        // `available_parallelism() - k`; it must mean "serial loop", not
        // panic in `shard_of(id) % workers`.
        let run = fig1_run();
        let service = ZigzagService::sharded(4);
        let id = service.open_batch(run.clone(), SessionConfig::new());
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .find(|n| !n.is_initial())
            .unwrap();
        let frames = vec![encode_frame(id, &Query::MaxXMatrix { sigma })];
        let zero = serve(&service, &frames, 0);
        assert_eq!(zero, serve(&service, &frames, 1));
        assert_eq!(zero, serve(&service, &frames, usize::MAX));
        // Degenerate extremes: no frames at all, at both clamp edges.
        assert!(serve(&service, &[] as &[&str], 0).is_empty());
        assert!(serve(&service, &[] as &[&str], 7).is_empty());
        // The routing helper is total even for workers == 0.
        assert_eq!(owner_of(&service, &frames[0], 0), 0);
    }

    #[test]
    fn hostile_frames_become_error_documents_not_panics() {
        let run = fig1_run();
        let service = ZigzagService::sharded(4);
        let id = service.open_batch(run, SessionConfig::new());
        let hostile = [
            // Oversized counts: a batch that promises more queries /
            // theta path tokens than the document carries.
            format!(
                "zigzag-frame v1\nsession {}\nzigzag-query v1\nbatch 4000000000\ncoord\n",
                id.raw()
            ),
            format!(
                "zigzag-frame v1\nsession {}\nzigzag-query v1\nmaxx 0 0 0 1 99999999 0 1 0 2 0\n",
                id.raw()
            ),
            // Embedded blank / short lines where documents are promised.
            format!("zigzag-frame v1\nsession {}\nzigzag-query v1\n\n", id.raw()),
            // Trailing garbage after a complete query document.
            format!(
                "zigzag-frame v1\nsession {}\nzigzag-query v1\ncoord\ntrailing garbage\n",
                id.raw()
            ),
            // Stats cannot nest in a batch: service-level error document.
            format!(
                "zigzag-frame v1\nsession {}\nzigzag-query v1\nbatch 1\nstats\n",
                id.raw()
            ),
            // No trailing newline on the session line at all.
            "zigzag-frame v1\nsession 1".to_string(),
        ];
        for workers in [0, 1, 3] {
            let out = serve(&service, &hostile, workers);
            assert_eq!(out.len(), hostile.len());
            for (frame, doc) in hostile.iter().zip(&out) {
                assert!(
                    is_error_document(doc),
                    "workers={workers}: {frame:?} -> {doc:?}"
                );
            }
        }
        // Dispatching Stats on a bare session (not through the service)
        // is refused with the typed service-level error.
        let session = service.session(id).unwrap();
        assert!(matches!(
            session.dispatch(&Query::Stats),
            Err(Error::ServiceLevelQuery)
        ));
    }

    #[test]
    fn stats_frames_are_answered_from_service_counters() {
        let run = fig1_run();
        let service = ZigzagService::sharded(4);
        let id = service.open_batch(run.clone(), SessionConfig::new());
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .find(|n| !n.is_initial())
            .unwrap();
        let work = vec![encode_frame(id, &Query::MaxXMatrix { sigma }); 5];
        serve(&service, &work, 2);
        // The session line of a Stats frame is routing-only: a handle
        // that names no open session still gets the service-wide answer.
        let stats_frame = encode_frame(SessionId::from_raw(999), &Query::Stats);
        let out = serve(&service, &[stats_frame], 1);
        let Response::Stats(report) = wire::decode_response(&out[0]).unwrap() else {
            panic!(
                "stats frame answered with a non-stats document: {:?}",
                out[0]
            );
        };
        assert_eq!(report.queries, 5);
        assert_eq!(report.latency.count(), 5);
        assert!(report.observer_misses >= 1);
        assert!(report.observer_hits >= 4);
        assert_eq!(report.sessions_per_shard.iter().sum::<u64>(), 1);
        assert!(report.queue_depths.is_empty());
    }
}
