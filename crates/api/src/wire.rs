//! A stable, dependency-free wire encoding for [`Query`] / [`Response`].
//!
//! Future networked serving needs requests and answers that survive a
//! byte pipe. Like the run codec (`zigzag_bcm::codec`, which this module
//! reuses verbatim for the runs embedded in fast-run responses), the
//! format is line-oriented text that diffs well and carries a version
//! header:
//!
//! ```text
//! zigzag-query v1
//! knows 1 2 2 1 2 2 1 1 2 2 1 1 0 4
//! ```
//!
//! General nodes are encoded as `⟨proc, index, path-len, path…⟩`; option
//! values as `.` for `None`. Round-tripping is lossless: decoding an
//! encoded query (or response) yields a value equal to the original, and
//! dispatching a decoded query returns the identical response (pinned by
//! a property test in `tests/service.rs`).
//!
//! # zigzag-frame v1 over stream transports
//!
//! On an in-memory batch, frames and responses are plain strings. On a
//! **stream transport** (TCP, Unix sockets — [`crate::net`]), documents
//! are **length-delimited**: each direction carries a sequence of
//! envelopes
//!
//! ```text
//! ┌────────────────────┬──────────────────────────────┐
//! │ length: u32, BE    │ document: length bytes, UTF-8 │
//! └────────────────────┴──────────────────────────────┘
//! ```
//!
//! where the document is, client→server, a complete `zigzag-frame v1`
//! text ([`crate::serve::encode_frame`]) and, server→client, a
//! `zigzag-response v1` or `zigzag-error v1` text — exactly the strings
//! the in-process [`crate::serve::serve`] loop consumes and produces, so
//! the socket boundary adds framing and nothing else. Responses come
//! back in the connection's frame-arrival order. A length above the
//! server's configured cap, or a payload that is not UTF-8, is
//! unrecoverable (the stream can no longer be re-synchronized): the
//! server answers one `zigzag-error v1` envelope and closes the
//! connection. See [`crate::net`] for the listener.

use std::fmt;

use zigzag_bcm::{codec, NetPath, NodeId, ProcessId, Time};
use zigzag_core::{GeneralNode, MaxXMatrix};

use crate::error::Error;
use crate::query::{CoordReport, FastRunReport, Query, Response, WitnessReport};

const QUERY_HEADER: &str = "zigzag-query v1";
const RESPONSE_HEADER: &str = "zigzag-response v1";

/// Maximum `batch` nesting depth accepted by the decoders. Decoding
/// recurses per nesting level, so an unbounded depth would let a small
/// hostile document (`batch 1\n` repeated) overflow the stack; genuine
/// clients batch flat or near-flat.
const MAX_BATCH_DEPTH: usize = 16;

fn bad(line: usize, detail: impl Into<String>) -> Error {
    Error::Wire {
        line,
        detail: detail.into(),
    }
}

fn push_node<W: fmt::Write>(out: &mut W, n: NodeId) -> fmt::Result {
    write!(out, " {} {}", n.proc().index(), n.index())
}

fn push_theta<W: fmt::Write>(out: &mut W, theta: &GeneralNode) -> fmt::Result {
    push_node(out, theta.base())?;
    let procs = theta.path().procs();
    write!(out, " {}", procs.len())?;
    for p in procs {
        write!(out, " {}", p.index())?;
    }
    Ok(())
}

fn push_opt<W: fmt::Write>(out: &mut W, v: Option<i64>) -> fmt::Result {
    match v {
        Some(v) => write!(out, " {v}"),
        None => out.write_str(" ."),
    }
}

fn push_opt_node<W: fmt::Write>(out: &mut W, n: Option<NodeId>) -> fmt::Result {
    match n {
        Some(n) => push_node(out, n),
        None => out.write_str(" ."),
    }
}

/// Embeds a session snapshot as `snaplines <k>` followed by the complete
/// `zigzag-snap v1` document — the same count-then-lines shape as the
/// `runlines` embed of fast-run responses.
fn push_snapshot<W: fmt::Write>(out: &mut W, snap: &crate::store::SessionSnapshot) -> fmt::Result {
    let encoded = crate::store::encode_snapshot(snap);
    writeln!(out, "snaplines {}", encoded.lines().count())?;
    for l in encoded.lines() {
        out.write_str(l)?;
        out.write_str("\n")?;
    }
    Ok(())
}

/// Reads a `snaplines`-embedded snapshot back, count-validated before
/// any line is consumed.
fn pull_snapshot(lines: &mut Lines<'_>) -> Result<crate::store::SessionSnapshot, Error> {
    let kline = lines.next()?;
    let kno = lines.line_no();
    let mut kt = Tokens::new(kline, kno);
    if kt.next()? != "snaplines" {
        return Err(bad(kno, "expected snaplines"));
    }
    let k = lines.expect_lines(kt.num()?, "embedded snapshot")?;
    kt.done()?;
    let mut encoded = String::new();
    for _ in 0..k {
        encoded.push_str(lines.next()?);
        encoded.push('\n');
    }
    crate::store::decode_snapshot(&encoded)
        .map_err(|e| bad(lines.line_no(), format!("embedded snapshot: {e}")))
}

fn encode_query_into<W: fmt::Write>(out: &mut W, q: &Query) -> fmt::Result {
    match q {
        Query::MaxX {
            sigma,
            theta1,
            theta2,
        } => {
            out.write_str("maxx")?;
            push_node(out, *sigma)?;
            push_theta(out, theta1)?;
            push_theta(out, theta2)?;
            out.write_str("\n")
        }
        Query::Knows {
            sigma,
            theta1,
            theta2,
            x,
        } => {
            out.write_str("knows")?;
            push_node(out, *sigma)?;
            push_theta(out, theta1)?;
            push_theta(out, theta2)?;
            writeln!(out, " {x}")
        }
        Query::Witness {
            sigma,
            theta1,
            theta2,
        } => {
            out.write_str("witness")?;
            push_node(out, *sigma)?;
            push_theta(out, theta1)?;
            push_theta(out, theta2)?;
            out.write_str("\n")
        }
        Query::MaxXMatrix { sigma } => {
            out.write_str("matrix")?;
            push_node(out, *sigma)?;
            out.write_str("\n")
        }
        Query::TightBound { from, to } => {
            out.write_str("tight")?;
            push_node(out, *from)?;
            push_node(out, *to)?;
            out.write_str("\n")
        }
        Query::FastRun {
            sigma,
            theta,
            gamma,
            extra_horizon,
        } => {
            out.write_str("fastrun")?;
            push_node(out, *sigma)?;
            push_theta(out, theta)?;
            writeln!(out, " {gamma} {extra_horizon}")
        }
        Query::CoordDecision => out.write_str("coord\n"),
        Query::Stats => out.write_str("stats\n"),
        Query::Export => out.write_str("export\n"),
        Query::Import(snap) => {
            out.write_str("import\n")?;
            push_snapshot(out, snap)
        }
        Query::Append(ev) => {
            // `append` followed by one `ev …` line in the run codec's
            // event encoding — the same line the session log stores.
            out.write_str("append\n")?;
            out.write_str(&codec::encode_event(ev))?;
            out.write_str("\n")
        }
        Query::EventCount => out.write_str("events\n"),
        Query::Recover => out.write_str("recover\n"),
        Query::QueryBatch(queries) => {
            writeln!(out, "batch {}", queries.len())?;
            for q in queries {
                encode_query_into(out, q)?;
            }
            Ok(())
        }
    }
}

/// Writer-based form of [`encode_query`]: streams the `zigzag-query v1`
/// document (header included) into `out` — byte-identical to the
/// `String`-returning encoder, without allocating an intermediate
/// `String` (the serving loop appends directly onto its response
/// buffers; pinned by a property test in `tests/service.rs`).
///
/// # Errors
///
/// Propagates `out`'s write error (encoding itself cannot fail).
pub fn encode_query_to<W: fmt::Write>(out: &mut W, q: &Query) -> fmt::Result {
    out.write_str(QUERY_HEADER)?;
    out.write_str("\n")?;
    encode_query_into(out, q)
}

/// Encodes a query into the `zigzag-query v1` text format.
pub fn encode_query(q: &Query) -> String {
    let mut out = String::new();
    encode_query_to(&mut out, q).expect("writing to a String is infallible");
    out
}

fn encode_response_into<W: fmt::Write>(out: &mut W, r: &Response) -> fmt::Result {
    match r {
        Response::MaxX(v) => {
            out.write_str("maxx")?;
            push_opt(out, *v)?;
            out.write_str("\n")
        }
        Response::Knows(b) => writeln!(out, "knows {b}"),
        Response::Witness(None) => out.write_str("witness .\n"),
        Response::Witness(Some(WitnessReport { weight, pattern })) => {
            writeln!(out, "witness {weight} {pattern}")
        }
        Response::MaxXMatrix(m) => {
            writeln!(out, "matrix {}", m.len())?;
            out.write_str("mnodes")?;
            for &n in m.nodes() {
                push_node(out, n)?;
            }
            out.write_str("\n")?;
            for i in 0..m.len() {
                out.write_str("mrow")?;
                for j in 0..m.len() {
                    push_opt(out, m.at(i, j))?;
                }
                out.write_str("\n")?;
            }
            Ok(())
        }
        Response::TightBound(v) => {
            out.write_str("tight")?;
            push_opt(out, *v)?;
            out.write_str("\n")
        }
        Response::FastRun(FastRunReport {
            sigma,
            gamma,
            theta_time,
            run,
        }) => {
            out.write_str("fastrun")?;
            push_node(out, *sigma)?;
            writeln!(out, " {gamma} {}", theta_time.ticks())?;
            // The embedded run reuses the zigzag-run v1 codec verbatim.
            let encoded = codec::encode(run);
            writeln!(out, "runlines {}", encoded.lines().count())?;
            for l in encoded.lines() {
                out.write_str(l)?;
                out.write_str("\n")?;
            }
            Ok(())
        }
        Response::CoordDecision(CoordReport {
            first_known,
            sigma_c,
        }) => {
            out.write_str("coord")?;
            push_opt_node(out, *first_known)?;
            push_opt_node(out, *sigma_c)?;
            out.write_str("\n")
        }
        Response::Stats(s) => {
            writeln!(
                out,
                "stats {} {} {} {}",
                s.queries, s.observer_hits, s.observer_misses, s.observer_evictions
            )?;
            out.write_str("lat")?;
            for b in &s.latency.buckets {
                write!(out, " {b}")?;
            }
            out.write_str("\nshards")?;
            write!(out, " {}", s.sessions_per_shard.len())?;
            for c in &s.sessions_per_shard {
                write!(out, " {c}")?;
            }
            out.write_str("\nqueues")?;
            write!(out, " {}", s.queue_depths.len())?;
            for d in &s.queue_depths {
                write!(out, " {d}")?;
            }
            let t = &s.transport;
            writeln!(
                out,
                "\nnet 9 {} {} {} {} {} {} {} {} {}",
                t.bytes_in,
                t.bytes_out,
                t.read_syscalls,
                t.write_syscalls,
                t.frames_in,
                t.frames_out,
                t.writer_flushes,
                t.connections,
                t.conn_failures
            )?;
            let d = &s.store;
            writeln!(
                out,
                "store 5 {} {} {} {} {}",
                d.events_logged, d.bytes_written, d.snapshots, d.recoveries, d.migrations
            )
        }
        Response::ResponseBatch(responses) => {
            writeln!(out, "batch {}", responses.len())?;
            for r in responses {
                encode_response_into(out, r)?;
            }
            Ok(())
        }
        Response::Exported(snap) => {
            out.write_str("exported\n")?;
            push_snapshot(out, snap)
        }
        Response::Imported(id) => writeln!(out, "imported {}", id.raw()),
        Response::Appended(n) => writeln!(out, "appended {n}"),
        Response::EventCount(n) => writeln!(out, "events {n}"),
        Response::Recovered(list) => {
            // `recovered <k>` then k `rec <name> <raw-id>` lines; names
            // are token-escaped like the store's own documents.
            writeln!(out, "recovered {}", list.len())?;
            for (name, id) in list {
                writeln!(out, "rec {} {}", codec::escape_token(name), id.raw())?;
            }
            Ok(())
        }
    }
}

/// Writer-based form of [`encode_response`]: streams the
/// `zigzag-response v1` document (header included) into `out` —
/// byte-identical to the `String`-returning encoder, without allocating
/// an intermediate `String` per response (the [`crate::serve`] loop's hot
/// write path; pinned by a property test in `tests/service.rs`).
///
/// # Errors
///
/// Propagates `out`'s write error (encoding itself cannot fail).
pub fn encode_response_to<W: fmt::Write>(out: &mut W, r: &Response) -> fmt::Result {
    out.write_str(RESPONSE_HEADER)?;
    out.write_str("\n")?;
    encode_response_into(out, r)
}

/// Encodes a response into the `zigzag-response v1` text format.
pub fn encode_response(r: &Response) -> String {
    let mut out = String::new();
    encode_response_to(&mut out, r).expect("writing to a String is infallible");
    out
}

/// A cursor over the document's lines, tracking position for errors.
/// Wraps the borrowing line iterator directly — decoding a frame never
/// allocates a line table (the socket fast path decodes one frame per
/// request at steady state; see `tests/netalloc.rs`).
struct Lines<'a> {
    it: std::str::Lines<'a>,
    pos: usize,
    /// Lines not yet consumed, counted once at construction and kept in
    /// step — so count-field validation is O(1) per check. (Walking a
    /// clone of the iterator instead would make a document of N
    /// count-bearing lines cost O(N²) to refuse: a remotely triggerable
    /// CPU sink at 16 MiB frames.)
    left: usize,
}

impl<'a> Lines<'a> {
    fn new(text: &'a str) -> Self {
        let it = text.lines();
        Lines {
            left: it.clone().count(),
            it,
            pos: 0,
        }
    }

    fn line_no(&self) -> usize {
        self.pos
    }

    /// Lines left in the document — O(1), maintained by [`Lines::try_next`].
    fn remaining(&self) -> usize {
        self.left
    }

    /// Validates a count field that promises `n` further lines: a
    /// malformed document must produce [`Error::Wire`], never a
    /// pre-allocation of attacker-controlled size.
    fn expect_lines(&self, n: usize, what: &str) -> Result<usize, Error> {
        let remaining = self.remaining();
        if n > remaining {
            return Err(bad(
                self.pos,
                format!("{what} promises {n} lines but only {remaining} remain"),
            ));
        }
        Ok(n)
    }

    fn next(&mut self) -> Result<&'a str, Error> {
        let line = self
            .try_next()
            .ok_or_else(|| bad(self.pos, "unexpected end of document"))?;
        Ok(line)
    }

    /// [`Lines::next`] without the error construction — for end-of-input
    /// probes where exhaustion is the expected case (building and
    /// discarding the error there would put an allocation on the decode
    /// fast path).
    fn try_next(&mut self) -> Option<&'a str> {
        let line = self.it.next()?;
        self.pos += 1;
        self.left -= 1;
        Some(line)
    }
}

/// A token cursor over one line.
struct Tokens<'a> {
    it: std::str::SplitWhitespace<'a>,
    line_no: usize,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str, line_no: usize) -> Self {
        Tokens {
            it: line.split_whitespace(),
            line_no,
        }
    }

    fn next(&mut self) -> Result<&'a str, Error> {
        self.it
            .next()
            .ok_or_else(|| bad(self.line_no, "missing token"))
    }

    fn num<T: std::str::FromStr>(&mut self) -> Result<T, Error> {
        let tok = self.next()?;
        tok.parse()
            .map_err(|_| bad(self.line_no, format!("bad number {tok:?}")))
    }

    fn node(&mut self) -> Result<NodeId, Error> {
        let p: u32 = self.num()?;
        let i: u32 = self.num()?;
        Ok(NodeId::new(ProcessId::new(p), i))
    }

    fn opt(&mut self) -> Result<Option<i64>, Error> {
        let tok = self.next()?;
        if tok == "." {
            return Ok(None);
        }
        tok.parse()
            .map(Some)
            .map_err(|_| bad(self.line_no, format!("bad value {tok:?}")))
    }

    fn opt_node(&mut self) -> Result<Option<NodeId>, Error> {
        let tok = self.next()?;
        if tok == "." {
            return Ok(None);
        }
        let p: u32 = tok
            .parse()
            .map_err(|_| bad(self.line_no, format!("bad process {tok:?}")))?;
        let i: u32 = self.num()?;
        Ok(Some(NodeId::new(ProcessId::new(p), i)))
    }

    /// Number of tokens left on the line — the budget any same-line
    /// count field must respect before anything is allocated for it.
    fn remaining_on_line(&self) -> usize {
        self.it.clone().count()
    }

    fn theta(&mut self) -> Result<GeneralNode, Error> {
        let base = self.node()?;
        let n: usize = self.num()?;
        // The n path tokens must already be on this line; reject the
        // count before allocating for it.
        if n > self.remaining_on_line() {
            return Err(bad(self.line_no, format!("path promises {n} hops")));
        }
        let mut procs = Vec::with_capacity(n);
        for _ in 0..n {
            procs.push(ProcessId::new(self.num()?));
        }
        let path = NetPath::new(procs)
            .map_err(|e| bad(self.line_no, format!("bad general-node path: {e}")))?;
        GeneralNode::new(base, path)
            .map_err(|e| bad(self.line_no, format!("bad general node: {e}")))
    }

    fn done(&mut self) -> Result<(), Error> {
        match self.it.next() {
            Some(tok) => Err(bad(self.line_no, format!("trailing token {tok:?}"))),
            None => Ok(()),
        }
    }
}

fn decode_query_from(lines: &mut Lines<'_>, depth: usize) -> Result<Query, Error> {
    let line = lines.next()?;
    let no = lines.line_no();
    let mut t = Tokens::new(line, no);
    let kind = t.next()?;
    let q = match kind {
        "maxx" => Query::MaxX {
            sigma: t.node()?,
            theta1: t.theta()?,
            theta2: t.theta()?,
        },
        "knows" => Query::Knows {
            sigma: t.node()?,
            theta1: t.theta()?,
            theta2: t.theta()?,
            x: t.num()?,
        },
        "witness" => Query::Witness {
            sigma: t.node()?,
            theta1: t.theta()?,
            theta2: t.theta()?,
        },
        "matrix" => Query::MaxXMatrix { sigma: t.node()? },
        "tight" => Query::TightBound {
            from: t.node()?,
            to: t.node()?,
        },
        "fastrun" => Query::FastRun {
            sigma: t.node()?,
            theta: t.theta()?,
            gamma: t.num()?,
            extra_horizon: t.num()?,
        },
        "coord" => Query::CoordDecision,
        "stats" => Query::Stats,
        "export" => Query::Export,
        "events" => Query::EventCount,
        "recover" => Query::Recover,
        "append" => {
            t.done()?;
            lines.expect_lines(1, "appended event")?;
            let evline = lines.next()?;
            let ev = codec::decode_event(evline)
                .map_err(|e| bad(lines.line_no(), format!("embedded event: {e}")))?;
            return Ok(Query::Append(Box::new(ev)));
        }
        "import" => {
            t.done()?;
            return Ok(Query::Import(Box::new(pull_snapshot(lines)?)));
        }
        "batch" => {
            if depth >= MAX_BATCH_DEPTH {
                return Err(bad(no, format!("batch nesting exceeds {MAX_BATCH_DEPTH}")));
            }
            let k = lines.expect_lines(t.num()?, "query batch")?;
            t.done()?;
            let mut queries = Vec::with_capacity(k);
            for _ in 0..k {
                queries.push(decode_query_from(lines, depth + 1)?);
            }
            return Ok(Query::QueryBatch(queries));
        }
        other => return Err(bad(no, format!("unknown query {other:?}"))),
    };
    t.done()?;
    Ok(q)
}

/// Decodes a `zigzag-query v1` document.
///
/// # Errors
///
/// Returns [`Error::Wire`] on malformed input.
pub fn decode_query(text: &str) -> Result<Query, Error> {
    let mut lines = Lines::new(text);
    let header = lines.next()?;
    if header.trim() != QUERY_HEADER {
        return Err(bad(1, format!("bad header {header:?}")));
    }
    let q = decode_query_from(&mut lines, 0)?;
    match lines.try_next() {
        None => Ok(q),
        Some(extra) => Err(bad(lines.line_no(), format!("trailing line {extra:?}"))),
    }
}

/// Decodes one `<tag> <n> <v0> … <v(n-1)>` gauge line of a stats
/// document, validating the count against the line before allocating.
fn counted_u64s(lines: &mut Lines<'_>, tag: &str) -> Result<Vec<u64>, Error> {
    let line = lines.next()?;
    let no = lines.line_no();
    let mut t = Tokens::new(line, no);
    if t.next()? != tag {
        return Err(bad(no, format!("expected {tag}")));
    }
    let n: usize = t.num()?;
    if n > t.remaining_on_line() {
        return Err(bad(no, format!("{tag} promises {n} values")));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(t.num()?);
    }
    t.done()?;
    Ok(out)
}

fn decode_response_from(lines: &mut Lines<'_>, depth: usize) -> Result<Response, Error> {
    let line = lines.next()?;
    let no = lines.line_no();
    let mut t = Tokens::new(line, no);
    let kind = t.next()?;
    match kind {
        "maxx" => {
            let v = t.opt()?;
            t.done()?;
            Ok(Response::MaxX(v))
        }
        "knows" => {
            let tok = t.next()?;
            let b = match tok {
                "true" => true,
                "false" => false,
                other => return Err(bad(no, format!("bad bool {other:?}"))),
            };
            t.done()?;
            Ok(Response::Knows(b))
        }
        "witness" => {
            let tok = t.next()?;
            if tok == "." {
                t.done()?;
                return Ok(Response::Witness(None));
            }
            let weight: i64 = tok
                .parse()
                .map_err(|_| bad(no, format!("bad weight {tok:?}")))?;
            // The pattern is the remainder of the line, verbatim (it may
            // contain spaces): everything after "witness <weight> ".
            let prefix = format!("witness {weight} ");
            let pattern = line
                .strip_prefix(&prefix)
                .ok_or_else(|| bad(no, "missing witness pattern"))?
                .to_string();
            Ok(Response::Witness(Some(WitnessReport { weight, pattern })))
        }
        "matrix" => {
            // n rows plus the mnodes line must follow.
            let n = lines.expect_lines(t.num::<usize>()?.saturating_add(1), "matrix")? - 1;
            t.done()?;
            let nline = lines.next()?;
            let nno = lines.line_no();
            let mut nt = Tokens::new(nline, nno);
            if nt.next()? != "mnodes" {
                return Err(bad(nno, "expected mnodes"));
            }
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                nodes.push(nt.node()?);
            }
            nt.done()?;
            // Sized by the document as it is read, not by the promised
            // n² (which a malicious count could inflate quadratically).
            let mut data = Vec::new();
            for _ in 0..n {
                let rline = lines.next()?;
                let rno = lines.line_no();
                let mut rt = Tokens::new(rline, rno);
                if rt.next()? != "mrow" {
                    return Err(bad(rno, "expected mrow"));
                }
                for _ in 0..n {
                    data.push(rt.opt()?);
                }
                rt.done()?;
            }
            MaxXMatrix::from_parts(nodes, data)
                .map(Response::MaxXMatrix)
                .map_err(|e| bad(nno, format!("bad matrix: {e}")))
        }
        "tight" => {
            let v = t.opt()?;
            t.done()?;
            Ok(Response::TightBound(v))
        }
        "fastrun" => {
            let sigma = t.node()?;
            let gamma: u64 = t.num()?;
            let theta_time = Time::new(t.num()?);
            t.done()?;
            let kline = lines.next()?;
            let kno = lines.line_no();
            let mut kt = Tokens::new(kline, kno);
            if kt.next()? != "runlines" {
                return Err(bad(kno, "expected runlines"));
            }
            let k = lines.expect_lines(kt.num()?, "embedded run")?;
            kt.done()?;
            let mut encoded = String::new();
            for _ in 0..k {
                encoded.push_str(lines.next()?);
                encoded.push('\n');
            }
            let run = codec::decode(&encoded)
                .map_err(|e| bad(lines.line_no(), format!("embedded run: {e}")))?;
            Ok(Response::FastRun(FastRunReport {
                sigma,
                gamma,
                theta_time,
                run,
            }))
        }
        "coord" => {
            let first_known = t.opt_node()?;
            let sigma_c = t.opt_node()?;
            t.done()?;
            Ok(Response::CoordDecision(CoordReport {
                first_known,
                sigma_c,
            }))
        }
        "stats" => {
            let queries: u64 = t.num()?;
            let observer_hits: u64 = t.num()?;
            let observer_misses: u64 = t.num()?;
            let observer_evictions: u64 = t.num()?;
            t.done()?;
            let lline = lines.next()?;
            let lno = lines.line_no();
            let mut lt = Tokens::new(lline, lno);
            if lt.next()? != "lat" {
                return Err(bad(lno, "expected lat"));
            }
            let mut latency = crate::stats::LatencyHistogram::new();
            for b in latency.buckets.iter_mut() {
                *b = lt.num()?;
            }
            lt.done()?;
            let sessions_per_shard = counted_u64s(lines, "shards")?;
            let queue_depths = counted_u64s(lines, "queues")?;
            let net = counted_u64s(lines, "net")?;
            let [bytes_in, bytes_out, read_syscalls, write_syscalls, frames_in, frames_out, writer_flushes, connections, conn_failures] =
                net[..]
            else {
                return Err(bad(
                    lines.line_no(),
                    format!("net line carries {} of 9 transport counters", net.len()),
                ));
            };
            let store = counted_u64s(lines, "store")?;
            let [events_logged, bytes_written, snapshots, recoveries, migrations] = store[..]
            else {
                return Err(bad(
                    lines.line_no(),
                    format!("store line carries {} of 5 store counters", store.len()),
                ));
            };
            Ok(Response::Stats(Box::new(crate::stats::StatsReport {
                queries,
                latency,
                observer_hits,
                observer_misses,
                observer_evictions,
                sessions_per_shard,
                queue_depths,
                transport: crate::stats::TransportCounters {
                    bytes_in,
                    bytes_out,
                    read_syscalls,
                    write_syscalls,
                    frames_in,
                    frames_out,
                    writer_flushes,
                    connections,
                    conn_failures,
                },
                store: crate::stats::StoreCounters {
                    events_logged,
                    bytes_written,
                    snapshots,
                    recoveries,
                    migrations,
                },
            })))
        }
        "batch" => {
            if depth >= MAX_BATCH_DEPTH {
                return Err(bad(no, format!("batch nesting exceeds {MAX_BATCH_DEPTH}")));
            }
            let k = lines.expect_lines(t.num()?, "response batch")?;
            t.done()?;
            let mut responses = Vec::with_capacity(k);
            for _ in 0..k {
                responses.push(decode_response_from(lines, depth + 1)?);
            }
            Ok(Response::ResponseBatch(responses))
        }
        "exported" => {
            t.done()?;
            Ok(Response::Exported(Box::new(pull_snapshot(lines)?)))
        }
        "imported" => {
            let raw: u64 = t.num()?;
            t.done()?;
            Ok(Response::Imported(crate::service::SessionId::from_raw(raw)))
        }
        "appended" => {
            let n: u64 = t.num()?;
            t.done()?;
            Ok(Response::Appended(n))
        }
        "events" => {
            let n: u64 = t.num()?;
            t.done()?;
            Ok(Response::EventCount(n))
        }
        "recovered" => {
            let k = lines.expect_lines(t.num()?, "recovered sessions")?;
            t.done()?;
            let mut list = Vec::with_capacity(k);
            for _ in 0..k {
                let rline = lines.next()?;
                let rno = lines.line_no();
                let mut rt = Tokens::new(rline, rno);
                if rt.next()? != "rec" {
                    return Err(bad(rno, "expected rec"));
                }
                let name = codec::unescape_token(rt.next()?)
                    .map_err(|e| bad(rno, format!("bad session name: {e}")))?;
                let raw: u64 = rt.num()?;
                rt.done()?;
                list.push((name, crate::service::SessionId::from_raw(raw)));
            }
            Ok(Response::Recovered(list))
        }
        other => Err(bad(no, format!("unknown response {other:?}"))),
    }
}

/// Decodes a `zigzag-response v1` document.
///
/// # Errors
///
/// Returns [`Error::Wire`] on malformed input.
pub fn decode_response(text: &str) -> Result<Response, Error> {
    let mut lines = Lines::new(text);
    let header = lines.next()?;
    if header.trim() != RESPONSE_HEADER {
        return Err(bad(1, format!("bad header {header:?}")));
    }
    let r = decode_response_from(&mut lines, 0)?;
    match lines.try_next() {
        None => Ok(r),
        Some(extra) => Err(bad(lines.line_no(), format!("trailing line {extra:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zigzag_bcm::ProcessId;

    fn node(p: u32, i: u32) -> NodeId {
        NodeId::new(ProcessId::new(p), i)
    }

    fn theta(p: u32, i: u32, rest: &[u32]) -> GeneralNode {
        let rest: Vec<ProcessId> = rest.iter().map(|&r| ProcessId::new(r)).collect();
        GeneralNode::chain(node(p, i), &rest).unwrap()
    }

    #[test]
    fn queries_round_trip() {
        let queries = vec![
            Query::MaxX {
                sigma: node(1, 2),
                theta1: theta(0, 1, &[2]),
                theta2: theta(1, 2, &[]),
            },
            Query::Knows {
                sigma: node(1, 2),
                theta1: theta(0, 1, &[2, 1]),
                theta2: theta(1, 2, &[]),
                x: -7,
            },
            Query::Witness {
                sigma: node(2, 1),
                theta1: theta(0, 1, &[]),
                theta2: theta(2, 1, &[]),
            },
            Query::MaxXMatrix { sigma: node(0, 3) },
            Query::TightBound {
                from: node(0, 1),
                to: node(2, 4),
            },
            Query::FastRun {
                sigma: node(1, 1),
                theta: theta(1, 1, &[0]),
                gamma: 5,
                extra_horizon: 20,
            },
            Query::CoordDecision,
        ];
        for q in &queries {
            let text = encode_query(q);
            assert_eq!(&decode_query(&text).unwrap(), q, "{text}");
        }
        // Batches nest the same line format.
        let batch = Query::QueryBatch(queries);
        let text = encode_query(&batch);
        assert_eq!(decode_query(&text).unwrap(), batch);
    }

    #[test]
    fn simple_responses_round_trip() {
        let responses = vec![
            Response::MaxX(Some(-4)),
            Response::MaxX(None),
            Response::Knows(true),
            Response::Knows(false),
            Response::Witness(None),
            Response::Witness(Some(WitnessReport {
                weight: 3,
                pattern: "zigzag[1 fork(s): …] visible at p1#2".into(),
            })),
            Response::TightBound(Some(9)),
            Response::TightBound(None),
            Response::CoordDecision(CoordReport {
                first_known: Some(node(2, 1)),
                sigma_c: None,
            }),
            Response::MaxXMatrix(
                MaxXMatrix::from_parts(
                    vec![node(0, 1), node(1, 1)],
                    vec![Some(0), Some(3), None, Some(0)],
                )
                .unwrap(),
            ),
        ];
        for r in &responses {
            let text = encode_response(r);
            assert_eq!(&decode_response(&text).unwrap(), r, "{text}");
        }
        let batch = Response::ResponseBatch(responses);
        let text = encode_response(&batch);
        assert_eq!(decode_response(&text).unwrap(), batch);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(decode_query("").is_err());
        assert!(decode_query("nope").is_err());
        assert!(decode_query("zigzag-query v1\n").is_err());
        assert!(decode_query("zigzag-query v1\nbogus 1\n").is_err());
        assert!(decode_query("zigzag-query v1\nmaxx 1\n").is_err());
        assert!(decode_query("zigzag-query v1\ncoord\ncoord\n").is_err());
        assert!(decode_query("zigzag-query v1\ncoord extra\n").is_err());
        assert!(decode_response("zigzag-response v1\nknows maybe\n").is_err());
        assert!(decode_response("zigzag-response v1\nmatrix 1\nmnodes 0 1\n").is_err());
        assert!(decode_response("zigzag-response v1\nfastrun 0 1 0 5\nrunlines 1\nx\n").is_err());
    }

    #[test]
    fn resilience_documents_round_trip_and_reject_malformations() {
        // Real events to embed: replay a small simulated run's cursor.
        let mut b = zigzag_bcm::Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        b.add_channel(c, a, 1, 3).unwrap();
        let ctx = b.build().unwrap();
        let mut sim =
            zigzag_bcm::Simulator::new(ctx, zigzag_bcm::SimConfig::with_horizon(Time::new(20)));
        sim.external(Time::new(2), c, "go");
        let run = sim
            .run(
                &mut zigzag_bcm::protocols::Ffip::new(),
                &mut zigzag_bcm::scheduler::EagerScheduler,
            )
            .unwrap();
        for ev in zigzag_bcm::RunCursor::new(&run) {
            let q = Query::Append(Box::new(ev));
            let text = encode_query(&q);
            assert_eq!(decode_query(&text).unwrap(), q, "{text}");
        }
        for q in [Query::EventCount, Query::Recover] {
            let text = encode_query(&q);
            assert_eq!(decode_query(&text).unwrap(), q, "{text}");
        }
        for r in [
            Response::Appended(7),
            Response::EventCount(0),
            Response::Recovered(vec![]),
            Response::Recovered(vec![
                (
                    "alpha.log-like".into(),
                    crate::service::SessionId::from_raw(3),
                ),
                ("b".into(), crate::service::SessionId::from_raw(0)),
            ]),
        ] {
            let text = encode_response(&r);
            assert_eq!(decode_response(&text).unwrap(), r, "{text}");
        }
        // Malformations: missing/garbled event line, trailing tokens,
        // count overrun on the recovered list.
        assert!(decode_query("zigzag-query v1\nappend\n").is_err());
        assert!(decode_query("zigzag-query v1\nappend\nmsg 0 1\n").is_err());
        assert!(decode_query("zigzag-query v1\nappend extra\nev 0 1 0 0 0\n").is_err());
        assert!(decode_query("zigzag-query v1\nevents 3\n").is_err());
        assert!(decode_query("zigzag-query v1\nrecover now\n").is_err());
        assert!(decode_response("zigzag-response v1\nappended\n").is_err());
        assert!(decode_response("zigzag-response v1\nevents x\n").is_err());
        assert!(decode_response("zigzag-response v1\nrecovered 2\nrec a 1\n").is_err());
        assert!(decode_response("zigzag-response v1\nrecovered 1\nrec a\n").is_err());
        assert!(decode_response("zigzag-response v1\nrecovered 1\nwrong a 1\n").is_err());
    }

    #[test]
    fn migration_documents_round_trip_and_reject_malformations() {
        // A real session snapshot (with events, a spec and a warm
        // observer set) to embed in Import/Exported documents.
        let mut b = zigzag_bcm::Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        let bb = b.add_process("B");
        b.add_channel(c, a, 1, 3).unwrap();
        b.add_channel(c, bb, 7, 9).unwrap();
        let ctx = b.build().unwrap();
        let mut sim =
            zigzag_bcm::Simulator::new(ctx, zigzag_bcm::SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(2), c, "go");
        let run = sim
            .run(
                &mut zigzag_bcm::protocols::Ffip::new(),
                &mut zigzag_bcm::scheduler::EagerScheduler,
            )
            .unwrap();
        let service = crate::ZigzagService::new();
        let (id, _) = service
            .open_replay(&run, crate::SessionConfig::new())
            .unwrap();
        let snap = service.export(id).unwrap();

        for q in [Query::Export, Query::Import(Box::new(snap.clone()))] {
            let text = encode_query(&q);
            assert_eq!(decode_query(&text).unwrap(), q, "{text}");
        }
        for r in [
            Response::Exported(Box::new(snap.clone())),
            Response::Imported(crate::service::SessionId::from_raw(41)),
        ] {
            let text = encode_response(&r);
            assert_eq!(decode_response(&text).unwrap(), r, "{text}");
        }

        // Malformations: trailing tokens, a bad embed count, an embedded
        // snapshot that does not decode.
        assert!(decode_query("zigzag-query v1\nexport extra\n").is_err());
        assert!(decode_query("zigzag-query v1\nimport\nsnaplines 2\nzigzag-snap v1\n").is_err());
        assert!(decode_query("zigzag-query v1\nimport\nsnaplines 1\ngarbage\n").is_err());
        assert!(decode_response("zigzag-response v1\nimported x\n").is_err());
        assert!(decode_response("zigzag-response v1\nexported\nsnaplines 1\ngarbage\n").is_err());

        // A stats document missing (or overclaiming) the store line is
        // refused like any other count malformation.
        let stats = encode_response(&service.dispatch(id, &Query::Stats).unwrap());
        assert!(stats.contains("\nstore 5 "));
        assert_eq!(
            decode_response(&stats).unwrap(),
            service.dispatch(id, &Query::Stats).unwrap()
        );
        let chopped = stats.replace("\nstore 5 ", "\nstore 9999 ");
        assert!(decode_response(&chopped).is_err());
        let missing: String = stats
            .lines()
            .filter(|l| !l.starts_with("store "))
            .map(|l| format!("{l}\n"))
            .collect();
        assert!(decode_response(&missing).is_err());
    }

    #[test]
    fn hostile_counts_are_rejected_without_allocation() {
        // Counts far beyond the document must come back as wire errors,
        // not capacity panics or giant allocations.
        let huge = u64::MAX;
        for doc in [
            format!("zigzag-query v1\nbatch {huge}\n"),
            format!("zigzag-query v1\nmatrix 0 1\nbatch {huge}\n"),
            format!("zigzag-query v1\nmaxx 0 1 0 1 {huge} 0 1 1 1\n"),
            format!("zigzag-query v1\nfastrun 0 1 0 1 {huge} 0 1 2\n"),
        ] {
            assert!(
                matches!(decode_query(&doc), Err(crate::Error::Wire { .. })),
                "{doc}"
            );
        }
        let doc = format!("zigzag-query v1\nimport\nsnaplines {huge}\n");
        assert!(
            matches!(decode_query(&doc), Err(crate::Error::Wire { .. })),
            "{doc}"
        );
        for doc in [
            format!("zigzag-response v1\nbatch {huge}\n"),
            format!("zigzag-response v1\nmatrix {huge}\nmnodes\n"),
            format!("zigzag-response v1\nfastrun 0 1 0 5\nrunlines {huge}\n"),
            format!("zigzag-response v1\nexported\nsnaplines {huge}\n"),
        ] {
            assert!(
                matches!(decode_response(&doc), Err(crate::Error::Wire { .. })),
                "{doc}"
            );
        }
    }

    #[test]
    fn deep_batch_nesting_is_rejected_not_a_stack_overflow() {
        // A small document nesting `batch 1` hundreds of thousands deep
        // must come back as a wire error, not recurse the decoder off the
        // stack.
        let deep_query = format!("zigzag-query v1\n{}coord\n", "batch 1\n".repeat(500_000));
        assert!(matches!(
            decode_query(&deep_query),
            Err(crate::Error::Wire { .. })
        ));
        let deep_response = format!(
            "zigzag-response v1\n{}knows true\n",
            "batch 1\n".repeat(500_000)
        );
        assert!(matches!(
            decode_response(&deep_response),
            Err(crate::Error::Wire { .. })
        ));
        // Nesting at the limit still decodes.
        let ok = format!(
            "zigzag-query v1\n{}coord\n",
            "batch 1\n".repeat(MAX_BATCH_DEPTH)
        );
        assert!(decode_query(&ok).is_ok());
    }

    #[test]
    fn line_counting_is_exact_and_constant_time_per_check() {
        // The cursor's remaining-line count is maintained incrementally.
        let mut lines = Lines::new("a\nb\nc");
        assert_eq!(lines.remaining(), 3);
        assert!(lines.expect_lines(3, "x").is_ok());
        assert!(lines.expect_lines(4, "x").is_err());
        lines.next().unwrap();
        assert_eq!(lines.remaining(), 2);
        lines.next().unwrap();
        lines.next().unwrap();
        assert_eq!(lines.remaining(), 0);
        assert!(lines.expect_lines(1, "x").is_err());

        // A flat run of N count-bearing lines decodes in linear time: an
        // O(remaining) walk per count check would make this frame take
        // minutes, a remotely triggerable CPU sink.
        let n = 300_000;
        let flat = format!("zigzag-query v1\nbatch {n}\n{}", "batch 0\n".repeat(n));
        let start = std::time::Instant::now();
        let decoded = decode_query(&flat).unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(10),
            "flat count-bearing decode is superlinear: {:?}",
            start.elapsed()
        );
        let Query::QueryBatch(items) = decoded else {
            panic!("expected a batch");
        };
        assert_eq!(items.len(), n);
    }
}
