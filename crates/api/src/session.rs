//! Typed session handles unifying batch runs and live streams.
//!
//! A [`Session`] is the facade's unit of state: either a **batch**
//! session wrapping a complete recorded [`Run`] (the owned form of
//! `zigzag_core::analyzer::RunAnalyzer`'s shared-analysis scheme — one
//! message index, one `GB(r)`, one cached `ObserverState` per queried
//! observer), or a **stream** session wrapping an
//! [`IncrementalEngine`] (optionally driven by a
//! [`zigzag_coord::StreamDriver`] when the config carries a coordination
//! spec) that grows one [`RunEvent`] at a time.
//!
//! Both shapes answer the same [`Query`] family through the same
//! [`SessionBackend`] trait, so a caller — or the bench harness — cannot
//! tell them apart except by whether [`StreamSession::append`] applies.
//! Byte-identity of every answer with the corresponding direct engine
//! call is pinned by the differential oracle (`tests/oracle.rs`).
//!
//! # Locking
//!
//! Sessions synchronize **individually**, never through a shared lock:
//! batch sessions answer queries from `&self` (their interior caches
//! carry their own fine-grained locks), and a stream session guards its
//! growing engine with one `RwLock` — queries share read access,
//! appends take the write side. One slow query on one session never
//! blocks traffic on another. The only re-entrancy hazard left is a
//! [`crate::ZigzagService::with_run`] closure calling back into the
//! *same stream* session (read-read recursion on its `RwLock`), which
//! the method docs forbid.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock, RwLockReadGuard};

use zigzag_bcm::stream::RunEvent;
use zigzag_bcm::{Context, NodeId, Run, Time};
use zigzag_coord::StreamDriver;
use zigzag_core::bounds_graph::BoundsGraph;
use zigzag_core::extended_graph::MessageIndex;
use zigzag_core::incremental::IncrementalEngine;
use zigzag_core::knowledge::{ObserverCache, ObserverMode, ObserverState};
use zigzag_core::KnowledgeEngine;

use crate::config::SessionConfig;
use crate::error::Error;
use crate::query::{CoordReport, FastRunReport, Query, Response, WitnessReport};

/// What one appended event meant for a stream session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// The node the event created.
    pub node: NodeId,
    /// Its time.
    pub time: Time,
    /// For sessions with a coordination spec: `Some(decision)` when the
    /// node belongs to `B` (whether `B` knows enough to act right there),
    /// `None` otherwise. Always `None` without a spec.
    pub b_knows: Option<bool>,
}

/// The engine surface a [`Query`] dispatch needs — the one trait both
/// session shapes implement, so single calls, batches and the bench
/// harness share a single dispatch code path.
pub trait SessionBackend {
    /// The run (for batch sessions) or the grown prefix (for streams).
    fn run(&self) -> &Run;

    /// The knowledge engine observing at `sigma`, served from the
    /// session's observer-state cache under its [`CachePolicy`]
    /// (built on miss, LRU-evicted on overflow).
    ///
    /// [`CachePolicy`]: crate::CachePolicy
    ///
    /// # Errors
    ///
    /// Fails if `sigma` does not appear in the run/prefix.
    fn engine(&self, sigma: NodeId) -> Result<KnowledgeEngine<'_>, Error>;

    /// The tight bound on `time(to) − time(from)` supported by `GB(r)`.
    ///
    /// # Errors
    ///
    /// Fails if `from` is not a recorded node.
    fn tight_bound(&self, from: NodeId, to: NodeId) -> Result<Option<i64>, Error>;

    /// Protocol 2's verdict for the session's configured spec.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::NoSpec`] when the session has no spec.
    fn coord_decision(&self) -> Result<CoordReport, Error>;

    /// Number of observer states currently held warm (the quantity the
    /// cache policy bounds).
    fn observer_count(&self) -> usize;
}

/// Answers one query against any backend — *the* dispatch code path.
pub(crate) fn dispatch_on<B: SessionBackend + ?Sized>(
    backend: &B,
    query: &Query,
) -> Result<Response, Error> {
    match query {
        Query::MaxX {
            sigma,
            theta1,
            theta2,
        } => Ok(Response::MaxX(
            backend.engine(*sigma)?.max_x(theta1, theta2)?,
        )),
        Query::Knows {
            sigma,
            theta1,
            theta2,
            x,
        } => Ok(Response::Knows(
            backend.engine(*sigma)?.knows(theta1, theta2, *x)?,
        )),
        Query::Witness {
            sigma,
            theta1,
            theta2,
        } => Ok(Response::Witness(
            backend
                .engine(*sigma)?
                .witness(theta1, theta2)?
                .map(|(weight, vz)| WitnessReport {
                    weight,
                    pattern: vz.to_string(),
                }),
        )),
        Query::MaxXMatrix { sigma } => Ok(Response::MaxXMatrix(
            backend.engine(*sigma)?.max_x_basic_matrix()?,
        )),
        Query::TightBound { from, to } => {
            Ok(Response::TightBound(backend.tight_bound(*from, *to)?))
        }
        Query::FastRun {
            sigma,
            theta,
            gamma,
            extra_horizon,
        } => {
            let fr = backend
                .engine(*sigma)?
                .fast_run_of(theta, *gamma, *extra_horizon)?;
            Ok(Response::FastRun(FastRunReport {
                sigma: fr.sigma,
                gamma: fr.gamma,
                theta_time: fr.theta_time,
                run: fr.run,
            }))
        }
        Query::CoordDecision => Ok(Response::CoordDecision(backend.coord_decision()?)),
        // Service-level: a bare session has no service-wide counters to
        // answer with. ZigzagService::dispatch (and the serve/net loops)
        // intercept Stats before any session is resolved. Export/Import
        // are likewise intercepted there: exporting needs the session's
        // *handle* (not just backend access), and importing installs a
        // new session into the service table. Append/EventCount/Recover
        // are intercepted too: appends must route through the durable
        // store (and never nest in a batch, where the exactly-once probe
        // could not tell which batch member landed), and recovery sweeps
        // the whole store directory.
        Query::Stats
        | Query::Export
        | Query::Import(_)
        | Query::Append(_)
        | Query::EventCount
        | Query::Recover => Err(Error::ServiceLevelQuery),
        Query::QueryBatch(queries) => queries
            .iter()
            .map(|q| dispatch_on(backend, q))
            .collect::<Result<Vec<_>, _>>()
            .map(Response::ResponseBatch),
    }
}

/// A batch session: the owned, facade-side form of the
/// `RunAnalyzer` shared-analysis scheme over one complete recorded run,
/// with the observer cache bounded by the session's [`CachePolicy`].
///
/// [`CachePolicy`]: crate::CachePolicy
#[derive(Debug)]
pub struct BatchSession {
    run: Run,
    config: SessionConfig,
    /// Per-run message table, resolved once and shared by every derived
    /// `GE(r, σ)` and every coordination decision.
    messages: OnceLock<MessageIndex>,
    /// The global basic bounds graph `GB(r)`, built once per session.
    gb: OnceLock<BoundsGraph>,
    /// The coordination verdict, computed once: the run and config are
    /// immutable, so `CoordDecision` is a constant of the session.
    coord: OnceLock<Result<CoordReport, Error>>,
    observers: Mutex<ObserverCache>,
}

impl BatchSession {
    /// Opens a session over a complete recorded run.
    pub fn new(run: Run, config: SessionConfig) -> Self {
        let cap = config.cache.max_observers;
        BatchSession {
            run,
            config,
            messages: OnceLock::new(),
            gb: OnceLock::new(),
            coord: OnceLock::new(),
            observers: Mutex::new(ObserverCache::new(cap)),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    fn messages(&self) -> &MessageIndex {
        self.messages
            .get_or_init(|| MessageIndex::of_run(&self.run))
    }

    fn gb(&self) -> &BoundsGraph {
        self.gb.get_or_init(|| BoundsGraph::of_run(&self.run))
    }

    /// The session's observer-cache `(hits, misses, evictions)` totals.
    pub(crate) fn cache_counters(&self) -> (u64, u64, u64) {
        let cache = self
            .observers
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        (cache.hits(), cache.misses(), cache.evictions())
    }
}

impl SessionBackend for BatchSession {
    fn run(&self) -> &Run {
        &self.run
    }

    fn engine(&self, sigma: NodeId) -> Result<KnowledgeEngine<'_>, Error> {
        // A panic inside a caller's dispatch can poison this lock; the
        // cache itself is never left mid-mutation (entries are inserted
        // whole, after the build), so recovery is sound and keeps the
        // session serveable.
        let state = self
            .observers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get_or_build(sigma, || {
                ObserverState::build(&self.run, sigma, self.messages())
            })?;
        Ok(KnowledgeEngine::with_state(&self.run, state))
    }

    fn tight_bound(&self, from: NodeId, to: NodeId) -> Result<Option<i64>, Error> {
        // Mirrors IncrementalEngine::tight_bound (memoized per-source
        // SPFA + O(1) target lookup) so the two session shapes share the
        // same answer path.
        let gb = self.gb();
        let lp = gb.longest_from_cached(from)?;
        Ok(gb.graph().index_of(&to).and_then(|i| lp.weight(i)))
    }

    fn coord_decision(&self) -> Result<CoordReport, Error> {
        // The run and spec never change, so the verdict is computed once
        // per session; the per-run message table is decision-invariant
        // and shared. Under the include probe the per-node decision
        // states are exactly the full-mode states knowledge queries use,
        // so they are retained in the session's observer cache for
        // reuse; under the exclude probe the verdict (computed exactly
        // once) is the only consumer of those states, and retaining them
        // would evict warm full-mode states for nothing — so they are
        // built fresh and dropped.
        self.coord
            .get_or_init(|| {
                let spec = self.config.spec.as_ref().ok_or(Error::NoSpec)?;
                let cache = match self.config.probe {
                    zigzag_coord::ProbeSemantics::IncludeOwnSends => Some(&self.observers),
                    zigzag_coord::ProbeSemantics::ExcludeOwnSends => None,
                };
                let (first_known, sigma_c) = zigzag_coord::first_knowledge_cached(
                    spec,
                    &self.run,
                    self.config.probe,
                    self.messages(),
                    cache,
                )?;
                Ok(CoordReport {
                    first_known,
                    sigma_c,
                })
            })
            .clone()
    }

    fn observer_count(&self) -> usize {
        self.observers
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }
}

/// The stream session's engine, with or without a coordination driver.
#[derive(Debug)]
enum StreamInner {
    /// No spec configured: the bare incremental engine.
    Plain(IncrementalEngine),
    /// Spec configured: a [`StreamDriver`] evaluating Protocol 2 online
    /// after every append, wrapping (and owning) the engine.
    Coord(StreamDriver),
}

impl StreamInner {
    fn engine(&self) -> &IncrementalEngine {
        match self {
            StreamInner::Plain(engine) => engine,
            StreamInner::Coord(driver) => driver.engine(),
        }
    }
}

impl SessionBackend for StreamInner {
    fn run(&self) -> &Run {
        self.engine().run()
    }

    fn engine(&self, sigma: NodeId) -> Result<KnowledgeEngine<'_>, Error> {
        Ok(StreamInner::engine(self).engine(sigma)?)
    }

    fn tight_bound(&self, from: NodeId, to: NodeId) -> Result<Option<i64>, Error> {
        Ok(StreamInner::engine(self).tight_bound(from, to)?)
    }

    fn coord_decision(&self) -> Result<CoordReport, Error> {
        match self {
            StreamInner::Plain(_) => Err(Error::NoSpec),
            StreamInner::Coord(driver) => Ok(CoordReport {
                first_known: driver.first_known(),
                sigma_c: driver.sigma_c(),
            }),
        }
    }

    fn observer_count(&self) -> usize {
        self.engine().observer_count()
    }
}

/// A point-in-time copy of a stream session's durable state — the raw
/// material of a [`crate::store::SessionSnapshot`], extracted atomically
/// by [`StreamSession::freeze`].
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenStream {
    /// The grown run prefix (context included).
    pub run: Run,
    /// Events appended so far (one per non-initial node).
    pub events: u64,
    /// The coordination driver's earliest known `B`-node, if any.
    pub first_known: Option<NodeId>,
    /// The coordination driver's trigger node `σ_C`, if seen.
    pub sigma_c: Option<NodeId>,
    /// The `(observer, mode)` key of every warm analysis state — the
    /// manifest recovery uses to pre-build the same warm set.
    pub observers: Vec<(NodeId, ObserverMode)>,
}

/// A stream session: a live, append-only run wrapped around an
/// [`IncrementalEngine`] (plus a [`StreamDriver`] when a coordination
/// spec is configured), under the session's [`CachePolicy`]. The engine
/// sits behind a session-local `RwLock`: queries share read access,
/// appends take the write side — no cross-session lock exists.
///
/// [`CachePolicy`]: crate::CachePolicy
#[derive(Debug)]
pub struct StreamSession {
    inner: RwLock<StreamInner>,
    config: SessionConfig,
    appends: AtomicU64,
}

impl StreamSession {
    /// Opens a session over an empty stream on `context`, recording up to
    /// `horizon`.
    pub fn new(context: Arc<Context>, horizon: Time, config: SessionConfig) -> Self {
        let mut engine = IncrementalEngine::new(context, horizon);
        engine.set_observer_cap(config.cache.max_observers);
        let inner = match &config.spec {
            Some(spec) => StreamInner::Coord(
                StreamDriver::over(spec.clone(), engine).with_probe(config.probe),
            ),
            None => StreamInner::Plain(engine),
        };
        StreamSession {
            inner: RwLock::new(inner),
            config,
            appends: AtomicU64::new(0),
        }
    }

    /// Resumes a session over an engine already holding a recovered (or
    /// imported) run prefix, seeding the coordination progress and the
    /// append counter a snapshot recorded — the restore path of
    /// [`crate::store`]. The engine's observer cap is (re)applied from
    /// `config`; `events` seeds the compaction cadence so periodic
    /// maintenance continues on the same schedule as an uninterrupted
    /// session.
    pub(crate) fn resume(
        config: SessionConfig,
        mut engine: IncrementalEngine,
        events: u64,
        first_known: Option<NodeId>,
        sigma_c: Option<NodeId>,
    ) -> Self {
        engine.set_observer_cap(config.cache.max_observers);
        let inner = match &config.spec {
            Some(spec) => StreamInner::Coord(StreamDriver::resume(
                spec.clone(),
                engine,
                config.probe,
                sigma_c,
                first_known,
            )),
            None => StreamInner::Plain(engine),
        };
        StreamSession {
            inner: RwLock::new(inner),
            config,
            appends: AtomicU64::new(events),
        }
    }

    /// The session's configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// A point-in-time copy of everything a durable snapshot (or a
    /// migration export) needs, extracted under **one** read-lock
    /// acquisition so the run prefix, coordination progress and
    /// warm-observer manifest are mutually consistent even under
    /// concurrent appends.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Internal`] if the session is poisoned.
    pub fn freeze(&self) -> Result<FrozenStream, Error> {
        let inner = self.read()?;
        let engine = inner.engine();
        let (first_known, sigma_c) = match &*inner {
            StreamInner::Plain(_) => (None, None),
            StreamInner::Coord(driver) => (driver.first_known(), driver.sigma_c()),
        };
        Ok(FrozenStream {
            run: engine.run().clone(),
            events: engine.event_count() as u64,
            first_known,
            sigma_c,
            observers: engine.observer_keys(),
        })
    }

    /// Unlike the session's interior `Mutex`es, a poisoned stream lock is
    /// *not* recovered: only the write side (an append) can poison it in
    /// practice, and an append that panicked mid-step may have left the
    /// engine's incremental state half-updated. Refusing with a typed
    /// error (instead of cascading the panic into every later caller)
    /// keeps the server alive while quarantining the session.
    fn read(&self) -> Result<RwLockReadGuard<'_, StreamInner>, Error> {
        self.inner.read().map_err(|_| Error::Internal {
            detail: "stream session poisoned by a panicked append".into(),
        })
    }

    /// Runs `f` over the underlying incremental engine (shared read
    /// access: concurrent queries proceed, appends wait).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Internal`] if an earlier append panicked
    /// mid-step and poisoned the session.
    pub fn with_engine<T>(&self, f: impl FnOnce(&IncrementalEngine) -> T) -> Result<T, Error> {
        Ok(f(self.read()?.engine()))
    }

    /// Number of events appended so far.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Internal`] if the session is poisoned.
    pub fn event_count(&self) -> Result<usize, Error> {
        self.with_engine(IncrementalEngine::event_count)
    }

    /// Appends one event, evaluating the coordination decision when a
    /// spec is configured, and running the cache policy's periodic
    /// append-log compaction.
    ///
    /// # Errors
    ///
    /// Fails if the event is inconsistent with the grown prefix; the
    /// failure poisons the underlying engine (every later operation is
    /// refused) exactly as [`IncrementalEngine::append_event`] documents.
    pub fn append(&self, ev: &RunEvent) -> Result<AppendReport, Error> {
        let mut inner = self.inner.write().map_err(|_| Error::Internal {
            detail: "stream session poisoned by a panicked append".into(),
        })?;
        let report = match &mut *inner {
            StreamInner::Plain(engine) => {
                let node = engine.append_event(ev)?;
                AppendReport {
                    node,
                    time: ev.time,
                    b_knows: None,
                }
            }
            StreamInner::Coord(driver) => {
                let step = driver.step(ev)?;
                AppendReport {
                    node: step.node,
                    time: step.time,
                    b_knows: step.b_knows,
                }
            }
        };
        let appends = self.appends.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(every) = self.config.cache.compact_every {
            if appends.is_multiple_of(every) {
                inner.engine().compact()?;
            }
        }
        Ok(report)
    }

    /// Answers one query on the current prefix (shared read access).
    ///
    /// # Errors
    ///
    /// Propagates the underlying engine error for the failing query.
    pub fn dispatch(&self, query: &Query) -> Result<Response, Error> {
        dispatch_on(&*self.read()?, query)
    }
}

/// One open session of a [`crate::ZigzagService`]: batch or stream,
/// behind the shared [`SessionBackend`] query surface.
#[derive(Debug)]
pub enum Session {
    /// A batch session over a complete recorded run.
    Batch(BatchSession),
    /// A live stream session.
    Stream(StreamSession),
}

impl Session {
    /// Runs `f` over the run (batch) or grown prefix (stream) without
    /// cloning it. The closure must not call back into the same stream
    /// session (it holds the session's read lock).
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Internal`] on a poisoned stream session.
    pub fn with_run<T>(&self, f: impl FnOnce(&Run) -> T) -> Result<T, Error> {
        match self {
            Session::Batch(s) => Ok(f(&s.run)),
            Session::Stream(s) => Ok(f(s.read()?.run())),
        }
    }

    /// Number of observer states currently held warm. A poisoned stream
    /// session reports 0 — its cache is unreachable and will never be
    /// served from again.
    pub fn observer_count(&self) -> usize {
        match self {
            Session::Batch(s) => s.observer_count(),
            Session::Stream(s) => s
                .with_engine(IncrementalEngine::observer_count)
                .unwrap_or(0),
        }
    }

    /// The session's observer-cache `(hits, misses, evictions)` totals;
    /// a poisoned stream session reports zeros.
    pub(crate) fn cache_counters(&self) -> (u64, u64, u64) {
        match self {
            Session::Batch(s) => s.cache_counters(),
            Session::Stream(s) => s
                .with_engine(IncrementalEngine::observer_cache_counters)
                .unwrap_or((0, 0, 0)),
        }
    }

    /// Answers one query; see [`crate::ZigzagService::dispatch`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying engine error for the failing query.
    pub fn dispatch(&self, query: &Query) -> Result<Response, Error> {
        match self {
            Session::Batch(s) => dispatch_on(s, query),
            Session::Stream(s) => s.dispatch(query),
        }
    }
}
