//! Serving observability: latency histograms and the [`StatsReport`]
//! answered by [`crate::Query::Stats`].
//!
//! A serving deployment needs its load problems diagnosable *from the
//! wire*: a client that can send queries must be able to ask where the
//! time goes without shelling into the host. The `Stats` query surfaces
//! three signals through the ordinary wire encoding:
//!
//! * **per-query latency** — a fixed, log-spaced histogram
//!   ([`LatencyHistogram`]) of dispatch wall times, recorded by every
//!   service-level dispatch path ([`crate::ZigzagService::dispatch`] and
//!   the [`crate::serve`] / [`crate::net`] loops);
//! * **observer-cache effectiveness** — hit/miss/eviction counters
//!   aggregated over every open session's
//!   [`zigzag_core::knowledge::ObserverCache`];
//! * **load placement** — open sessions per table shard, and (when
//!   serving through [`crate::net`]) the current per-worker queue
//!   depths;
//! * **transport amortization** — when serving through [`crate::net`],
//!   the [`TransportCounters`]: bytes and syscalls in each direction,
//!   frames scanned per read and coalesced per writer flush, so the
//!   syscall-lean fast path's batching is observable from the wire.
//!
//! Everything here is `std`-only and allocation-free on the record path:
//! the histogram is a fixed array of atomic counters bumped with one
//! `fetch_add` per dispatch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A point-in-time snapshot of a [`crate::net`] server's transport
/// counters — the amortization ledger of the syscall-lean data path. All
/// fields are monotone over the server's lifetime.
///
/// The interesting quantities are the *ratios*: `frames_in /
/// read_syscalls` is how many frames each reader wakeup slurped out of
/// one `read`, `frames_out / writer_flushes` is how many replies each
/// writer wakeup coalesced into one batched write, and `bytes_out /
/// write_syscalls` is the payload a single write carried. A server
/// stuck at ~1 frame per syscall is paying PR 7's two-syscalls-per-
/// envelope tax; a pipelining client should push both ratios well
/// above one. Idle readers still poll (each timeout is a counted
/// `read`), so ratios on a mostly-idle server understate the busy-path
/// amortization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportCounters {
    /// Payload + envelope-header bytes read off client sockets.
    pub bytes_in: u64,
    /// Payload + envelope-header bytes written back to client sockets.
    pub bytes_out: u64,
    /// `read` calls issued on client sockets (including reads that
    /// returned no data: EOF probes and poll-interval timeouts).
    pub read_syscalls: u64,
    /// `write` calls issued on client sockets (the kernel may split a
    /// very large batched write; each server-issued call counts once).
    pub write_syscalls: u64,
    /// Complete request envelopes scanned out of the read buffers.
    pub frames_in: u64,
    /// Response envelopes batched for delivery (errors included),
    /// counted as each is copied into the outgoing batch — *before* its
    /// bytes reach the socket — so a client that has read a reply
    /// always finds it already counted here.
    pub frames_out: u64,
    /// Writer wakeups that flushed at least one coalesced batch —
    /// `frames_out / writer_flushes` is the frames-per-wakeup ratio.
    pub writer_flushes: u64,
    /// Connections accepted and successfully set up.
    pub connections: u64,
    /// Connections refused during setup (e.g. the socket could not be
    /// cloned for the writer half); each was answered with one
    /// deterministic error envelope before closing.
    pub conn_failures: u64,
}

/// The shared-state form of [`TransportCounters`]: one relaxed atomic
/// per counter, bumped by every reader/writer/accept thread of a
/// [`crate::net`] server without locks, snapshotted for [`StatsReport`].
#[derive(Debug, Default)]
pub struct TransportStats {
    /// See [`TransportCounters::bytes_in`].
    pub bytes_in: AtomicU64,
    /// See [`TransportCounters::bytes_out`].
    pub bytes_out: AtomicU64,
    /// See [`TransportCounters::read_syscalls`].
    pub read_syscalls: AtomicU64,
    /// See [`TransportCounters::write_syscalls`].
    pub write_syscalls: AtomicU64,
    /// See [`TransportCounters::frames_in`].
    pub frames_in: AtomicU64,
    /// See [`TransportCounters::frames_out`].
    pub frames_out: AtomicU64,
    /// See [`TransportCounters::writer_flushes`].
    pub writer_flushes: AtomicU64,
    /// See [`TransportCounters::connections`].
    pub connections: AtomicU64,
    /// See [`TransportCounters::conn_failures`].
    pub conn_failures: AtomicU64,
}

impl TransportStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        TransportStats::default()
    }

    /// A point-in-time copy of the counters (relaxed loads: each counter
    /// is monotone and independently meaningful).
    pub fn snapshot(&self) -> TransportCounters {
        TransportCounters {
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            read_syscalls: self.read_syscalls.load(Ordering::Relaxed),
            write_syscalls: self.write_syscalls.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            writer_flushes: self.writer_flushes.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            conn_failures: self.conn_failures.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time snapshot of a service's durable-store counters — the
/// persistence ledger of [`crate::store::SessionStore`] plus the
/// migration traffic answered by `Query::Export` / `Query::Import`. All
/// fields are monotone over the service's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreCounters {
    /// Event records appended to session logs.
    pub events_logged: u64,
    /// Bytes written to session logs and snapshots (headers included).
    pub bytes_written: u64,
    /// Session snapshots written (cadence-triggered and explicit).
    pub snapshots: u64,
    /// Sessions recovered from disk ([`crate::store::SessionStore::recover`]).
    pub recoveries: u64,
    /// Migration operations answered: exports serialized plus imports
    /// installed, in-process or over the wire.
    pub migrations: u64,
}

/// The shared-state form of [`StoreCounters`]: one relaxed atomic per
/// counter, billed into by every [`crate::store::SessionStore`] attached
/// to a service and by the service's own export/import path,
/// snapshotted for [`StatsReport`].
#[derive(Debug, Default)]
pub struct StoreStats {
    /// See [`StoreCounters::events_logged`].
    pub events_logged: AtomicU64,
    /// See [`StoreCounters::bytes_written`].
    pub bytes_written: AtomicU64,
    /// See [`StoreCounters::snapshots`].
    pub snapshots: AtomicU64,
    /// See [`StoreCounters::recoveries`].
    pub recoveries: AtomicU64,
    /// See [`StoreCounters::migrations`].
    pub migrations: AtomicU64,
}

impl StoreStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        StoreStats::default()
    }

    /// A point-in-time copy of the counters (relaxed loads: each counter
    /// is monotone and independently meaningful).
    pub fn snapshot(&self) -> StoreCounters {
        StoreCounters {
            events_logged: self.events_logged.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            migrations: self.migrations.load(Ordering::Relaxed),
        }
    }
}

/// Number of histogram buckets. Bucket `i` counts latencies in
/// `[2^i, 2^(i+1))` nanoseconds (bucket 0 also absorbs 0 ns); the last
/// bucket absorbs everything from `2^31` ns (~2.1 s) up.
pub const LATENCY_BUCKETS: usize = 32;

/// A fixed log-spaced latency histogram: bucket `i` counts samples whose
/// wall time in nanoseconds satisfies `2^i <= ns < 2^(i+1)` (bucket 0
/// additionally holds 0–1 ns, the final bucket holds everything
/// ≥ `2^31` ns). Log-spaced fixed buckets keep the wire encoding stable
/// and the record path branch-free — no configuration handshake, no
/// dynamic re-bucketing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts; see [`LatencyHistogram::bucket_bounds`].
    pub buckets: [u64; LATENCY_BUCKETS],
}

/// The bucket index for a sample of `ns` nanoseconds.
fn bucket_of(ns: u128) -> usize {
    // floor(log2(ns)) clamped into [0, LATENCY_BUCKETS): 0 and 1 ns land
    // in bucket 0, and everything >= 2^(LATENCY_BUCKETS - 1) ns lands in
    // the final bucket.
    let ns = ns.max(1);
    ((127 - ns.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, elapsed: Duration) {
        self.buckets[bucket_of(elapsed.as_nanos())] += 1;
    }

    /// Total number of samples across all buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The half-open nanosecond range `[lo, hi)` counted by bucket `i`
    /// (the final bucket's `hi` saturates at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= LATENCY_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < LATENCY_BUCKETS, "bucket {i} out of range");
        let lo = if i == 0 { 0 } else { 1u64 << i };
        let hi = if i + 1 == LATENCY_BUCKETS {
            u64::MAX
        } else {
            1u64 << (i + 1)
        };
        (lo, hi)
    }
}

/// The shared-state form of [`LatencyHistogram`]: one atomic counter per
/// bucket, recorded into concurrently by every dispatch path of a
/// service without locks, snapshotted into a plain histogram for
/// [`StatsReport`].
#[derive(Debug, Default)]
pub struct LatencyRecorder {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        LatencyRecorder::default()
    }

    /// Records one sample (relaxed ordering: counters are monotone and
    /// independently meaningful; no cross-counter invariant is read).
    pub fn record(&self, elapsed: Duration) {
        self.buckets[bucket_of(elapsed.as_nanos())].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for (o, b) in out.buckets.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }
}

/// The answer to [`crate::Query::Stats`]: a point-in-time snapshot of a
/// service's serving counters. All counters are monotone over the
/// service's lifetime except [`StatsReport::sessions_per_shard`] and
/// [`StatsReport::queue_depths`], which are instantaneous gauges.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Dispatches recorded so far: every query (or whole `QueryBatch`)
    /// evaluated against a resolved session through a service-level path
    /// — [`crate::ZigzagService::dispatch`], [`crate::serve::serve`] or
    /// the [`crate::net`] loop — whether it succeeded or returned an
    /// error. Frames that never reach a session (undecodable, unknown
    /// session) are not dispatches.
    pub queries: u64,
    /// Wall-time histogram over those dispatches.
    pub latency: LatencyHistogram,
    /// Observer-state cache lookups served warm, summed over every open
    /// session (closed sessions take their counters with them).
    pub observer_hits: u64,
    /// Observer-state cache lookups that built a state, summed over
    /// every open session.
    pub observer_misses: u64,
    /// Observer states evicted under the sessions' LRU bounds, summed
    /// over every open session.
    pub observer_evictions: u64,
    /// Open sessions per table shard (gauge; indexed by shard).
    pub sessions_per_shard: Vec<u64>,
    /// Frames queued per worker right now (gauge; indexed by worker).
    /// Empty unless the report was answered by a [`crate::net`] server,
    /// whose bounded worker queues are the only queues that exist.
    pub queue_depths: Vec<u64>,
    /// Transport counters of the answering [`crate::net`] server: bytes
    /// and syscalls each way, frames scanned and written, and the
    /// coalescing ratios they imply (see [`TransportCounters`]). All
    /// zero when the report was answered in-process.
    pub transport: TransportCounters,
    /// Durability counters of the answering service: events logged,
    /// bytes persisted, snapshots, recoveries and migrations (see
    /// [`StoreCounters`]). All zero when no [`crate::store::SessionStore`]
    /// is attached and no migration was served.
    pub store: StoreCounters,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_spaced_and_clamped() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1_023), 9);
        assert_eq!(bucket_of(1_024), 10);
        assert_eq!(bucket_of(u128::MAX), LATENCY_BUCKETS - 1);
        for i in 0..LATENCY_BUCKETS {
            let (lo, hi) = LatencyHistogram::bucket_bounds(i);
            assert!(lo < hi, "bucket {i} bounds inverted");
            assert_eq!(bucket_of(lo.max(1) as u128), i);
            if i + 1 < LATENCY_BUCKETS {
                assert_eq!(bucket_of(hi as u128), i + 1);
            }
        }
    }

    #[test]
    fn recorder_snapshots_match_serial_histogram() {
        let recorder = LatencyRecorder::new();
        let mut serial = LatencyHistogram::new();
        for ns in [0u64, 1, 2, 500, 1_000, 1_000_000, u64::MAX] {
            let d = Duration::from_nanos(ns);
            recorder.record(d);
            serial.record(d);
        }
        assert_eq!(recorder.snapshot(), serial);
        assert_eq!(serial.count(), 7);
    }
}
