//! Durable sessions: per-session event logs, snapshots, crash recovery
//! and live migration.
//!
//! Every stream session of a [`ZigzagService`] can be made **durable** by
//! routing its appends through a [`SessionStore`]: each appended
//! [`RunEvent`] is written as one self-delimiting record to an
//! append-only per-session log, and every
//! [`StoreConfig::snapshot_every`] appends the session's full state —
//! run prefix, configuration, coordination progress, warm-observer
//! manifest — is serialized into an atomically-replaced snapshot file.
//! After a crash, [`SessionStore::recover`] rebuilds the session from
//! snapshot + log tail (or from the log alone), **byte-identical** to the
//! uninterrupted session at the last durable append — pinned at every
//! append boundary by the recovery oracle tier (`tests/oracle.rs`).
//!
//! The same snapshot document doubles as the **migration envelope**:
//! [`crate::Query::Export`] serializes a live session into a
//! [`SessionSnapshot`], [`crate::Query::Import`] installs one as a new
//! session of the receiving service — in-process or between two live
//! [`crate::net::NetServer`] processes over the ordinary wire encoding.
//! That is the router tier's rebalancing primitive.
//!
//! # On-disk formats
//!
//! Both files are line-oriented text with versioned headers, decoded with
//! the same hostile-input discipline as [`crate::wire`] (counts validated
//! against the data actually present, no panics on arbitrary bytes):
//!
//! ```text
//! zigzag-log v1                 zigzag-snap v1
//! probe include                 events 12
//! cache . 32                    probe include
//! spec late 4 1 2 0 go a b      cache . 32
//! run 5                         spec late 4 1 2 0 go a b
//! zigzag-run v1                 coord 2 3 0 1
//! horizon 40                    observers 1
//! proc 0 C                      obs 2 3 full
//! proc 1 A                      run 31
//! chan 0 1 2 5                  zigzag-run v1
//! ev 0 3 1 ego 1 1 8 0          ...(the skeleton document)
//! ev 1 8 1 m0 0 1 act           ev 0 3 1 ego 1 1 8 0
//!                               ...(`events` many `ev` lines)
//! ```
//!
//! Both headers embed the session's *skeleton* run (context + horizon,
//! no events) through `bcm::codec`, then carry one `ev` line per event
//! ([`zigzag_bcm::codec::encode_event`]) — the log appends them as they
//! arrive; the snapshot stores the whole prefix as its `events`-counted
//! block, decoded by replaying the lines onto the skeleton (the same
//! exact reconstruction the append path itself uses). A torn final
//! record, a truncated tail, non-UTF-8 bytes or an overclaimed count
//! never panic: recovery keeps the longest prefix of records that parse
//! *and* replay, and truncates the log back to exactly that prefix
//! before appending resumes.
//!
//! # Fsync policy
//!
//! By default ([`FsyncPolicy::Never`]) records are written (one `write`
//! per append) but never explicitly synced: a crash of the *process*
//! loses nothing the kernel accepted, a crash of the *host* may lose the
//! tail — which recovery then trims to the last good record.
//! [`FsyncPolicy::OnSnapshot`] syncs log and snapshot at every snapshot
//! point; [`FsyncPolicy::Always`] syncs the log after every append.
//!
//! # Recovery speed
//!
//! Replaying a long log pays the full per-append incremental maintenance
//! (and, with a coordination spec, a knowledge evaluation at every
//! `B`-node). Snapshot restore instead batch-builds the engine over the
//! prefix in one pass ([`IncrementalEngine::from_prefix`]), skips
//! decoding the covered log records entirely (a surface scan suffices),
//! and replays only the tail since the last snapshot. Both paths share
//! the same floor — parsing one `ev` line and validating one append per
//! event — and this engine's incremental replay is already within ~2× of
//! that floor, so snapshots buy a measured ~1.2× on recovery time, not
//! an order of magnitude. Their real value is bounding *work after the
//! snapshot* (the decoded tail) and surviving torn or lost log suffixes;
//! `benches/store.rs` prices both paths and gates that restore never
//! loses to replay.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, PoisonError};

use zigzag_bcm::codec::{self, decode_event, encode_event, escape_token, unescape_token};
use zigzag_bcm::stream::{RunEvent, StreamingRun};
use zigzag_bcm::{Context, NodeId, ProcessId, Run, RunCursor, Time};
use zigzag_coord::{CoordKind, ProbeSemantics, TimedCoordination};
use zigzag_core::incremental::IncrementalEngine;
use zigzag_core::knowledge::ObserverMode;

use crate::config::{CachePolicy, SessionConfig};
use crate::error::Error;
use crate::fault::{FaultPlan, LogFault};
use crate::service::{SessionId, ZigzagService};
use crate::session::{AppendReport, FrozenStream, Session, StreamSession};

/// Version header of the per-session event log.
pub const LOG_HEADER: &str = "zigzag-log v1";
/// Version header of the session snapshot / migration document.
pub const SNAP_HEADER: &str = "zigzag-snap v1";

fn bad(line: usize, detail: impl Into<String>) -> Error {
    Error::Store {
        detail: format!("line {line}: {}", detail.into()),
    }
}

fn io_err(what: &str, path: &Path, e: std::io::Error) -> Error {
    Error::Store {
        detail: format!("{what} {}: {e}", path.display()),
    }
}

/// When the store issues `fsync`; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Never sync explicitly (the default): one buffered `write` per
    /// record, durability bounded by the kernel's writeback.
    #[default]
    Never,
    /// Sync the log and the snapshot file at every snapshot point.
    OnSnapshot,
    /// Sync the log after every append (and files at snapshot points).
    Always,
}

/// Durability policy for a [`SessionStore`], mirroring
/// [`CachePolicy`]'s builder style. Like the cache knobs, everything
/// here is policy, not semantics: recovery is byte-identical at any
/// setting (the knobs trade write amplification and recovery time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Write a snapshot every this many appends (`None` = never, the
    /// default: recovery replays the whole log).
    pub snapshot_every: Option<u64>,
    /// When to `fsync`; see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Whether recovery pre-builds the observer states named by the
    /// snapshot's warm-set manifest (the default), so the recovered
    /// session answers its working set warm like the one that crashed.
    /// Cache warmth never changes answers.
    pub warm_observers: bool,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            snapshot_every: None,
            fsync: FsyncPolicy::default(),
            warm_observers: true,
        }
    }
}

impl StoreConfig {
    /// The default policy: log-only durability, no explicit syncs.
    pub fn new() -> Self {
        StoreConfig::default()
    }

    /// Enables periodic snapshots (builder style; clamped to ≥ 1).
    pub fn snapshot_every(mut self, appends: u64) -> Self {
        self.snapshot_every = Some(appends.max(1));
        self
    }

    /// Sets the fsync policy (builder style).
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets whether recovery re-warms snapshotted observer states
    /// (builder style).
    pub fn warm_observers(mut self, warm: bool) -> Self {
        self.warm_observers = warm;
        self
    }
}

/// A portable, serializable copy of one stream session's full state —
/// what a snapshot file holds and what [`crate::Query::Export`] /
/// [`crate::Query::Import`] ship between services.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The session's configuration (cache policy, probe semantics,
    /// coordination spec).
    pub config: SessionConfig,
    /// Events appended so far; always equals the number of non-initial
    /// nodes of [`SessionSnapshot::run`] (enforced on decode/restore).
    pub events: u64,
    /// The coordination driver's earliest known `B`-node, if any.
    pub first_known: Option<NodeId>,
    /// The coordination driver's trigger node `σ_C`, if seen.
    pub sigma_c: Option<NodeId>,
    /// The `(observer, mode)` warm-set manifest.
    pub observers: Vec<(NodeId, ObserverMode)>,
    /// The grown run prefix, context included.
    pub run: Run,
}

impl SessionSnapshot {
    /// Assembles a snapshot from a frozen session state and its config.
    pub(crate) fn of_frozen(config: SessionConfig, frozen: FrozenStream) -> Self {
        SessionSnapshot {
            config,
            events: frozen.events,
            first_known: frozen.first_known,
            sigma_c: frozen.sigma_c,
            observers: frozen.observers,
            run: frozen.run,
        }
    }
}

// ---------------------------------------------------------------------
// Text encoding shared by the log header and the snapshot document.
// ---------------------------------------------------------------------

fn push_config_lines(out: &mut String, config: &SessionConfig) {
    let probe = match config.probe {
        ProbeSemantics::IncludeOwnSends => "include",
        ProbeSemantics::ExcludeOwnSends => "exclude",
    };
    let _ = writeln!(out, "probe {probe}");
    let opt = |v: Option<u64>| v.map_or(".".to_string(), |n| n.to_string());
    let _ = writeln!(
        out,
        "cache {} {}",
        opt(config.cache.max_observers.map(|n| n as u64)),
        opt(config.cache.compact_every)
    );
    match &config.spec {
        None => {
            let _ = writeln!(out, "spec .");
        }
        Some(spec) => {
            let kind = match spec.kind {
                CoordKind::Early { x } => format!("early {x}"),
                CoordKind::Late { x } => format!("late {x}"),
                CoordKind::Window { after, within } => format!("window {after} {within}"),
            };
            let _ = writeln!(
                out,
                "spec {kind} {} {} {} {} {} {}",
                spec.a.index(),
                spec.b.index(),
                spec.c.index(),
                escape_token(&spec.go_name),
                escape_token(&spec.a_action),
                escape_token(&spec.b_action),
            );
        }
    }
}

/// A line-stepping parser over a decoded document, tracking 1-based line
/// numbers for error reporting (the same shape as `wire`'s).
struct Doc<'a> {
    lines: std::str::Lines<'a>,
    no: usize,
}

impl<'a> Doc<'a> {
    fn new(text: &'a str) -> Self {
        Doc {
            lines: text.lines(),
            no: 0,
        }
    }

    fn next(&mut self, what: &str) -> Result<&'a str, Error> {
        self.no += 1;
        self.lines
            .next()
            .ok_or_else(|| bad(self.no, format!("missing {what}")))
    }

    /// Remaining lines, O(1) — for validating claimed counts *before*
    /// allocating or consuming.
    fn remaining(&self) -> usize {
        self.lines.clone().count()
    }
}

fn parse_u64(doc_line: usize, t: &str, what: &str) -> Result<u64, Error> {
    t.parse()
        .map_err(|_| bad(doc_line, format!("bad {what} {t:?}")))
}

fn parse_i64(doc_line: usize, t: &str, what: &str) -> Result<i64, Error> {
    t.parse()
        .map_err(|_| bad(doc_line, format!("bad {what} {t:?}")))
}

fn parse_opt_u64(doc_line: usize, t: &str, what: &str) -> Result<Option<u64>, Error> {
    if t == "." {
        Ok(None)
    } else {
        parse_u64(doc_line, t, what).map(Some)
    }
}

/// Parses the `probe` / `cache` / `spec` line triple.
fn parse_config_lines(doc: &mut Doc<'_>) -> Result<SessionConfig, Error> {
    let line = doc.next("probe line")?;
    let probe = match line.strip_prefix("probe ").map(str::trim) {
        Some("include") => ProbeSemantics::IncludeOwnSends,
        Some("exclude") => ProbeSemantics::ExcludeOwnSends,
        _ => return Err(bad(doc.no, format!("bad probe line {line:?}"))),
    };

    let line = doc.next("cache line")?;
    let toks: Vec<&str> = line.split_whitespace().collect();
    if toks.len() != 3 || toks[0] != "cache" {
        return Err(bad(doc.no, format!("bad cache line {line:?}")));
    }
    let cache = CachePolicy {
        max_observers: parse_opt_u64(doc.no, toks[1], "observer cap")?.map(|n| n as usize),
        compact_every: parse_opt_u64(doc.no, toks[2], "compaction cadence")?,
    };

    let line = doc.next("spec line")?;
    let toks: Vec<&str> = line.split_whitespace().collect();
    let spec = match toks.as_slice() {
        ["spec", "."] => None,
        ["spec", kind @ ("early" | "late"), x, rest @ ..] => {
            let x = parse_i64(doc.no, x, "separation")?;
            let kind = if *kind == "early" {
                CoordKind::Early { x }
            } else {
                CoordKind::Late { x }
            };
            Some(parse_spec_tail(doc.no, kind, rest)?)
        }
        ["spec", "window", after, within, rest @ ..] => {
            let kind = CoordKind::Window {
                after: parse_i64(doc.no, after, "separation")?,
                within: parse_i64(doc.no, within, "separation")?,
            };
            Some(parse_spec_tail(doc.no, kind, rest)?)
        }
        _ => return Err(bad(doc.no, format!("bad spec line {line:?}"))),
    };

    Ok(SessionConfig { cache, probe, spec })
}

fn parse_spec_tail(
    doc_line: usize,
    kind: CoordKind,
    rest: &[&str],
) -> Result<TimedCoordination, Error> {
    let [a, b, c, go, a_action, b_action] = rest else {
        return Err(bad(doc_line, "spec line needs a b c and three names"));
    };
    let proc = |t: &str| -> Result<ProcessId, Error> {
        Ok(ProcessId::new(parse_u64(doc_line, t, "process")? as u32))
    };
    let name = |t: &str| -> Result<String, Error> {
        unescape_token(t).map_err(|e| bad(doc_line, e.to_string()))
    };
    let mut spec = TimedCoordination::new(kind, proc(a)?, proc(b)?, proc(c)?);
    spec.go_name = name(go)?;
    spec.a_action = name(a_action)?;
    spec.b_action = name(b_action)?;
    Ok(spec)
}

fn push_opt_node(out: &mut String, n: Option<NodeId>) {
    match n {
        Some(n) => {
            let _ = write!(out, " {} {}", n.proc().index(), n.index());
        }
        None => out.push_str(" . ."),
    }
}

fn parse_opt_node(doc_line: usize, p: &str, i: &str) -> Result<Option<NodeId>, Error> {
    match (p, i) {
        (".", ".") => Ok(None),
        _ => Ok(Some(NodeId::new(
            ProcessId::new(parse_u64(doc_line, p, "node process")? as u32),
            parse_u64(doc_line, i, "node index")? as u32,
        ))),
    }
}

/// Appends the embedded-run section: a `run <nlines>` count line followed
/// by the complete `bcm::codec` document.
fn push_run_lines(out: &mut String, encoded_run: &str) {
    let _ = writeln!(out, "run {}", encoded_run.lines().count());
    out.push_str(encoded_run);
    if !encoded_run.ends_with('\n') {
        out.push('\n');
    }
}

/// Parses the embedded-run section, count-validated before consumption.
fn parse_run_lines(doc: &mut Doc<'_>) -> Result<Run, Error> {
    let line = doc.next("run count line")?;
    let n = line
        .strip_prefix("run ")
        .ok_or_else(|| bad(doc.no, format!("expected run count line, got {line:?}")))
        .and_then(|t| parse_u64(doc.no, t.trim(), "run line count"))? as usize;
    if n > doc.remaining() {
        return Err(bad(
            doc.no,
            format!("run section claims {n} lines, {} remain", doc.remaining()),
        ));
    }
    let mut text = String::new();
    for _ in 0..n {
        text.push_str(doc.next("run line")?);
        text.push('\n');
    }
    codec::decode(&text).map_err(|e| bad(doc.no, format!("embedded run: {e}")))
}

/// Encodes a [`SessionSnapshot`] into the `zigzag-snap v1` document:
/// metadata, the embedded skeleton, then one `ev` line per prefix event
/// (see the [module docs](self)).
pub fn encode_snapshot(snap: &SessionSnapshot) -> String {
    let skeleton = codec::encode(&Run::skeleton(snap.run.context_arc(), snap.run.horizon()));
    let mut out = String::with_capacity(skeleton.len() + 64 * snap.events as usize + 256);
    let _ = writeln!(out, "{SNAP_HEADER}");
    let _ = writeln!(out, "events {}", snap.events);
    push_config_lines(&mut out, &snap.config);
    out.push_str("coord");
    push_opt_node(&mut out, snap.first_known);
    push_opt_node(&mut out, snap.sigma_c);
    out.push('\n');
    let _ = writeln!(out, "observers {}", snap.observers.len());
    for (sigma, mode) in &snap.observers {
        let mode = match mode {
            ObserverMode::Full => "full",
            ObserverMode::ExcludeOwnSends => "exclude",
        };
        let _ = writeln!(out, "obs {} {} {mode}", sigma.proc().index(), sigma.index());
    }
    push_run_lines(&mut out, &skeleton);
    let mut cursor = RunCursor::new(&snap.run);
    while let Some(ev) = cursor.next_event() {
        out.push_str(&encode_event(&ev));
        out.push('\n');
    }
    out
}

/// Decodes a `zigzag-snap v1` document.
///
/// # Errors
///
/// Fails with [`Error::Store`] on any malformation: wrong header,
/// overclaimed counts, bad tokens, an embedded run that does not decode,
/// or an event count disagreeing with the embedded run.
pub fn decode_snapshot(text: &str) -> Result<SessionSnapshot, Error> {
    let mut doc = Doc::new(text);
    let header = doc.next("header")?;
    if header.trim() != SNAP_HEADER {
        return Err(bad(doc.no, format!("bad header {header:?}")));
    }
    let line = doc.next("events line")?;
    let events = line
        .strip_prefix("events ")
        .ok_or_else(|| bad(doc.no, format!("expected events line, got {line:?}")))
        .and_then(|t| parse_u64(doc.no, t.trim(), "event count"))?;
    let config = parse_config_lines(&mut doc)?;

    let line = doc.next("coord line")?;
    let toks: Vec<&str> = line.split_whitespace().collect();
    let [tag, fk_p, fk_i, sc_p, sc_i] = toks.as_slice() else {
        return Err(bad(doc.no, format!("bad coord line {line:?}")));
    };
    if *tag != "coord" {
        return Err(bad(doc.no, format!("bad coord line {line:?}")));
    }
    let first_known = parse_opt_node(doc.no, fk_p, fk_i)?;
    let sigma_c = parse_opt_node(doc.no, sc_p, sc_i)?;

    let line = doc.next("observers line")?;
    let k = line
        .strip_prefix("observers ")
        .ok_or_else(|| bad(doc.no, format!("expected observers line, got {line:?}")))
        .and_then(|t| parse_u64(doc.no, t.trim(), "observer count"))? as usize;
    if k > doc.remaining() {
        return Err(bad(
            doc.no,
            format!(
                "manifest claims {k} observers, {} lines remain",
                doc.remaining()
            ),
        ));
    }
    let mut observers = Vec::with_capacity(k);
    for _ in 0..k {
        let line = doc.next("obs line")?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        let [tag, p, i, mode] = toks.as_slice() else {
            return Err(bad(doc.no, format!("bad obs line {line:?}")));
        };
        if *tag != "obs" {
            return Err(bad(doc.no, format!("bad obs line {line:?}")));
        }
        let sigma = NodeId::new(
            ProcessId::new(parse_u64(doc.no, p, "observer process")? as u32),
            parse_u64(doc.no, i, "observer index")? as u32,
        );
        let mode = match *mode {
            "full" => ObserverMode::Full,
            "exclude" => ObserverMode::ExcludeOwnSends,
            other => return Err(bad(doc.no, format!("bad observer mode {other:?}"))),
        };
        observers.push((sigma, mode));
    }

    let skeleton = parse_run_lines(&mut doc)?;
    if events as usize > doc.remaining() {
        return Err(bad(
            doc.no,
            format!("claims {events} events, {} lines remain", doc.remaining()),
        ));
    }
    // Rebuild the prefix by replaying the `ev` block onto the skeleton —
    // the exact reconstruction the live append path performs, so a
    // decoded snapshot is the run the writer froze, byte for byte.
    let mut prefix = StreamingRun::adopt(skeleton);
    for _ in 0..events {
        let line = doc.next("ev line")?;
        let ev = decode_event(line).map_err(|e| bad(doc.no, format!("embedded event: {e}")))?;
        prefix
            .append(&ev)
            .map_err(|e| bad(doc.no, format!("embedded event does not replay: {e}")))?;
    }
    let run = prefix.finish();
    let non_initial = run.nodes().filter(|r| !r.id().is_initial()).count() as u64;
    if events != non_initial {
        return Err(bad(
            doc.no,
            format!("claims {events} events but the run holds {non_initial}"),
        ));
    }
    Ok(SessionSnapshot {
        config,
        events,
        first_known,
        sigma_c,
        observers,
        run,
    })
}

/// Builds a live [`StreamSession`] from a snapshot: batch-build the
/// engine over the prefix, optionally pre-warm the manifest's observer
/// states, seed the coordination progress and the append counter.
pub(crate) fn restore(snap: SessionSnapshot) -> Result<StreamSession, Error> {
    restore_with(snap, true)
}

fn restore_with(snap: SessionSnapshot, warm: bool) -> Result<StreamSession, Error> {
    let non_initial = snap.run.nodes().filter(|r| !r.id().is_initial()).count() as u64;
    if snap.events != non_initial {
        return Err(Error::Store {
            detail: format!(
                "snapshot claims {} events but its run holds {non_initial}",
                snap.events
            ),
        });
    }
    let engine = IncrementalEngine::from_prefix(snap.run);
    if warm {
        for (sigma, mode) in &snap.observers {
            // Warmth is answer-invariant; a manifest entry naming a node
            // outside the prefix (hostile input) is simply skipped.
            let _ = engine.engine_mode(*sigma, *mode);
        }
    }
    Ok(StreamSession::resume(
        snap.config,
        engine,
        snap.events,
        snap.first_known,
        snap.sigma_c,
    ))
}

// ---------------------------------------------------------------------
// The store.
// ---------------------------------------------------------------------

/// One durably-logged session's writer-side state.
#[derive(Debug)]
struct DurableSession {
    name: String,
    log: File,
    /// Events in the log (drives the snapshot cadence).
    events: u64,
}

/// What [`SessionStore::recover`] rebuilt; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovered {
    /// The handle the service assigned to the recovered session.
    pub id: SessionId,
    /// Whether a snapshot was used (`false` = full log replay).
    pub from_snapshot: bool,
    /// Events restored wholesale from the snapshot.
    pub restored_events: u64,
    /// Log-tail events replayed through the normal append path.
    pub replayed_events: u64,
    /// Whether a torn/corrupt log tail was dropped (and the log file
    /// truncated back to the last good record).
    pub truncated: bool,
}

/// The per-session durable store; see the [module docs](self).
///
/// A store manages a directory of `<name>.log` / `<name>.snap` file
/// pairs and the set of open sessions it is logging for. It is bound to
/// no particular service: every operation takes the [`ZigzagService`]
/// whose session table it should act on (and whose
/// [`ZigzagService::store_stats`] it bills).
#[derive(Debug)]
pub struct SessionStore {
    root: PathBuf,
    config: StoreConfig,
    open: Mutex<HashMap<u64, DurableSession>>,
    /// Deterministic chaos hook ([`crate::FaultPlan`]); `None` (the
    /// default) is a single never-taken branch on every write seam.
    faults: Option<Arc<FaultPlan>>,
}

impl SessionStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>, config: StoreConfig) -> Result<Self, Error> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| io_err("creating store root", &root, e))?;
        Ok(SessionStore {
            root,
            config,
            open: Mutex::new(HashMap::new()),
            faults: None,
        })
    }

    /// Arms this store with a deterministic fault plan: log appends may
    /// tear, fsyncs may fail, snapshot writes may hit disk-full —
    /// exactly as scheduled by the plan. Chaos-testing hook; production
    /// stores never call this.
    pub fn with_faults(mut self, plan: Arc<FaultPlan>) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Whether `id` is a durable session managed by this store.
    pub fn manages(&self, id: SessionId) -> bool {
        self.lock().contains_key(&id.raw())
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The store's policy.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The log file backing durable session `name`.
    pub fn log_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.log"))
    }

    /// The snapshot file backing durable session `name`.
    pub fn snap_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("{name}.snap"))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, DurableSession>> {
        self.open.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// `sync_all` with the fault plan's fsync site consulted first — the
    /// seam every durability-relevant sync in this store goes through.
    fn sync_file(&self, file: &File, path: &Path) -> Result<(), Error> {
        if let Some(plan) = &self.faults {
            if plan.on_fsync() {
                return Err(Error::Store {
                    detail: format!("injected fsync failure on {}", path.display()),
                });
            }
        }
        file.sync_all().map_err(|e| io_err("syncing", path, e))
    }

    /// Opens a **durable** stream session: a fresh session on `service`
    /// plus a fresh event log seeded with the session's header (config +
    /// embedded skeleton run). Fails if a log for `name` already exists —
    /// recover or delete it explicitly instead of silently clobbering
    /// history.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] on an invalid name, an existing log,
    /// or file-system errors.
    pub fn open_stream(
        &self,
        service: &ZigzagService,
        name: &str,
        context: Arc<Context>,
        horizon: Time,
        config: SessionConfig,
    ) -> Result<SessionId, Error> {
        validate_name(name)?;
        let path = self.log_path(name);
        let mut log = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
            .map_err(|e| io_err("creating log", &path, e))?;

        let skeleton = Run::skeleton(context.clone(), horizon);
        let mut header = String::new();
        let _ = writeln!(header, "{LOG_HEADER}");
        push_config_lines(&mut header, &config);
        push_run_lines(&mut header, &codec::encode(&skeleton));
        log.write_all(header.as_bytes())
            .map_err(|e| io_err("writing log header", &path, e))?;
        if self.config.fsync == FsyncPolicy::Always {
            log.sync_all()
                .map_err(|e| io_err("syncing log", &path, e))?;
        }
        service
            .store_stats()
            .bytes_written
            .fetch_add(header.len() as u64, Ordering::Relaxed);

        let id = service.open_stream(context, horizon, config);
        self.lock().insert(
            id.raw(),
            DurableSession {
                name: name.to_string(),
                log,
                events: 0,
            },
        );
        Ok(id)
    }

    /// Appends one event durably: through the service's normal append
    /// path first (so an inconsistent event is rejected before any byte
    /// is written), then as one log record, then — every
    /// [`StoreConfig::snapshot_every`] appends — a snapshot.
    ///
    /// # Errors
    ///
    /// Propagates the session's append error, or fails with
    /// [`Error::Store`] if `id` is not store-managed or the write fails
    /// (after which the in-memory session is ahead of the log; treat
    /// store errors as fatal for the session).
    pub fn append(
        &self,
        service: &ZigzagService,
        id: SessionId,
        ev: &RunEvent,
    ) -> Result<AppendReport, Error> {
        let report = service.append(id, ev)?;
        let mut open = self.lock();
        let st = open.get_mut(&id.raw()).ok_or_else(|| Error::Store {
            detail: format!("session {id} is not managed by this store"),
        })?;
        let mut line = encode_event(ev);
        line.push('\n');
        let path = self.log_path(&st.name);
        if let Some(plan) = &self.faults {
            if let LogFault::Torn(cut) = plan.on_log_write(line.len()) {
                // A torn write: a strict prefix of the record reaches the
                // file, then the append fails. Recovery truncates the torn
                // record away; until then the in-memory session is ahead
                // of the log, which is why store errors are fatal for the
                // session.
                let _ = st.log.write_all(&line.as_bytes()[..cut]);
                return Err(Error::Store {
                    detail: format!(
                        "injected torn write ({cut}/{} bytes) on {}",
                        line.len(),
                        path.display()
                    ),
                });
            }
        }
        st.log
            .write_all(line.as_bytes())
            .map_err(|e| io_err("appending to log", &path, e))?;
        if self.config.fsync == FsyncPolicy::Always {
            self.sync_file(&st.log, &path)?;
        }
        st.events += 1;
        let stats = service.store_stats();
        stats.events_logged.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_written
            .fetch_add(line.len() as u64, Ordering::Relaxed);
        if let Some(every) = self.config.snapshot_every {
            if st.events.is_multiple_of(every) {
                self.write_snapshot(service, id, st)?;
            }
        }
        Ok(report)
    }

    /// Writes a snapshot of session `id` right now, regardless of
    /// cadence. Returns `false` (writing nothing) when the session's run
    /// does not round-trip the canonical codec — possible only for
    /// hand-built non-chronological feeds — in which case recovery
    /// replays the (always complete) log instead.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] if `id` is not store-managed, on
    /// file-system errors, or if the session is poisoned.
    pub fn snapshot(&self, service: &ZigzagService, id: SessionId) -> Result<bool, Error> {
        let mut open = self.lock();
        let st = open.get_mut(&id.raw()).ok_or_else(|| Error::Store {
            detail: format!("session {id} is not managed by this store"),
        })?;
        self.write_snapshot(service, id, st)
    }

    /// Snapshot write shared by the cadence path and the explicit API.
    /// Atomic: written to a temp file, synced per policy, renamed over
    /// the live snapshot.
    fn write_snapshot(
        &self,
        service: &ZigzagService,
        id: SessionId,
        st: &mut DurableSession,
    ) -> Result<bool, Error> {
        let session = service.session(id)?;
        let Session::Stream(s) = &*session else {
            return Err(Error::NotStreaming { id });
        };
        let frozen = s.freeze()?;
        // A snapshot is only trusted if replaying the run's own cursor
        // events onto a fresh skeleton rebuilds it exactly — decoding
        // replays the `ev` block the same way, so this check (one cheap
        // engine-less replay) guarantees the restored run is the frozen
        // one byte for byte. Canonical-order feeds (everything the
        // simulator or cursor replay produces) always pass; a hand-built
        // feed whose cursor order renumbers messages degrades to
        // log-only durability instead of restoring a subtly reordered
        // run.
        let mut rebuilt = StreamingRun::adopt(Run::skeleton(
            frozen.run.context_arc(),
            frozen.run.horizon(),
        ));
        let mut cursor = RunCursor::new(&frozen.run);
        let mut exact = true;
        while let Some(ev) = cursor.next_event() {
            if rebuilt.append(&ev).is_err() {
                exact = false;
                break;
            }
        }
        if !exact || rebuilt.run() != &frozen.run {
            return Ok(false);
        }
        let snap = SessionSnapshot::of_frozen(s.config().clone(), frozen);
        let text = encode_snapshot(&snap);

        let final_path = self.snap_path(&st.name);
        let tmp_path = self.root.join(format!("{}.snap.tmp", st.name));
        if self.config.fsync != FsyncPolicy::Never {
            // The snapshot claims coverage of every logged event below
            // its count; make the log at least that durable first.
            self.sync_file(&st.log, &self.log_path(&st.name))?;
        }
        let mut tmp = File::create(&tmp_path).map_err(|e| io_err("creating", &tmp_path, e))?;
        if let Some(plan) = &self.faults {
            if plan.on_snapshot_write() {
                // Disk-full mid-snapshot: the temp file stays behind as
                // the orphan a crashed writer would leave — exactly what
                // recover() sweeps. The live snapshot is untouched.
                let _ = tmp.write_all(&text.as_bytes()[..text.len() / 2]);
                return Err(Error::Store {
                    detail: format!("injected disk-full writing {}", tmp_path.display()),
                });
            }
        }
        tmp.write_all(text.as_bytes())
            .map_err(|e| io_err("writing", &tmp_path, e))?;
        if self.config.fsync != FsyncPolicy::Never {
            self.sync_file(&tmp, &tmp_path)?;
        }
        drop(tmp);
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err("installing", &final_path, e))?;

        let stats = service.store_stats();
        stats.snapshots.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_written
            .fetch_add(text.len() as u64, Ordering::Relaxed);
        Ok(true)
    }

    /// Recovers durable session `name` into a fresh session of
    /// `service`, byte-identical to the uninterrupted session at the
    /// last durable append: snapshot restore + log-tail replay when a
    /// usable snapshot exists, full log replay otherwise. A torn or
    /// corrupt log tail is dropped — the file is truncated back to the
    /// longest prefix of records that parse *and* replay — and appending
    /// may resume through [`SessionStore::append`].
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] if the log is missing or its header
    /// (through the embedded skeleton run) is unreadable — without a
    /// context there is no last-good state to recover to.
    pub fn recover(&self, service: &ZigzagService, name: &str) -> Result<Recovered, Error> {
        validate_name(name)?;
        // Sweep the snapshot temp file a crash between tmp write and
        // rename leaves behind: it is at best a complete snapshot that
        // was never installed, at worst a torn one — either way the
        // durable state is the installed snapshot + log, never the tmp.
        let _ = fs::remove_file(self.root.join(format!("{name}.snap.tmp")));
        let log_path = self.log_path(name);
        let bytes = fs::read(&log_path).map_err(|e| io_err("reading log", &log_path, e))?;
        // Surface scan: validates the header and counts complete records
        // without decoding any of them — enough to read the config and
        // match a snapshot against it.
        let mut parsed = parse_log(&bytes, usize::MAX)?;

        // A snapshot is usable if it decodes and agrees with the log
        // header on the session's configuration.
        let snap = fs::read(self.snap_path(name))
            .ok()
            .and_then(|b| String::from_utf8(b).ok())
            .and_then(|text| decode_snapshot(&text).ok())
            .filter(|s| s.config == parsed.config);

        let mut rewrite_from_snapshot = false;
        let mut outcome: Option<(StreamSession, u64, u64)> = None;
        if let Some(snap) = snap {
            let base = snap.events as usize;
            if base > parsed.record_count() {
                // The log lost a suffix the snapshot still covers: the
                // snapshot is the most durable state. Regenerate the log
                // from its (replay-verified) run so the
                // log-replays-to-current-state invariant holds again.
                rewrite_from_snapshot = true;
            } else {
                // Decode only the tail past the snapshot's coverage; the
                // covered records stay surface-validated.
                parsed = parse_log(&bytes, base)?;
            }
            let tail: &[(RunEvent, u64)] = if rewrite_from_snapshot {
                &[]
            } else {
                &parsed.events
            };
            if let Ok(session) = restore_with(snap, self.config.warm_observers) {
                let mut ok = true;
                let mut replayed = 0u64;
                for (ev, _) in tail {
                    if session.append(ev).is_err() {
                        // Snapshot and log tail disagree (corruption that
                        // still parses): fall back to pure log replay.
                        ok = false;
                        break;
                    }
                    replayed += 1;
                }
                if ok {
                    outcome = Some((session, base as u64, replayed));
                }
            }
        }

        let (session, restored, replayed, semantic_cut) = match outcome {
            Some((session, base, replayed)) => (session, base, replayed, None),
            None => {
                rewrite_from_snapshot = false;
                // Pure replay needs every record decoded.
                parsed = parse_log(&bytes, 0)?;
                let (session, applied) = replay_log(&parsed)?;
                (session, 0, applied as u64, Some(applied))
            }
        };

        // Compute where the good log prefix ends and truncate the file
        // back to it (dropping torn/corrupt/unreplayable records).
        let from_snapshot = restored > 0 || (replayed == 0 && semantic_cut.is_none());
        let mut truncated = parsed.truncated;
        let log = if rewrite_from_snapshot {
            truncated = true;
            let text = rebuild_log_text(&parsed, &session)?;
            fs::write(&log_path, text.as_bytes())
                .map_err(|e| io_err("rewriting log", &log_path, e))?;
            OpenOptions::new()
                .append(true)
                .open(&log_path)
                .map_err(|e| io_err("reopening log", &log_path, e))?
        } else {
            let good_len = match semantic_cut {
                Some(applied) if applied < parsed.events.len() => {
                    truncated = true;
                    if applied == 0 {
                        parsed.header_len
                    } else {
                        parsed.events[applied - 1].1
                    }
                }
                _ => parsed.good_len,
            };
            let log = OpenOptions::new()
                .write(true)
                .open(&log_path)
                .map_err(|e| io_err("reopening log", &log_path, e))?;
            if good_len < bytes.len() as u64 || parsed.truncated {
                log.set_len(good_len)
                    .map_err(|e| io_err("truncating log", &log_path, e))?;
            }
            let mut log = log;
            use std::io::Seek as _;
            log.seek(std::io::SeekFrom::End(0))
                .map_err(|e| io_err("seeking log", &log_path, e))?;
            log
        };

        let events = session.event_count()? as u64;
        let id = service.install(Session::Stream(session));
        self.lock().insert(
            id.raw(),
            DurableSession {
                name: name.to_string(),
                log,
                events,
            },
        );
        service
            .store_stats()
            .recoveries
            .fetch_add(1, Ordering::Relaxed);
        Ok(Recovered {
            id,
            from_snapshot,
            restored_events: restored,
            replayed_events: replayed,
            truncated,
        })
    }

    /// Stops logging for session `id` (files are kept; the session stays
    /// open on its service). Returns whether the session was managed.
    pub fn detach(&self, id: SessionId) -> bool {
        self.lock().remove(&id.raw()).is_some()
    }

    /// Recovers every `<name>.log` in the store directory that is not
    /// already attached to an open durable session — the supervisor's
    /// startup sweep and the implementation of [`crate::Query::Recover`].
    /// Orphaned `<name>.snap.tmp` files whose log is gone are deleted
    /// along the way (those with a log are swept by the per-name
    /// [`SessionStore::recover`]). Returns the recovered sessions sorted
    /// by name.
    ///
    /// # Errors
    ///
    /// Fails with [`Error::Store`] if the directory cannot be listed or
    /// any individual recovery fails (already-recovered sessions stay
    /// attached).
    pub fn recover_all(&self, service: &ZigzagService) -> Result<Vec<(String, Recovered)>, Error> {
        let attached: std::collections::HashSet<String> =
            self.lock().values().map(|d| d.name.clone()).collect();
        let mut names = Vec::new();
        let entries =
            fs::read_dir(&self.root).map_err(|e| io_err("listing store root", &self.root, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("listing store root", &self.root, e))?;
            let fname = entry.file_name();
            let Some(fname) = fname.to_str() else {
                continue;
            };
            if let Some(stem) = fname.strip_suffix(".log") {
                if validate_name(stem).is_ok() && !attached.contains(stem) {
                    names.push(stem.to_string());
                }
            } else if let Some(stem) = fname.strip_suffix(".snap.tmp") {
                if !self.log_path(stem).exists() {
                    let _ = fs::remove_file(entry.path());
                }
            }
        }
        names.sort();
        let mut out = Vec::with_capacity(names.len());
        for name in names {
            let rec = self.recover(service, &name)?;
            out.push((name, rec));
        }
        Ok(out)
    }
}

/// Full log replay from the skeleton: applies events until the first
/// semantic failure (an event that parses but does not replay), returning
/// the session and how many events were applied.
fn replay_log(parsed: &ParsedLog) -> Result<(StreamSession, usize), Error> {
    // A failed append poisons its session, so on failure the session is
    // rebuilt over the good prefix only (the retry pass cannot fail).
    let mut upto = parsed.events.len();
    loop {
        let session = StreamSession::new(
            parsed.skeleton.context_arc(),
            parsed.skeleton.horizon(),
            parsed.config.clone(),
        );
        let mut failed_at = None;
        for (k, (ev, _)) in parsed.events[..upto].iter().enumerate() {
            if session.append(ev).is_err() {
                failed_at = Some(k);
                break;
            }
        }
        match failed_at {
            None => return Ok((session, upto)),
            Some(k) => upto = k,
        }
    }
}

/// Regenerates a complete log document (header + one record per event)
/// from a recovered session's run — used when the snapshot outlived the
/// log tail.
fn rebuild_log_text(parsed: &ParsedLog, session: &StreamSession) -> Result<String, Error> {
    let mut out = String::new();
    let _ = writeln!(out, "{LOG_HEADER}");
    push_config_lines(&mut out, &parsed.config);
    push_run_lines(&mut out, &codec::encode(&parsed.skeleton));
    session.with_engine(|engine| {
        for ev in RunCursor::new(engine.run()) {
            out.push_str(&encode_event(&ev));
            out.push('\n');
        }
    })?;
    Ok(out)
}

/// A parsed event log: header plus the longest prefix of records that
/// parse, with byte offsets for truncate-to-last-good.
#[derive(Debug)]
struct ParsedLog {
    config: SessionConfig,
    skeleton: Run,
    /// Records before `decode_from`, surface-validated (complete `ev`
    /// lines) but not decoded — a trusted snapshot covers them.
    skipped: usize,
    /// Each decoded event with the byte offset of its record's end.
    events: Vec<(RunEvent, u64)>,
    /// End of the header section in bytes.
    header_len: u64,
    /// End of the last parse-good record (header included).
    good_len: u64,
    /// Whether anything after `good_len` was dropped.
    truncated: bool,
}

impl ParsedLog {
    /// Total surface-good records: skipped plus decoded.
    fn record_count(&self) -> usize {
        self.skipped + self.events.len()
    }
}

/// Parses raw log bytes; see the torn-record rules in the
/// [module docs](self). The first `decode_from` records are only
/// surface-validated (complete, `ev`-tagged lines) without decoding —
/// recovery passes the trusted snapshot's coverage there, so restoring
/// from a snapshot does not pay a full-log parse.
fn parse_log(bytes: &[u8], decode_from: usize) -> Result<ParsedLog, Error> {
    // Non-UTF-8 tails never panic: keep the valid prefix only.
    let (text, utf8_cut) = match std::str::from_utf8(bytes) {
        Ok(t) => (t, false),
        Err(e) => (
            std::str::from_utf8(&bytes[..e.valid_up_to()]).expect("valid prefix"),
            true,
        ),
    };
    // Records are whole lines; a final line without its newline is torn.
    let complete = match text.rfind('\n') {
        Some(last) => &text[..last + 1],
        None => "",
    };
    let torn_tail = utf8_cut || complete.len() < bytes.len();

    // The header (through the embedded skeleton run) must be intact.
    let mut doc = Doc::new(complete);
    let header = doc.next("header")?;
    if header.trim() != LOG_HEADER {
        return Err(bad(doc.no, format!("bad header {header:?}")));
    }
    let config = parse_config_lines(&mut doc)?;
    let skeleton = parse_run_lines(&mut doc)?;
    let header_lines = doc.no;

    // Everything after the header is event records; compute byte offsets
    // by re-walking the same `\n`-complete prefix.
    let mut offset = 0u64;
    let mut skipped = 0usize;
    let mut events = Vec::new();
    let mut good_len = 0u64;
    let mut header_len = 0u64;
    let mut truncated = torn_tail;
    let mut record = 0usize;
    for (no, line) in complete.split_inclusive('\n').enumerate() {
        offset += line.len() as u64;
        if no < header_lines {
            header_len = offset;
            good_len = offset;
            continue;
        }
        let body = line.trim_end_matches(['\n', '\r']);
        if record < decode_from {
            // Covered by the snapshot: a complete `ev`-tagged line is
            // enough — its content was validated when it was written and
            // is never replayed on this path.
            if !body.starts_with("ev ") {
                truncated = true;
                break;
            }
            skipped += 1;
            good_len = offset;
        } else {
            match decode_event(body) {
                Ok(ev) => {
                    events.push((ev, offset));
                    good_len = offset;
                }
                Err(_) => {
                    // First malformed record: everything from here on is
                    // untrusted (later records' stream-scoped message ids
                    // assume the dropped ones were applied).
                    truncated = true;
                    break;
                }
            }
        }
        record += 1;
    }
    Ok(ParsedLog {
        config,
        skeleton,
        skipped,
        events,
        header_len,
        good_len,
        truncated,
    })
}

/// Durable session names become file names: restrict them to a safe
/// portable alphabet.
fn validate_name(name: &str) -> Result<(), Error> {
    let ok = !name.is_empty()
        && name.len() <= 100
        && !name.starts_with('.')
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(Error::Store {
            detail: format!(
                "invalid session name {name:?} (want 1-100 chars of [A-Za-z0-9._-], \
                 not starting with '.')"
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, Response};
    use zigzag_bcm::protocols::Ffip;
    use zigzag_bcm::scheduler::EagerScheduler;
    use zigzag_bcm::{Network, SimConfig, Simulator};

    /// The Fig. 1 network with a feedback `B → C` channel (so knowledge
    /// actually flows and coordination decides), driven by FFIP.
    fn fig_run() -> Run {
        let mut b = Network::builder();
        let c = b.add_process("C");
        let a = b.add_process("A");
        let bb = b.add_process("B");
        b.add_channel(c, a, 1, 3).unwrap();
        b.add_channel(c, bb, 7, 9).unwrap();
        b.add_channel(bb, c, 2, 4).unwrap();
        let ctx = b.build().unwrap();
        let mut sim = Simulator::new(ctx, SimConfig::with_horizon(Time::new(40)));
        sim.external(Time::new(2), c, "go");
        sim.run(&mut Ffip::new(), &mut EagerScheduler).unwrap()
    }

    fn coord_config() -> SessionConfig {
        SessionConfig::new().spec(TimedCoordination::new(
            CoordKind::Late { x: 4 },
            ProcessId::new(1),
            ProcessId::new(2),
            ProcessId::new(0),
        ))
    }

    fn events_of(run: &Run) -> Vec<RunEvent> {
        RunCursor::new(run).collect()
    }

    /// A fresh per-test scratch directory under the system temp dir.
    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("zigzag-store-test-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// The probe queries recovery and migration are held byte-identical
    /// on.
    fn probes(run: &Run) -> Vec<Query> {
        let sigma = run
            .nodes()
            .map(|r| r.id())
            .filter(|n| !n.is_initial())
            .last()
            .unwrap();
        let first = run
            .nodes()
            .map(|r| r.id())
            .find(|n| !n.is_initial())
            .unwrap();
        vec![
            Query::MaxXMatrix { sigma },
            Query::TightBound {
                from: first,
                to: sigma,
            },
            Query::CoordDecision,
        ]
    }

    fn answers(service: &ZigzagService, id: SessionId, probes: &[Query]) -> Vec<Response> {
        probes
            .iter()
            .map(|q| service.dispatch(id, q).unwrap())
            .collect()
    }

    #[test]
    fn snapshot_documents_round_trip() {
        let run = fig_run();
        let service = ZigzagService::new();
        let config = coord_config()
            .cache(CachePolicy::default().max_observers(8).compact_every(3))
            .probe(ProbeSemantics::ExcludeOwnSends);
        let mut spec_config = config.clone();
        if let Some(spec) = spec_config.spec.as_mut() {
            // Names with spaces, '%' and non-ASCII must survive the
            // token escaping.
            spec.go_name = "go now".into();
            spec.a_action = "100% ü".into();
            spec.b_action = String::new();
        }
        let (id, _) = service.open_replay(&run, spec_config).unwrap();
        let snap = service.export(id).unwrap();
        let text = encode_snapshot(&snap);
        assert_eq!(decode_snapshot(&text).unwrap(), snap);
        // The empty snapshot (no events yet) round-trips too.
        let empty = service.open_stream(run.context_arc(), run.horizon(), coord_config());
        let snap = service.export(empty).unwrap();
        assert_eq!(snap.events, 0);
        assert_eq!(decode_snapshot(&encode_snapshot(&snap)).unwrap(), snap);
    }

    #[test]
    fn hostile_snapshot_documents_are_rejected_without_panic() {
        let run = fig_run();
        let service = ZigzagService::new();
        let (id, _) = service.open_replay(&run, coord_config()).unwrap();
        let good = encode_snapshot(&service.export(id).unwrap());

        // Every single-line deletion and every truncation of the
        // document must fail cleanly (or, for deletions past the run
        // section, possibly still parse — never panic).
        for cut in 0..good.lines().count() {
            let doc: String = good
                .lines()
                .enumerate()
                .filter(|(k, _)| *k != cut)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            let _ = decode_snapshot(&doc);
        }
        // Every byte-truncation must fail cleanly whenever it loses a
        // whole line. (A cut inside the *final token* of the last line
        // can legitimately still parse — trailing name fields are
        // free-form — but must never panic.)
        let full_lines = good.lines().count();
        for cut in 0..good.len() {
            if let Some(prefix) = good.get(..cut) {
                let verdict = decode_snapshot(prefix);
                if prefix.lines().count() < full_lines {
                    assert!(verdict.is_err(), "truncation at {cut}");
                }
            }
        }

        // Targeted malformations.
        let tamper = |from: &str, to: &str| good.replacen(from, to, 1);
        for doc in [
            tamper("zigzag-snap v1", "zigzag-snap v2"),
            tamper("events ", "events x"),
            // Overclaimed counts must be refused before allocation.
            tamper("observers ", "observers 4000000000 "),
            tamper("run ", &format!("run {} ", u64::MAX)),
            // An event count disagreeing with the embedded run.
            tamper("events ", "events 1"),
            tamper("probe ", "probe sideways "),
            tamper("coord", "coord zz"),
        ] {
            assert!(
                matches!(decode_snapshot(&doc), Err(Error::Store { .. })),
                "{doc}"
            );
        }
        assert!(decode_snapshot("").is_err());
        assert!(decode_snapshot("zigzag-snap v1").is_err());
    }

    #[test]
    fn invalid_names_and_clobbering_opens_are_refused() {
        let run = fig_run();
        let service = ZigzagService::new();
        let store = SessionStore::open(tmpdir("names"), StoreConfig::new()).unwrap();
        for name in ["", ".hidden", "a/b", "a b", "ü", &"x".repeat(101)] {
            assert!(
                store
                    .open_stream(
                        &service,
                        name,
                        run.context_arc(),
                        run.horizon(),
                        SessionConfig::new(),
                    )
                    .is_err(),
                "{name:?}"
            );
        }
        let ok = store.open_stream(
            &service,
            "feed-1",
            run.context_arc(),
            run.horizon(),
            SessionConfig::new(),
        );
        assert!(ok.is_ok());
        // A second open of the same name must not clobber the log.
        assert!(store
            .open_stream(
                &service,
                "feed-1",
                run.context_arc(),
                run.horizon(),
                SessionConfig::new(),
            )
            .is_err());
    }

    #[test]
    fn recovery_replays_the_log_byte_identically() {
        let run = fig_run();
        let events = events_of(&run);
        let probes = probes(&run);
        let dir = tmpdir("recover-log");

        // The uninterrupted reference.
        let reference = ZigzagService::new();
        let (ref_id, _) = reference.open_replay(&run, coord_config()).unwrap();
        let expected = answers(&reference, ref_id, &probes);

        // A durable session, crashed after the last append (drop without
        // any shutdown protocol).
        {
            let service = ZigzagService::new();
            let store = SessionStore::open(&dir, StoreConfig::new()).unwrap();
            let id = store
                .open_stream(
                    &service,
                    "feed",
                    run.context_arc(),
                    run.horizon(),
                    coord_config(),
                )
                .unwrap();
            for ev in &events {
                store.append(&service, id, ev).unwrap();
            }
        }

        let service = ZigzagService::new();
        let store = SessionStore::open(&dir, StoreConfig::new()).unwrap();
        let rec = store.recover(&service, "feed").unwrap();
        assert!(!rec.from_snapshot);
        assert!(!rec.truncated);
        assert_eq!(rec.replayed_events, events.len() as u64);
        assert_eq!(answers(&service, rec.id, &probes), expected);
        assert_eq!(service.stats().store.recoveries, 1);
    }

    #[test]
    fn orphaned_snapshot_tmp_files_are_swept_on_recovery() {
        use crate::fault::{FaultPlan, FaultRates};
        use std::sync::Arc;

        let run = fig_run();
        let events = events_of(&run);
        let probes = probes(&run);
        let dir = tmpdir("orphan-tmp");

        let reference = ZigzagService::new();
        let (ref_id, _) = reference.open_replay(&run, coord_config()).unwrap();
        let expected = answers(&reference, ref_id, &probes);

        // First life: a fault plan forces disk-full exactly once, mid
        // snapshot — the crash-between-tmp-write-and-rename shape. A
        // torn `feed.snap.tmp` stays behind; the log record had already
        // landed, so the session stays consistent and appending resumes.
        {
            let service = ZigzagService::new();
            let rates = FaultRates {
                snapshot_full: 1000,
                ..FaultRates::default()
            };
            let plan = Arc::new(FaultPlan::with_budget(7, rates, 1));
            let store = SessionStore::open(&dir, StoreConfig::new())
                .unwrap()
                .with_faults(plan);
            let id = store
                .open_stream(
                    &service,
                    "feed",
                    run.context_arc(),
                    run.horizon(),
                    coord_config(),
                )
                .unwrap();
            for ev in &events {
                store.append(&service, id, ev).unwrap();
            }
            let err = store.snapshot(&service, id).unwrap_err();
            assert!(
                matches!(&err, Error::Store { detail } if detail.contains("injected disk-full")),
                "got {err}"
            );
            assert!(
                dir.join("feed.snap.tmp").exists(),
                "the torn tmp file should have been left behind"
            );
        }
        // A second orphan with *no* sibling log — a session whose log was
        // deleted mid-crash — must be swept by the directory sweep too.
        fs::write(dir.join("ghost.snap.tmp"), b"torn bytes").unwrap();

        // Second life: the sweep removes both orphans and recovery is
        // byte-identical to the uninterrupted reference.
        let service = ZigzagService::new();
        let store = SessionStore::open(&dir, StoreConfig::new()).unwrap();
        let recovered = store.recover_all(&service).unwrap();
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, "feed");
        assert!(!dir.join("feed.snap.tmp").exists(), "orphan not swept");
        assert!(
            !dir.join("ghost.snap.tmp").exists(),
            "logless orphan not swept"
        );
        assert_eq!(
            recovered[0].1.restored_events + recovered[0].1.replayed_events,
            events.len() as u64
        );
        assert_eq!(answers(&service, recovered[0].1.id, &probes), expected);
    }

    #[test]
    fn recovery_from_snapshot_plus_tail_is_byte_identical() {
        let run = fig_run();
        let events = events_of(&run);
        let probes = probes(&run);
        let dir = tmpdir("recover-snap");

        let reference = ZigzagService::new();
        let (ref_id, _) = reference.open_replay(&run, coord_config()).unwrap();
        let expected = answers(&reference, ref_id, &probes);

        {
            let service = ZigzagService::new();
            let store = SessionStore::open(&dir, StoreConfig::new().snapshot_every(3)).unwrap();
            let id = store
                .open_stream(
                    &service,
                    "feed",
                    run.context_arc(),
                    run.horizon(),
                    coord_config(),
                )
                .unwrap();
            for ev in &events {
                store.append(&service, id, ev).unwrap();
            }
            assert!(store.snap_path("feed").exists());
            assert!(service.stats().store.snapshots >= 1);
        }

        let service = ZigzagService::new();
        let store = SessionStore::open(&dir, StoreConfig::new().snapshot_every(3)).unwrap();
        let rec = store.recover(&service, "feed").unwrap();
        assert!(rec.from_snapshot);
        assert_eq!(
            rec.restored_events + rec.replayed_events,
            events.len() as u64
        );
        // The snapshot covered a multiple of 3; only the tail replays.
        assert!(rec.replayed_events < 3);
        assert_eq!(answers(&service, rec.id, &probes), expected);

        // The recovered session keeps appending durably: a second crash
        // and recovery still matches a fresh full replay.
        let run2 = fig_run();
        assert_eq!(run2, run, "FFIP under the eager scheduler is deterministic");
    }

    #[test]
    fn torn_and_corrupt_log_tails_recover_to_the_last_good_record() {
        let run = fig_run();
        let events = events_of(&run);
        let dir = tmpdir("torn");

        {
            let service = ZigzagService::new();
            let store = SessionStore::open(&dir, StoreConfig::new()).unwrap();
            let id = store
                .open_stream(
                    &service,
                    "feed",
                    run.context_arc(),
                    run.horizon(),
                    coord_config(),
                )
                .unwrap();
            for ev in &events {
                store.append(&service, id, ev).unwrap();
            }
        }
        let pristine = fs::read(dir.join("feed.log")).unwrap();

        // (tail bytes appended to the pristine log, expected drop count)
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("torn final record", b"ev 2 9 1".to_vec()),
            ("garbage line", b"not an event\nev 0 1 0 0 0\n".to_vec()),
            ("non-utf8 tail", vec![0xff, 0xfe, 0xfd]),
            (
                "overclaimed receipt count",
                b"ev 0 39 4000000000 0 0\n".to_vec(),
            ),
            // Parses fine, but delivers a message that does not exist:
            // dropped by the replay pass, not the parser.
            (
                "semantically impossible record",
                b"ev 0 39 1 m4000 0 0\n".to_vec(),
            ),
        ];
        for (what, tail) in cases {
            let mut bytes = pristine.clone();
            bytes.extend_from_slice(&tail);
            fs::write(dir.join("feed.log"), &bytes).unwrap();

            let service = ZigzagService::new();
            let store = SessionStore::open(&dir, StoreConfig::new()).unwrap();
            let rec = store.recover(&service, "feed").unwrap();
            assert!(rec.truncated, "{what}: tail not flagged");
            assert_eq!(
                rec.restored_events + rec.replayed_events,
                events.len() as u64,
                "{what}: wrong surviving prefix"
            );
            // The file itself was trimmed back to the good prefix…
            assert_eq!(
                fs::read(dir.join("feed.log")).unwrap(),
                pristine,
                "{what}: log not truncated to last good record"
            );
            // …and the recovered session accepts further durable appends.
            let more = RunEvent {
                proc: ProcessId::new(0),
                time: Time::new(39),
                receipts: vec![],
                sends: vec![],
                actions: vec!["ping".into()],
            };
            store.append(&service, rec.id, &more).unwrap();
            fs::write(dir.join("feed.log"), &pristine).unwrap();
        }

        // A log whose *header* is gone has no last-good state.
        fs::write(dir.join("feed.log"), b"zigzag-log v9\n").unwrap();
        let service = ZigzagService::new();
        let store = SessionStore::open(&dir, StoreConfig::new()).unwrap();
        assert!(store.recover(&service, "feed").is_err());
        assert!(store.recover(&service, "no-such-session").is_err());
    }

    #[test]
    fn migration_between_services_preserves_every_answer() {
        let run = fig_run();
        let probes = probes(&run);

        let source = ZigzagService::new();
        let (id, _) = source.open_replay(&run, coord_config()).unwrap();
        let expected = answers(&source, id, &probes);

        // In-process export/import…
        let snap = source.export(id).unwrap();
        let target = ZigzagService::new();
        let moved = target.import(snap.clone()).unwrap();
        assert_eq!(answers(&target, moved, &probes), expected);

        // …and through the dispatch layer (what the socket path uses).
        let Response::Exported(shipped) = source.dispatch(id, &Query::Export).unwrap() else {
            panic!("export answers Exported");
        };
        assert_eq!(*shipped, snap);
        let target2 = ZigzagService::new();
        let Response::Imported(moved2) = target2
            .dispatch(SessionId::from_raw(0), &Query::Import(shipped))
            .unwrap()
        else {
            panic!("import answers Imported");
        };
        assert_eq!(answers(&target2, moved2, &probes), expected);
        assert!(source.stats().store.migrations >= 2);

        // The migrated session is live: it accepts appends.
        let ev = RunEvent {
            proc: ProcessId::new(0),
            time: Time::new(39),
            receipts: vec![],
            sends: vec![],
            actions: vec!["post-move".into()],
        };
        target.append(moved, &ev).unwrap();

        // A tampered snapshot (count out of step with its run) is
        // refused by import.
        let mut evil = snap;
        evil.events += 1;
        assert!(matches!(target.import(evil), Err(Error::Store { .. })));
    }
}
